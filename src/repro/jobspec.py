"""The versioned JobSpec: one request schema for every entry point.

Before this module, each way of running a simulation spoke its own
dialect — ``run_protocol`` kwargs, :class:`~repro.scenarios.spec.Scenario`
dicts, ``run_campaign`` arguments, ``repro simulate`` flags — so there
was no single JSON object a server could accept, validate, cache, or
replay.  A :class:`JobSpec` subsumes them all:

* ``mode="simulate"`` — one protocol driven from a start configuration
  until silence (the ``repro simulate`` / ``run_protocol`` path).  The
  wrapped scenario is degenerate: exactly one run phase, no faults, no
  timeline, uniform scheduler.  :meth:`JobSpec.to_run_kwargs` expands
  it into the exact ``run_protocol`` call the legacy CLI made — same
  protocol construction, same start-configuration seeding — so the
  re-routed entry points are bit-identical to the old ones.
* ``mode="scenario"`` — a full fault-campaign script (phases, faults,
  schedulers, epoch timelines) repeated ``repetitions`` times under the
  repo-wide seeding discipline.

The spec is a frozen dataclass over plain data, JSON-round-trippable
via :meth:`to_dict` / :meth:`from_dict` (strict: unknown or ill-typed
fields raise :class:`JobSpecError` naming the offending field), with a
**canonical form** (:meth:`canonical` — defaults materialised, version
stamped, keys sorted) whose SHA-256 (:meth:`digest`) is the content
hash shared by the ``repro serve`` result cache and the ensemble
manifest metadata.  Two specs describe the same computation iff their
digests match; the v1 canonical form is pinned by a golden-file test,
so any schema change must bump :data:`JOBSPEC_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from .exceptions import ExperimentError, ReproError
from .scenarios.spec import ProtocolSpec, RunPhase, Scenario, StartSpec

__all__ = ["JOBSPEC_VERSION", "JobSpec", "JobSpecError"]

#: Schema version of the canonical form; bump on any incompatible
#: change (field added/removed/renamed, default changed, canonical
#: serialisation changed) — the golden-file test enforces this.
JOBSPEC_VERSION = 1

_MODES = ("simulate", "scenario")
_ENGINES = ("jump", "sequential")
_BACKENDS = ("python", "numpy")

#: CLI spelling of start kinds (``repro simulate --start``) mapped to
#: the :class:`~repro.scenarios.spec.StartSpec` vocabulary.
_LEGACY_STARTS = {
    "random": "random",
    "k-distant": "k_distant",
    "k_distant": "k_distant",
    "pileup": "pileup",
    "solved": "solved",
    "all_in_extras": "all_in_extras",
}

#: The optional top-level keys :meth:`JobSpec.from_dict` accepts,
#: with their expected types (``version`` and ``scenario`` are
#: required and handled separately).
_OPTIONAL_FIELDS = {
    "mode": str,
    "seed": int,
    "repetitions": int,
    "engine": str,
    "backend": str,
    "max_events": int,
    "max_interactions": int,
    "trace": bool,
}


class JobSpecError(ReproError):
    """A JobSpec failed validation; ``field`` names the offender."""

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        self.field = field
        if field is not None:
            message = f"jobspec field {field!r}: {message}"
        super().__init__(message)


def _require_int(name: str, value, minimum: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(
            f"expected an integer, got {type(value).__name__}", field=name
        )
    if value < minimum:
        raise JobSpecError(f"must be >= {minimum}, got {value}", field=name)


@dataclass(frozen=True)
class JobSpec:
    """One versioned, cacheable simulation request.

    ``scenario`` declares *what* to simulate; the remaining fields say
    how to drive it.  Execution-topology knobs (worker count, queue
    position, streaming subscribers) are deliberately **not** part of
    the spec: results are a pure function of the spec, so the digest
    may key a cache that is valid at any worker count.
    """

    scenario: Scenario
    mode: str = "scenario"
    seed: int = 0
    repetitions: int = 1
    engine: str = "jump"
    backend: str = "python"
    max_events: Optional[int] = None
    max_interactions: Optional[int] = None
    trace: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.scenario, Scenario):
            raise JobSpecError(
                f"expected a Scenario, got {type(self.scenario).__name__}",
                field="scenario",
            )
        if self.mode not in _MODES:
            raise JobSpecError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}",
                field="mode",
            )
        if self.engine not in _ENGINES:
            raise JobSpecError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}",
                field="engine",
            )
        if self.backend not in _BACKENDS:
            raise JobSpecError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{_BACKENDS}",
                field="backend",
            )
        _require_int("seed", self.seed, minimum=0)
        _require_int("repetitions", self.repetitions, minimum=1)
        for name in ("max_events", "max_interactions"):
            value = getattr(self, name)
            if value is not None:
                _require_int(name, value, minimum=0)
        if not isinstance(self.trace, bool):
            raise JobSpecError(
                f"expected a boolean, got {type(self.trace).__name__}",
                field="trace",
            )
        if self.mode == "simulate":
            phases = self.scenario.phases
            if len(phases) != 1 or not isinstance(phases[0], RunPhase):
                raise JobSpecError(
                    "simulate mode wraps exactly one run phase (no faults); "
                    "use mode='scenario' for fault campaigns",
                    field="mode",
                )
            if self.scenario.timeline:
                raise JobSpecError(
                    "simulate mode cannot carry an epoch timeline; "
                    "use mode='scenario'",
                    field="mode",
                )
            if not self.scenario.scheduler.is_uniform:
                raise JobSpecError(
                    "simulate mode runs under the uniform scheduler; "
                    "use mode='scenario' for biased schedulers",
                    field="mode",
                )
        else:
            if self.engine != "jump":
                raise JobSpecError(
                    "scenario mode picks engines from the scheduler spec; "
                    "engine applies to simulate mode only",
                    field="engine",
                )
            if self.max_interactions is not None:
                raise JobSpecError(
                    "scenario mode caps interactions per run phase "
                    "(phases[].run.max_interactions), not globally",
                    field="max_interactions",
                )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Sparse JSON form (inverse of :meth:`from_dict`)."""
        data: Dict[str, object] = {
            "version": JOBSPEC_VERSION,
            "mode": self.mode,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "engine": self.engine,
            "backend": self.backend,
            "trace": self.trace,
            "scenario": self.scenario.to_dict(),
        }
        if self.max_events is not None:
            data["max_events"] = self.max_events
        if self.max_interactions is not None:
            data["max_interactions"] = self.max_interactions
        return data

    @classmethod
    def from_dict(cls, data) -> "JobSpec":
        """Strict parse: every violation names the offending field."""
        if not isinstance(data, dict):
            raise JobSpecError(
                f"jobspec must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version")
        if version is None:
            raise JobSpecError("required (stamp the schema version)",
                               field="version")
        if version != JOBSPEC_VERSION:
            raise JobSpecError(
                f"version {version!r} is not supported "
                f"(expected {JOBSPEC_VERSION})",
                field="version",
            )
        if "scenario" not in data:
            raise JobSpecError("required", field="scenario")
        known = set(_OPTIONAL_FIELDS) | {"version", "scenario"}
        for key in data:
            if key not in known:
                raise JobSpecError(
                    f"unknown field (known fields: {sorted(known)})",
                    field=str(key),
                )
        try:
            scenario = Scenario.from_dict(data["scenario"])
        except ExperimentError as error:
            raise JobSpecError(str(error), field="scenario") from error
        kwargs: Dict[str, object] = {}
        for name, expected in _OPTIONAL_FIELDS.items():
            if name not in data:
                continue
            value = data[name]
            nullable = name in ("max_events", "max_interactions")
            if value is None and nullable:
                continue
            if (
                not isinstance(value, expected)
                or (expected is int and isinstance(value, bool))
            ):
                raise JobSpecError(
                    f"expected {expected.__name__}, "
                    f"got {type(value).__name__}",
                    field=name,
                )
            kwargs[name] = value
        return cls(scenario=scenario, **kwargs)

    # ------------------------------------------------------------------
    # Canonical form and content hash
    # ------------------------------------------------------------------
    def canonical_json(self) -> str:
        """The canonical v1 serialisation: every field materialised
        (defaults included, ``None`` explicit), keys sorted, compact
        separators, version stamped.  This exact string is what
        :meth:`digest` hashes — and what the golden-file test pins."""
        scenario = {
            "name": self.scenario.name,
            "description": self.scenario.description,
            "protocol": asdict(self.scenario.protocol),
            "start": asdict(self.scenario.start),
            "scheduler": asdict(self.scenario.scheduler),
            "phases": [
                {"run" if isinstance(p, RunPhase) else "fault": asdict(p)}
                for p in self.scenario.phases
            ],
            "timeline": [asdict(epoch) for epoch in self.scenario.timeline],
        }
        payload = {
            "version": JOBSPEC_VERSION,
            "mode": self.mode,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "engine": self.engine,
            "backend": self.backend,
            "max_events": self.max_events,
            "max_interactions": self.max_interactions,
            "trace": self.trace,
            "scenario": scenario,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def canonical(self) -> Dict[str, object]:
        """The canonical form as plain JSON-safe data (tuples already
        lists) — ``JobSpec.from_dict`` accepts it unchanged."""
        return json.loads(self.canonical_json())

    def digest(self) -> str:
        """Hex SHA-256 of the canonical form: the content-addressed
        cache key.  The seed is part of the canonical form, so the
        digest alone identifies ``(canonical_jobspec, seed)``."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Legacy adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_legacy_kwargs(cls, **kwargs) -> "JobSpec":
        """Build a simulate-mode spec from the historical flag surface.

        Accepts the vocabulary of ``repro simulate`` / the declarative
        subset of ``run_protocol``: ``protocol`` (kind name), ``n``,
        ``start``, ``k``, ``m``, ``seed``, ``engine``, ``backend``,
        ``max_interactions``, ``max_events``, ``trace``.  A
        ``DeprecationWarning`` fires only on genuinely conflicting
        combinations (an ignored ``k``, a backend the chosen engine
        cannot use) — plain legacy calls stay silent.
        """
        known = (
            "protocol", "n", "start", "k", "m", "seed", "engine",
            "backend", "max_interactions", "max_events", "trace",
        )
        for key in kwargs:
            if key not in known:
                raise JobSpecError(
                    f"unknown legacy kwarg (known: {list(known)})",
                    field=str(key),
                )
        kind = kwargs.get("protocol", "tree")
        n = kwargs.get("n", 100)
        start_name = kwargs.get("start", "random")
        k = kwargs.get("k")
        engine = kwargs.get("engine", "jump")
        backend = kwargs.get("backend", "python")
        if start_name not in _LEGACY_STARTS:
            raise JobSpecError(
                f"unknown start {start_name!r}; expected one of "
                f"{sorted(_LEGACY_STARTS)}",
                field="start",
            )
        start_kind = _LEGACY_STARTS[start_name]
        if k is not None and start_kind != "k_distant":
            warnings.warn(
                f"k={k} conflicts with start={start_name!r} and is "
                "ignored; pass start='k-distant' to use it",
                DeprecationWarning,
                stacklevel=2,
            )
            k = None
        if engine == "sequential" and backend == "numpy":
            warnings.warn(
                "backend='numpy' applies to engine='jump' only; the "
                "sequential engine runs its scalar loop — dropping the "
                "backend override",
                DeprecationWarning,
                stacklevel=2,
            )
            backend = "python"
        try:
            protocol = ProtocolSpec(
                kind=kind, num_agents=n, m=kwargs.get("m")
            )
            start = StartSpec(kind=start_kind, k=k)
        except ExperimentError as error:
            raise JobSpecError(str(error), field="protocol") from error
        scenario = Scenario(
            name=f"simulate-{kind}-n{n}",
            protocol=protocol,
            phases=(RunPhase(until="silence"),),
            start=start,
        )
        return cls(
            scenario=scenario,
            mode="simulate",
            seed=kwargs.get("seed", 0),
            engine=engine,
            backend=backend,
            max_events=kwargs.get("max_events"),
            max_interactions=kwargs.get("max_interactions"),
            trace=bool(kwargs.get("trace", False)),
        )

    def to_run_kwargs(self) -> Dict[str, object]:
        """Expand a simulate-mode spec into ``run_protocol(**kwargs)``.

        Reproduces the legacy CLI path exactly: the protocol is built
        from the spec, the start configuration is drawn from a fresh
        generator seeded with the integer seed (the same seeding the
        old ``repro simulate`` used), and the remaining kwargs feed
        ``run_protocol`` verbatim — so re-routed entry points produce
        bit-identical trajectories.
        """
        if self.mode != "simulate":
            raise JobSpecError(
                "to_run_kwargs applies to simulate mode; scenario mode "
                "runs through run_scenario/run_campaign",
                field="mode",
            )
        protocol = self.scenario.protocol.build()
        return {
            "protocol": protocol,
            "configuration": self.start_configuration(protocol),
            "seed": self.seed,
            "engine": self.engine,
            "max_interactions": self.max_interactions,
            "max_events": self.max_events,
            "backend": self.backend,
        }

    def start_configuration(self, protocol):
        """The spec's start configuration against a built protocol.

        Seeding matches the legacy CLI: kinds that draw randomness get
        a fresh generator from the integer seed (independent of the run
        stream, which ``run_protocol`` seeds separately).
        """
        from .configurations.generators import (
            all_in_extras_configuration,
            all_in_state_configuration,
            k_distant_configuration,
            random_configuration,
            solved_configuration,
        )

        start = self.scenario.start
        if start.kind == "random":
            return random_configuration(protocol, seed=self.seed)
        if start.kind == "k_distant":
            return k_distant_configuration(protocol, start.k, seed=self.seed)
        if start.kind == "pileup":
            state = (
                start.state
                if start.state is not None
                else protocol.num_ranks - 1
            )
            return all_in_state_configuration(protocol, state)
        if start.kind == "all_in_extras":
            return all_in_extras_configuration(protocol, seed=self.seed)
        return solved_configuration(protocol)

    @classmethod
    def from_campaign(
        cls,
        campaign_id: str,
        scale: str = "smoke",
        seed: int = 0,
        repetitions: Optional[int] = None,
        max_events: Optional[int] = None,
        trace: bool = False,
    ) -> "JobSpec":
        """A scenario-mode spec for one catalogued campaign at a scale.

        This is the spec ``repro scenario run`` and the ensemble runner
        build internally — the ensemble manifest records its digest so
        a resume can refuse a directory produced by a different spec.
        """
        from .scenarios.catalog import get_campaign

        campaign = get_campaign(campaign_id)
        if repetitions is None:
            repetitions = campaign.repetitions_for(scale)
        return cls(
            scenario=campaign.build(scale),
            mode="scenario",
            seed=seed,
            repetitions=repetitions,
            max_events=max_events,
            trace=trace,
        )

