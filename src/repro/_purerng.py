"""Pure-Python stand-in for ``numpy.random.Generator``.

Used only when numpy is absent (see :mod:`repro._deps`), so the
sequential reference engine — the "obviously correct" scalar fallback —
still runs.  It implements the small slice of the Generator API the
scalar paths consume: ``integers``, ``random``, and a
``bit_generator.state`` round-trip compatible with the snapshot layer's
:func:`~repro.core.snapshot.capture_rng` / ``restore_rng`` contract
(the state is a plain JSON-safe dict tagged with the generator name).

``integers`` draws through :meth:`random.Random.randrange`, which is
exact (rejection-based) — no float bias — so the sequential engine's
pair law is identical to the numpy-backed one in distribution.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Union

__all__ = ["PureGenerator"]


class _PureBitGenerator:
    """State carrier mimicking ``Generator.bit_generator``."""

    def __init__(self, rand: random.Random) -> None:
        self._rand = rand

    @property
    def state(self) -> Dict:
        version, internal, gauss = self._rand.getstate()
        return {
            "bit_generator": type(self).__name__,
            "state": {"version": version, "key": list(internal)},
            "gauss": gauss,
        }

    @state.setter
    def state(self, value: Dict) -> None:
        inner = value["state"]
        self._rand.setstate(
            (inner["version"], tuple(inner["key"]), value.get("gauss"))
        )


class PureGenerator:
    """Minimal ``numpy.random.Generator`` API over :class:`random.Random`."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rand = random.Random(seed)
        self._bit_generator = _PureBitGenerator(self._rand)

    @property
    def bit_generator(self) -> _PureBitGenerator:
        return self._bit_generator

    def random(self, size: Optional[int] = None) -> Union[float, List[float]]:
        if size is None:
            return self._rand.random()
        rand = self._rand.random
        return [rand() for _ in range(size)]

    def integers(
        self,
        low: int,
        high: Optional[int] = None,
        size: Optional[int] = None,
        dtype=None,
    ) -> Union[int, List[int]]:
        """Uniform integers in ``[low, high)`` — numpy's default endpoint."""
        if high is None:
            low, high = 0, low
        span = int(high) - int(low)
        randrange = self._rand.randrange
        if size is None:
            return low + randrange(span)
        return [low + randrange(span) for _ in range(size)]
