"""Optional-dependency seam: one lazy numpy import for the whole package.

numpy powers the fast engines (batched draws, the vectorised batch
kernel) and all of the analysis layer, but the *model* — protocols,
configurations, the sequential reference engine — is plain Python.  To
keep that split honest, every module imports numpy through this shim::

    from repro._deps import np

When numpy is installed, ``np`` is the real module and nothing changes.
When it is missing, ``np`` is a proxy whose *every attribute access*
raises an :class:`ImportError` naming the install command, so any code
path that genuinely needs numpy fails with an actionable message
instead of a bare ``ModuleNotFoundError`` at import time — while
numpy-free paths (the sequential engine with the pure-Python generator
from :mod:`repro._purerng`) keep working.

Entry points that want to fail *eagerly* call :func:`require_numpy`
with a feature name.
"""

from __future__ import annotations

__all__ = ["np", "HAVE_NUMPY", "require_numpy", "NUMPY_HINT"]

#: The message suffix every missing-numpy error carries.
NUMPY_HINT = (
    "numpy is not installed; install the optional extra with "
    "`pip install 'repro[numpy]'` (or `pip install numpy`)"
)

try:
    import numpy as _numpy
except ImportError as exc:  # pragma: no cover - exercised via subprocess
    _numpy = None
    _NUMPY_ERROR: Exception | None = exc
else:
    _NUMPY_ERROR = None

HAVE_NUMPY = _numpy is not None


class _MissingNumpy:
    """Placeholder for an absent numpy: actionable error on first use."""

    def __getattr__(self, name: str):
        raise ImportError(
            f"this code path needs numpy (attribute {name!r}); {NUMPY_HINT}"
        ) from _NUMPY_ERROR

    def __bool__(self) -> bool:
        return False


np = _numpy if HAVE_NUMPY else _MissingNumpy()


def require_numpy(feature: str) -> None:
    """Raise an actionable :class:`ImportError` unless numpy is available.

    ``feature`` names what the caller was trying to do, e.g.
    ``require_numpy('the numpy batch backend')``.
    """
    if not HAVE_NUMPY:
        raise ImportError(f"{feature} requires numpy; {NUMPY_HINT}") from _NUMPY_ERROR
