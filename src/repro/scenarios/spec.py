"""Scenario specifications: scripted timelines of runs and faults.

A :class:`Scenario` is a declarative, dict/YAML-loadable script for one
self-stabilisation experiment: which protocol to build, where to start,
which scheduler drives pair selection, and a timeline of *phases* —
either :class:`RunPhase` (drive the engine until silence, a predicate,
or a budget) or :class:`FaultPhase` (corrupt / crash / swap / churn the
live configuration mid-run).  Specs are plain frozen dataclasses so
they pickle cleanly into the campaign process pool and round-trip
through ``to_dict``/``from_dict`` (and JSON/YAML files).

Execution lives in :mod:`repro.scenarios.engine`; this module owns
parsing, validation, and protocol construction.

A scenario is also the payload of every :class:`~repro.jobspec.JobSpec`
— the versioned request schema ``repro serve`` and the re-routed CLI
entry points speak.  The dict forms here are therefore wire formats:
changing a field name or default changes the canonical JobSpec
serialisation (and so every cached digest), which requires bumping
:data:`~repro.jobspec.JOBSPEC_VERSION`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from ..exceptions import ExperimentError, ProtocolError
from ..protocols.ag import AGProtocol
from ..protocols.line import LineOfTrapsProtocol
from ..protocols.modified_tree import ModifiedTreeProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.tree_protocol import TreeRankingProtocol

__all__ = [
    "EpochSpec",
    "FaultPhase",
    "Phase",
    "ProtocolSpec",
    "RunPhase",
    "Scenario",
    "SchedulerSpec",
    "StartSpec",
]

_FAULT_KINDS = ("corrupt", "crash", "swap", "churn")
_RUN_UNTIL = ("silence", "events", "predicate")
_PREDICATES = ("ranked", "leader")
_START_KINDS = ("solved", "random", "k_distant", "pileup", "all_in_extras")
_STATE_SCHEDULER_KINDS = ("uniform", "state_biased", "clustered")
_AGENT_SCHEDULER_KINDS = ("targeted", "degree_skewed")
_SCHEDULER_KINDS = _STATE_SCHEDULER_KINDS + _AGENT_SCHEDULER_KINDS
_EPOCH_UNTIL = ("events", "interactions", "silence", "predicate")


@dataclass(frozen=True)
class ProtocolSpec:
    """Which protocol to build (and rebuild, under churn).

    ``kind`` is one of ``ag`` / ``ring`` / ``line`` / ``tree`` /
    ``modified_tree``; ``m`` (ring/line lattice parameter) and ``k``
    (tree reset-line half-length) pin the structural parameters so a
    churn-resized rebuild changes only the population size.
    """

    kind: str
    num_agents: int
    m: Optional[int] = None
    k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _PROTOCOL_BUILDERS:
            raise ExperimentError(
                f"unknown protocol kind {self.kind!r}; expected one of "
                f"{sorted(_PROTOCOL_BUILDERS)}"
            )
        if self.num_agents < 2:
            raise ExperimentError(
                f"scenario populations need n >= 2, got {self.num_agents}"
            )

    def build(self, num_agents: Optional[int] = None, retier: bool = False):
        """Construct the protocol, optionally at a churned size.

        With ``retier=True`` a ring/line build whose pinned lattice
        parameter ``m`` cannot represent the (churned) population is
        retried with ``m`` re-derived from the new size — growing the
        population past the current lattice window re-tiers the lattice
        on the fly instead of raising.  Sizes no lattice of the family
        can represent (the gaps between line lattices) still raise,
        loudly: a silently clamped population would mislabel the
        recovery tables.
        """
        n = self.num_agents if num_agents is None else num_agents
        try:
            return _PROTOCOL_BUILDERS[self.kind](self, n)
        except ProtocolError:
            if (
                not retier
                or self.kind not in ("ring", "line")
                or self.m is None
            ):
                raise
            retiered = replace(self, num_agents=max(2, n), m=None)
            return _PROTOCOL_BUILDERS[self.kind](retiered, n)


_PROTOCOL_BUILDERS = {
    "ag": lambda spec, n: AGProtocol(n),
    "ring": lambda spec, n: RingOfTrapsProtocol(num_agents=n, m=spec.m),
    "line": lambda spec, n: LineOfTrapsProtocol(num_agents=n, m=spec.m),
    "tree": lambda spec, n: TreeRankingProtocol(n, k=spec.k),
    "modified_tree": lambda spec, n: ModifiedTreeProtocol(n, k=spec.k),
}


@dataclass(frozen=True)
class StartSpec:
    """Initial configuration family (see ``repro.configurations``)."""

    kind: str = "random"
    k: Optional[int] = None  # k_distant only
    state: Optional[int] = None  # pileup only (default: highest rank)

    def __post_init__(self) -> None:
        if self.kind not in _START_KINDS:
            raise ExperimentError(
                f"unknown start kind {self.kind!r}; expected one of "
                f"{_START_KINDS}"
            )
        if self.kind == "k_distant" and (self.k is None or self.k < 0):
            raise ExperimentError("k_distant start needs a k >= 0")


@dataclass(frozen=True)
class SchedulerSpec:
    """Pair-selection scheduler (built in ``repro.scenarios.schedulers``).

    State-level kinds (count-based engines; the weighted jump fast path
    applies whenever the scheduler compiles):

    * ``uniform`` — the paper's scheduler; keeps the jump fast path.
    * ``state_biased`` — agent selection weighted per state:
      ``rank_weight`` for rank states, ``extra_weight`` for extras.
    * ``clustered`` — the state space is split into ``num_clusters``
      contiguous blocks; cross-block pairs fire with relative weight
      ``across`` (an adversary localising interactions).

    Agent-identity kinds (explicit-agent rejection engine — identities
    matter, so these cannot run on count-based engines and cannot
    appear in epoch timelines):

    * ``targeted`` — the first ``targets`` agents are selected with
      weight ``target_weight`` (a jammed / suppressed device set).
    * ``degree_skewed`` — agent ``i``'s selection weight is
      ``max(floor, ((i + 1) / n) ** exponent)``: a skewed contact
      model where low-index agents are near-isolated and high-index
      agents are hubs.
    """

    kind: str = "uniform"
    rank_weight: float = 1.0
    extra_weight: float = 1.0
    num_clusters: int = 2
    across: float = 0.05
    targets: int = 1
    target_weight: float = 0.05
    exponent: float = 1.0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _SCHEDULER_KINDS:
            raise ExperimentError(
                f"unknown scheduler kind {self.kind!r}; expected one of "
                f"{_SCHEDULER_KINDS}"
            )
        if self.kind == "state_biased":
            for label, w in (("rank_weight", self.rank_weight),
                             ("extra_weight", self.extra_weight)):
                if not 0.0 < w <= 1.0:
                    raise ExperimentError(
                        f"state_biased {label} must be in (0, 1], got {w}"
                    )
        if self.kind == "clustered":
            if self.num_clusters < 1:
                raise ExperimentError(
                    f"clustered scheduler needs num_clusters >= 1, "
                    f"got {self.num_clusters}"
                )
            if not 0.0 < self.across <= 1.0:
                raise ExperimentError(
                    f"clustered across-weight must be in (0, 1], "
                    f"got {self.across}"
                )
        if self.kind == "targeted":
            if self.targets < 1:
                raise ExperimentError(
                    f"targeted scheduler needs targets >= 1, "
                    f"got {self.targets}"
                )
            if not 0.0 < self.target_weight <= 1.0:
                raise ExperimentError(
                    f"targeted target_weight must be in (0, 1], "
                    f"got {self.target_weight}"
                )
        if self.kind == "degree_skewed":
            if self.exponent < 0.0:
                raise ExperimentError(
                    f"degree_skewed exponent must be >= 0, "
                    f"got {self.exponent}"
                )
            if not 0.0 < self.floor <= 1.0:
                raise ExperimentError(
                    f"degree_skewed floor must be in (0, 1], "
                    f"got {self.floor}"
                )

    @property
    def is_uniform(self) -> bool:
        return self.kind == "uniform"

    @property
    def is_agent_level(self) -> bool:
        """True for schedulers biasing agent identities, not states."""
        return self.kind in _AGENT_SCHEDULER_KINDS


@dataclass(frozen=True)
class EpochSpec:
    """One segment of a time-varying scheduler timeline.

    ``until`` says when the segment ends and the next one takes over:
    ``events`` / ``interactions`` (a ``value`` duration counted from
    segment entry), ``silence``, or ``predicate`` (a named
    configuration predicate — ``ranked`` or ``leader`` — checked every
    ``check_every`` productive events).  The last segment may omit
    ``until`` and runs forever.  Only state-level scheduler kinds can
    appear in a timeline (the epoch engines are count-based).
    """

    scheduler: SchedulerSpec
    until: Optional[str] = None
    value: Optional[int] = None
    predicate: Optional[str] = None
    check_every: int = 1024
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scheduler.is_agent_level:
            raise ExperimentError(
                f"epoch timelines cannot contain agent-identity "
                f"scheduler {self.scheduler.kind!r}"
            )
        if self.until is None:
            return
        if self.until not in _EPOCH_UNTIL:
            raise ExperimentError(
                f"unknown epoch boundary {self.until!r}; expected one of "
                f"{_EPOCH_UNTIL}"
            )
        if self.until in ("events", "interactions"):
            if self.value is None or self.value < 1:
                raise ExperimentError(
                    f"epoch boundary on {self.until} needs value >= 1, "
                    f"got {self.value}"
                )
        if self.until == "predicate":
            if self.predicate not in _PREDICATES:
                raise ExperimentError(
                    f"epoch predicate must be one of {_PREDICATES}, "
                    f"got {self.predicate!r}"
                )
            if self.check_every < 1:
                raise ExperimentError(
                    f"check_every must be >= 1, got {self.check_every}"
                )


@dataclass(frozen=True)
class RunPhase:
    """Drive the engine until a stop condition.

    ``until`` is ``silence`` (stop at weight 0), ``events`` (stop at the
    ``max_events`` budget), or ``predicate`` (stop when the named
    configuration predicate — ``ranked`` or ``leader`` — first holds,
    checked every ``check_every`` productive events).  Budgets always
    cap the phase regardless of ``until``.
    """

    until: str = "silence"
    predicate: Optional[str] = None
    max_events: Optional[int] = None
    max_interactions: Optional[int] = None
    check_every: int = 1024
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.until not in _RUN_UNTIL:
            raise ExperimentError(
                f"unknown run-until condition {self.until!r}; expected one "
                f"of {_RUN_UNTIL}"
            )
        if self.until == "predicate":
            if self.predicate not in _PREDICATES:
                raise ExperimentError(
                    f"run-until predicate must be one of {_PREDICATES}, "
                    f"got {self.predicate!r}"
                )
            if self.check_every < 1:
                raise ExperimentError(
                    f"check_every must be >= 1, got {self.check_every}"
                )
        if self.until == "events" and self.max_events is None:
            raise ExperimentError("run-until events needs max_events")
        for name, budget in (("max_events", self.max_events),
                             ("max_interactions", self.max_interactions)):
            if budget is not None and budget < 0:
                raise ExperimentError(f"{name} must be >= 0, got {budget}")


@dataclass(frozen=True)
class FaultPhase:
    """One mid-run fault event.

    Kinds (victim count is ``agents``, or ``fraction`` of the current
    population, whichever is given):

    * ``corrupt`` — victims land on uniformly random states
      (``target_states`` restricts where);
    * ``crash`` — victims reboot in ``replacement_state`` (an index, or
      ``"first_extra"`` / ``"leader"`` resolved against the protocol);
    * ``swap`` — deterministically swap the populations of ``state_a``
      and ``state_b``;
    * ``churn`` — ``departures`` agents leave, then ``arrivals`` agents
      join in ``arrival_state`` (index or ``"first_extra"`` /
      ``"leader"``; default leader), resizing the population.
    """

    kind: str
    agents: Optional[int] = None
    fraction: Optional[float] = None
    target_states: Optional[Tuple[int, ...]] = None
    replacement_state: Union[int, str] = 0
    state_a: int = 0
    state_b: int = 0
    departures: int = 0
    arrivals: int = 0
    arrival_state: Union[int, str] = "leader"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_FAULT_KINDS}"
            )
        if self.kind in ("corrupt", "crash"):
            if self.agents is None and self.fraction is None:
                raise ExperimentError(
                    f"{self.kind} fault needs agents or fraction"
                )
            if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
                raise ExperimentError(
                    f"fault fraction must be in [0, 1], got {self.fraction}"
                )
            if self.agents is not None and self.agents < 0:
                raise ExperimentError(
                    f"fault agents must be >= 0, got {self.agents}"
                )
        if self.kind == "churn":
            if self.departures < 0 or self.arrivals < 0:
                raise ExperimentError(
                    "churn departures/arrivals must be >= 0"
                )
            if self.departures == 0 and self.arrivals == 0:
                raise ExperimentError("churn fault needs some churn")
        if self.target_states is not None:
            object.__setattr__(
                self, "target_states", tuple(self.target_states)
            )

    def victim_count(self, num_agents: int) -> int:
        """Resolve ``agents``/``fraction`` against the live population.

        A positive fraction always claims at least one victim (so tiny
        populations still see the fault); zero means zero.
        """
        if self.agents is not None:
            return min(self.agents, num_agents)
        if self.fraction == 0.0:
            return 0
        return min(num_agents, max(1, round(self.fraction * num_agents)))


Phase = Union[RunPhase, FaultPhase]


@dataclass(frozen=True)
class Scenario:
    """A named, fully declarative fault-campaign script.

    ``scheduler`` fixes one pair-selection bias for the whole run;
    ``timeline`` instead scripts a *time-varying* adversary — an
    ordered sequence of :class:`EpochSpec` segments whose boundaries
    fire mid-phase (they are engine state, independent of the phase
    list, and epoch progress survives churn-induced engine rebuilds).
    The two are mutually exclusive: a non-empty timeline requires the
    scalar scheduler to stay uniform.
    """

    name: str
    protocol: ProtocolSpec
    phases: Tuple[Phase, ...]
    start: StartSpec = field(default_factory=StartSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    timeline: Tuple[EpochSpec, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ExperimentError(f"scenario {self.name!r} has no phases")
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(self, "timeline", tuple(self.timeline))
        if self.timeline:
            if not self.scheduler.is_uniform:
                raise ExperimentError(
                    f"scenario {self.name!r} sets both a scheduler and a "
                    "timeline; use one or the other"
                )
            for index, epoch in enumerate(self.timeline[:-1]):
                if epoch.until is None:
                    raise ExperimentError(
                        f"scenario {self.name!r} timeline segment {index} "
                        "has no 'until' boundary but is not the last "
                        "segment"
                    )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        phases = []
        for phase in self.phases:
            key = "run" if isinstance(phase, RunPhase) else "fault"
            body = {
                k: v for k, v in asdict(phase).items() if v is not None
            }
            if isinstance(phase, FaultPhase):
                body["target_states"] = (
                    list(phase.target_states)
                    if phase.target_states is not None else None
                )
                body = {k: v for k, v in body.items() if v is not None}
            phases.append({key: body})
        data = {
            "name": self.name,
            "description": self.description,
            "protocol": {
                k: v for k, v in asdict(self.protocol).items()
                if v is not None
            },
            "start": {
                k: v for k, v in asdict(self.start).items() if v is not None
            },
            "scheduler": asdict(self.scheduler),
            "phases": phases,
        }
        if self.timeline:
            data["timeline"] = [
                {
                    k: (asdict(epoch.scheduler) if k == "scheduler" else v)
                    for k, v in asdict(epoch).items()
                    if v is not None
                }
                for epoch in self.timeline
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Parse the canonical dict form (also what YAML files hold)."""
        if not isinstance(data, dict):
            raise ExperimentError(
                f"scenario spec must be a mapping, got {type(data).__name__}"
            )
        try:
            name = str(data["name"])
            protocol = ProtocolSpec(**dict(data["protocol"]))
            raw_phases = data["phases"]
        except KeyError as missing:
            raise ExperimentError(
                f"scenario spec missing required key {missing}"
            ) from None
        except TypeError as error:
            raise ExperimentError(f"bad scenario spec: {error}") from None
        phases = []
        for index, entry in enumerate(raw_phases):
            if not isinstance(entry, dict) or len(entry) != 1:
                raise ExperimentError(
                    f"phase {index} must be a single-key mapping "
                    "{'run': ...} or {'fault': ...}"
                )
            (key, body), = entry.items()
            try:
                if key == "run":
                    phases.append(RunPhase(**dict(body)))
                elif key == "fault":
                    phases.append(FaultPhase(**dict(body)))
                else:
                    raise ExperimentError(
                        f"phase {index} key must be 'run' or 'fault', "
                        f"got {key!r}"
                    )
            except TypeError as error:
                raise ExperimentError(
                    f"bad phase {index} spec: {error}"
                ) from None
        try:
            start = StartSpec(**dict(data.get("start", {})))
            scheduler = SchedulerSpec(**dict(data.get("scheduler", {})))
        except TypeError as error:
            raise ExperimentError(f"bad scenario spec: {error}") from None
        timeline = []
        for index, entry in enumerate(data.get("timeline", ())):
            if not isinstance(entry, dict):
                raise ExperimentError(
                    f"timeline segment {index} must be a mapping"
                )
            body = dict(entry)
            try:
                segment_scheduler = SchedulerSpec(
                    **dict(body.pop("scheduler", {}))
                )
                timeline.append(
                    EpochSpec(scheduler=segment_scheduler, **body)
                )
            except TypeError as error:
                raise ExperimentError(
                    f"bad timeline segment {index} spec: {error}"
                ) from None
        return cls(
            name=name,
            protocol=protocol,
            phases=tuple(phases),
            start=start,
            scheduler=scheduler,
            timeline=tuple(timeline),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        """Load a scenario from a ``.json`` or ``.yaml``/``.yml`` file.

        YAML needs PyYAML; when it is not installed a clear error points
        at the JSON alternative instead of an ImportError mid-campaign.
        """
        lowered = path.lower()
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if lowered.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError:
                raise ExperimentError(
                    f"{path}: loading YAML scenarios needs PyYAML "
                    "(pip install pyyaml) — or use the JSON form"
                ) from None
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
        return cls.from_dict(data)

    def with_population(self, num_agents: int) -> "Scenario":
        """A copy targeting a different population size."""
        return replace(self, protocol=replace(self.protocol, num_agents=num_agents))
