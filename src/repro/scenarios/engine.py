"""Scenario execution: drive one scripted fault campaign instance.

:func:`run_scenario` interprets a :class:`~repro.scenarios.spec.Scenario`
against the simulation engines: run phases drive the engine (the jump
fast path under the uniform scheduler, the weighted jump fast path
(:class:`~repro.core.scheduler.WeightedScheduledEngine`) for biased
schedulers it compiles exactly, and the rejection
:class:`~repro.core.scheduler.ScheduledEngine` otherwise), fault phases
mutate the live configuration through the fault-injection seam
(:meth:`~repro.core.jump.JumpEngine.reset_configuration`) or — for
churn, which resizes the population — rebuild protocol and engine while
keeping the generator stream, so a whole scenario remains a pure
function of its seed.

Every phase produces a :class:`PhaseLog`; the
:mod:`repro.analysis.recovery` module turns those logs into
recovery-time distributions and survival curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro._deps import np

from ..core.configuration import Configuration
from ..core.engine import make_rng
from ..core.faults import (
    adversarial_swap,
    arrive_agents,
    corrupt_agents,
    crash_and_replace,
    depart_agents,
)
from ..core.jump import JumpEngine
from ..core.protocol import PopulationProtocol, RankingProtocol
from ..core.scheduler import (
    AgentScheduledEngine,
    AgentScheduler,
    EpochScheduler,
    ScheduledEngine,
    try_weighted_engine,
)
from ..configurations.generators import (
    all_in_extras_configuration,
    all_in_state_configuration,
    distance_from_solved,
    k_distant_configuration,
    random_configuration,
    solved_configuration,
)
from ..exceptions import ExperimentError, ProtocolError
from ..protocols.leader import count_leaders
from .schedulers import build_epoch_scheduler, build_scheduler
from .spec import FaultPhase, RunPhase, Scenario

__all__ = ["PhaseLog", "ScenarioResult", "run_scenario"]


@dataclass(frozen=True)
class PhaseLog:
    """What one phase did to the population.

    ``interactions``/``events`` are the phase's own spend (scheduler
    steps / productive events), not cumulative totals; ``num_agents`` is
    the population size *during* the phase (after the fault, for fault
    phases), so ``parallel_time`` uses the right clock even under churn.
    ``scheduler`` names the pair-selection bias active when the phase
    ended — for epoch timelines it carries the segment and epoch index
    (``clustered@epoch1``), which is what the per-epoch recovery tables
    group by.
    """

    index: int
    kind: str  # "run" | "fault"
    label: str
    num_agents: int
    interactions: int
    events: int
    silent: bool
    stop_reason: str  # silence | predicate | events | interactions | fault
    distance: Optional[int]
    wall_time_s: float
    scheduler: str = "uniform"

    @property
    def parallel_time(self) -> float:
        """Phase duration in the paper's clock (interactions / n)."""
        return self.interactions / self.num_agents


@dataclass
class ScenarioResult:
    """One executed scenario instance: the phase timeline and the end state."""

    scenario_name: str
    protocol_name: str
    seed: Optional[int]
    phase_logs: List[PhaseLog] = field(default_factory=list)
    final_configuration: Optional[Configuration] = None
    wall_time_s: float = 0.0
    #: Logical trace records (``run_scenario(..., collect_trace=True)``)
    #: — plain dicts without a run index, which the trace merge adds;
    #: deterministic in the seed, so they survive worker round-trips.
    trace_events: List[Dict] = field(default_factory=list)

    @property
    def total_interactions(self) -> int:
        return sum(log.interactions for log in self.phase_logs)

    @property
    def total_events(self) -> int:
        return sum(log.events for log in self.phase_logs)

    @property
    def total_parallel_time(self) -> float:
        """Sum of per-phase parallel times (n may change under churn)."""
        return sum(log.parallel_time for log in self.phase_logs)

    @property
    def recovered_all(self) -> bool:
        """True iff every run phase that follows a fault reached silence."""
        return all(
            run.silent for _, run in self.recovery_pairs() if run is not None
        )

    def recovery_pairs(self) -> List[Tuple[PhaseLog, Optional[PhaseLog]]]:
        """Each fault phase paired with the next run phase (its recovery).

        Several consecutive faults share the same recovery phase; a
        trailing fault with no run phase after it pairs with ``None``.
        """
        pairs: List[Tuple[PhaseLog, Optional[PhaseLog]]] = []
        pending: List[PhaseLog] = []
        for log in self.phase_logs:
            if log.kind == "fault":
                pending.append(log)
            elif pending:
                pairs.extend((fault, log) for fault in pending)
                pending = []
        pairs.extend((fault, None) for fault in pending)
        return pairs

    def __repr__(self) -> str:
        return (
            f"ScenarioResult({self.scenario_name}, "
            f"{len(self.phase_logs)} phases, "
            f"events={self.total_events}, "
            f"recovered_all={self.recovered_all})"
        )


# ----------------------------------------------------------------------
# Start configurations and predicates
# ----------------------------------------------------------------------
def _start_configuration(scenario, protocol, rng) -> Configuration:
    start = scenario.start
    if start.kind == "solved":
        return solved_configuration(protocol)
    if start.kind == "random":
        return random_configuration(protocol, seed=rng)
    if start.kind == "k_distant":
        return k_distant_configuration(protocol, start.k, seed=rng)
    if start.kind == "pileup":
        state = (
            start.state
            if start.state is not None
            else protocol.num_ranks - 1
        )
        return all_in_state_configuration(protocol, state)
    if start.kind == "all_in_extras":
        return all_in_extras_configuration(protocol, seed=rng)
    raise ExperimentError(f"unknown start kind {start.kind!r}")


def _predicate(
    name: str, protocol: PopulationProtocol
) -> Callable[[Configuration], bool]:
    if name == "ranked":
        if not isinstance(protocol, RankingProtocol):
            raise ExperimentError(
                f"'ranked' predicate needs a ranking protocol, "
                f"got {protocol.name}"
            )
        return protocol.is_ranked
    if name == "leader":
        return lambda config: count_leaders(protocol, config) == 1
    raise ExperimentError(f"unknown predicate {name!r}")


def _resolve_state(
    spec_state: Union[int, str], protocol: PopulationProtocol
) -> int:
    """Resolve symbolic state names in fault specs against a protocol."""
    if isinstance(spec_state, str):
        if spec_state == "leader":
            return 0
        if spec_state == "first_extra":
            if (
                not isinstance(protocol, RankingProtocol)
                or protocol.num_extra_states == 0
            ):
                raise ExperimentError(
                    f"{protocol.name} has no extra states for 'first_extra'"
                )
            return protocol.num_ranks
        raise ExperimentError(
            f"unknown symbolic state {spec_state!r} "
            "(expected 'leader' or 'first_extra')"
        )
    state = int(spec_state)
    if not 0 <= state < protocol.num_states:
        raise ExperimentError(
            f"fault state {state} outside state space "
            f"[0, {protocol.num_states})"
        )
    return state


def _distance(protocol, configuration) -> Optional[int]:
    if isinstance(protocol, RankingProtocol):
        return distance_from_solved(protocol, configuration)
    return None


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def _make_engine(
    scenario, protocol, configuration, rng, start_epoch=0,
    instrumentation=None, backend="python",
):
    if scenario.timeline:
        # Time-varying adversary: the whole timeline compiles into the
        # weighted jump fast path whenever every segment does; the
        # rejection engine realises the identical step distribution
        # otherwise.  ``start_epoch`` resumes the timeline after a
        # churn-induced engine rebuild.
        timeline = build_epoch_scheduler(scenario, protocol)
        engine = try_weighted_engine(
            protocol, configuration, rng, timeline, start_epoch=start_epoch,
            instrumentation=instrumentation,
        )
        if engine is not None:
            return engine
        return ScheduledEngine(
            protocol, configuration, rng, timeline, start_epoch=start_epoch,
            instrumentation=instrumentation,
        )
    scheduler = build_scheduler(scenario.scheduler, protocol)
    if scheduler is None:
        # Uniform phases are the only ones the numpy batch kernel can
        # serve (biased schedulers perturb the pair law it freezes);
        # unsupported protocols fall back to the scalar jump engine.
        if backend == "numpy":
            from ..core.batch import BatchEngine, batch_supported

            if batch_supported(protocol):
                return BatchEngine(
                    protocol, configuration, rng,
                    instrumentation=instrumentation,
                )
        return JumpEngine(
            protocol, configuration, rng, instrumentation=instrumentation
        )
    if isinstance(scheduler, AgentScheduler):
        # Identity-level adversaries need explicit agents.
        return AgentScheduledEngine(
            protocol, configuration, rng, scheduler,
            instrumentation=instrumentation,
        )
    # Biased phases run on the weighted jump fast path whenever the
    # scheduler compiles into the weighted fused index; the
    # rejection engine remains the fallback for exotic schedulers.
    engine = try_weighted_engine(
        protocol, configuration, rng, scheduler,
        instrumentation=instrumentation,
    )
    if engine is not None:
        return engine
    return ScheduledEngine(
        protocol, configuration, rng, scheduler,
        instrumentation=instrumentation,
    )


def _scheduler_label(engine) -> str:
    """Human-readable name of the bias currently driving an engine."""
    scheduler = getattr(engine, "scheduler", None)
    if scheduler is None:
        return "uniform"
    if isinstance(scheduler, EpochScheduler):
        return f"{scheduler.segment_label(engine.epoch)}@epoch{engine.epoch}"
    return scheduler.name


def _remap_counts(
    counts: List[int],
    old_protocol: PopulationProtocol,
    new_protocol: PopulationProtocol,
    rng: np.random.Generator,
) -> List[int]:
    """Carry a configuration across a churn-induced state-space change.

    Rank states map to the same rank, extra states to the same extra
    index; agents whose state no longer exists are rebooted in uniformly
    random states of the new space (their memory is gone — exactly a
    transient fault, which self-stabilisation must absorb anyway).
    """
    new_counts = [0] * new_protocol.num_states
    displaced = 0
    if isinstance(old_protocol, RankingProtocol) and isinstance(
        new_protocol, RankingProtocol
    ):
        shared_ranks = min(old_protocol.num_ranks, new_protocol.num_ranks)
        shared_extras = min(
            old_protocol.num_extra_states, new_protocol.num_extra_states
        )
        for state, count in enumerate(counts):
            if state < shared_ranks:
                new_counts[state] += count
            elif (
                state >= old_protocol.num_ranks
                and state - old_protocol.num_ranks < shared_extras
            ):
                new_counts[
                    new_protocol.num_ranks + state - old_protocol.num_ranks
                ] += count
            else:
                displaced += count
    else:
        shared = min(len(counts), new_protocol.num_states)
        for state in range(shared):
            new_counts[state] += counts[state]
        displaced = sum(counts[shared:])
    if displaced:
        landed = rng.integers(0, new_protocol.num_states, size=displaced)
        for state in landed:
            new_counts[int(state)] += 1
    return new_counts


def _apply_fault(
    phase: FaultPhase,
    scenario: Scenario,
    protocol: PopulationProtocol,
    configuration: Configuration,
    rng: np.random.Generator,
) -> Tuple[PopulationProtocol, Configuration]:
    """Apply one fault; returns the (possibly rebuilt) protocol and config."""
    n = configuration.num_agents
    if phase.kind == "corrupt":
        return protocol, corrupt_agents(
            configuration,
            phase.victim_count(n),
            seed=rng,
            target_states=phase.target_states,
        )
    if phase.kind == "crash":
        return protocol, crash_and_replace(
            configuration,
            phase.victim_count(n),
            replacement_state=_resolve_state(phase.replacement_state, protocol),
            seed=rng,
        )
    if phase.kind == "swap":
        return protocol, adversarial_swap(
            configuration,
            _resolve_state(phase.state_a, protocol),
            _resolve_state(phase.state_b, protocol),
        )
    if phase.kind == "churn":
        # A scripted fault must do what it says or fail loudly — a
        # silently weakened fault would mislabel the recovery tables.
        new_n = n - phase.departures + phase.arrivals
        if phase.departures > n or new_n < 2:
            raise ExperimentError(
                f"churn -{phase.departures}/+{phase.arrivals} on "
                f"{n} agents would leave {new_n}; protocols need >= 2"
            )
        shrunk = depart_agents(configuration, phase.departures, seed=rng)
        # ``retier=True``: churn growing (or shrinking) n past the
        # pinned ring/line lattice window re-derives the lattice
        # parameter from the new size instead of raising; only sizes
        # *no* lattice of the family covers still fail.
        try:
            new_protocol = scenario.protocol.build(
                num_agents=new_n, retier=True
            )
        except ProtocolError as error:
            raise ExperimentError(
                f"churn resized the population to {new_n}, which no "
                f"{scenario.protocol.kind} lattice can represent: {error}"
            ) from error
        counts = _remap_counts(
            shrunk.counts_list(), protocol, new_protocol, rng
        )
        resized = Configuration(counts)
        if phase.arrivals:
            resized = arrive_agents(
                resized,
                phase.arrivals,
                _resolve_state(phase.arrival_state, new_protocol),
                seed=rng,
            )
        return new_protocol, resized
    raise ExperimentError(f"unknown fault kind {phase.kind!r}")


def _execute_run(
    engine,
    protocol: PopulationProtocol,
    phase: RunPhase,
    default_max_events: Optional[int],
) -> Tuple[bool, str]:
    """Drive the engine through one run phase; returns (silent, reason)."""
    base_events = engine.events
    base_interactions = engine.interactions
    max_events = (
        phase.max_events if phase.max_events is not None else default_max_events
    )
    event_cap = None if max_events is None else base_events + max_events
    interaction_cap = (
        None
        if phase.max_interactions is None
        else base_interactions + phase.max_interactions
    )

    if phase.until == "predicate":
        predicate = _predicate(phase.predicate, protocol)
        while True:
            if predicate(Configuration(engine.counts)):
                return engine.is_silent(), "predicate"
            chunk_cap = engine.events + phase.check_every
            if event_cap is not None:
                chunk_cap = min(chunk_cap, event_cap)
            silent = engine.run(
                max_interactions=interaction_cap, max_events=chunk_cap
            )
            if silent:
                reason = (
                    "predicate"
                    if predicate(Configuration(engine.counts))
                    else "silence"
                )
                return True, reason
            if event_cap is not None and engine.events >= event_cap:
                if predicate(Configuration(engine.counts)):
                    return False, "predicate"
                return False, "events"
            if (
                interaction_cap is not None
                and engine.interactions >= interaction_cap
            ):
                if predicate(Configuration(engine.counts)):
                    return False, "predicate"
                return False, "interactions"

    silent = engine.run(max_interactions=interaction_cap, max_events=event_cap)
    if silent:
        return True, "silence"
    if event_cap is not None and engine.events >= event_cap:
        return False, "events"
    return False, "interactions"


def run_scenario(
    scenario: Scenario,
    seed: Union[int, np.random.Generator, np.random.SeedSequence, None] = None,
    default_max_events: Optional[int] = None,
    collect_trace: bool = False,
    backend: str = "python",
    trace_observer: Optional[Callable[[Dict], None]] = None,
) -> ScenarioResult:
    """Execute one scenario instance; a pure function of ``seed``.

    ``default_max_events`` caps run phases that declare no ``max_events``
    of their own (the safety net for exploratory scenarios on schedulers
    or protocols that may not converge inside a phase).

    ``backend="numpy"`` runs uniform-scheduler phases on the vectorised
    batch kernel where the protocol supports it (biased/epoch scenarios
    keep their scalar engines); the step distribution is unchanged, and
    the fault seams (``reset_configuration``, churn rebuild) work
    identically.

    ``collect_trace`` additionally records the run's logical history
    (phase lifecycle, faults, engine epoch switches / resyncs /
    snapshot-restores) as plain dicts in ``result.trace_events``.
    Instrumentation never consumes randomness, so a traced run is
    bit-identical to an untraced one at the same seed, and the records
    carry no wall-clock fields — the merged trace of a campaign is the
    same whatever worker count produced it.

    ``trace_observer`` receives each logical record as it is produced —
    the live-streaming seam (``repro serve`` pushes these straight onto
    a WebSocket).  Observer exceptions are swallowed: a broken consumer
    must not corrupt the simulation.  The records land in
    ``result.trace_events`` only when ``collect_trace`` is also set, so
    pure streaming keeps results lean.
    """
    rng = make_rng(
        np.random.default_rng(seed)
        if isinstance(seed, np.random.SeedSequence)
        else seed
    )
    seed_value = seed if isinstance(seed, int) else None
    protocol = scenario.protocol.build()
    configuration = _start_configuration(scenario, protocol, rng)
    instr = None
    trace: List[Dict] = []
    tracing = collect_trace or trace_observer is not None

    def record(payload: Dict) -> None:
        trace.append(payload)
        if trace_observer is not None:
            try:
                trace_observer(payload)
            except Exception:
                pass

    if tracing:
        from ..obs import Instrumentation

        instr = Instrumentation(trace=True)
        record(
            {
                "kind": "run_start",
                "scenario": scenario.name,
                "protocol": protocol.name,
                "num_agents": protocol.num_agents,
            }
        )

    def drain_marks(phase_index: int) -> None:
        """Fold engine marks (epoch/resync/snapshot) into the trace."""
        if instr is None or not instr.marks:
            return
        for mark in instr.marks:
            annotated = dict(mark)
            annotated["phase"] = phase_index
            record(annotated)
        instr.marks.clear()

    engine = _make_engine(
        scenario, protocol, configuration, rng, instrumentation=instr,
        backend=backend,
    )
    result = ScenarioResult(
        scenario_name=scenario.name,
        protocol_name=protocol.name,
        seed=seed_value,
    )
    start_wall = time.perf_counter()
    for index, phase in enumerate(scenario.phases):
        phase_wall = time.perf_counter()
        if isinstance(phase, RunPhase):
            label = phase.label or f"run:{phase.until}"
            if tracing:
                record(
                    {
                        "kind": "phase_start",
                        "phase": index,
                        "phase_kind": "run",
                        "label": label,
                    }
                )
            events_before = engine.events
            interactions_before = engine.interactions
            silent, reason = _execute_run(
                engine, protocol, phase, default_max_events
            )
            config_after = Configuration(engine.counts)
            log = PhaseLog(
                index=index,
                kind="run",
                label=label,
                num_agents=protocol.num_agents,
                interactions=engine.interactions - interactions_before,
                events=engine.events - events_before,
                silent=silent,
                stop_reason=reason,
                distance=_distance(protocol, config_after),
                wall_time_s=time.perf_counter() - phase_wall,
                scheduler=_scheduler_label(engine),
            )
            result.phase_logs.append(log)
        else:
            label = phase.label or f"fault:{phase.kind}"
            if tracing:
                record(
                    {
                        "kind": "phase_start",
                        "phase": index,
                        "phase_kind": "fault",
                        "label": label,
                    }
                )
            configuration = Configuration(engine.counts)
            new_protocol, new_configuration = _apply_fault(
                phase, scenario, protocol, configuration, rng
            )
            if new_protocol is protocol:
                # In-place mutation: keep the engine (and its compiled
                # tables / counters); just resync families and weight.
                engine.reset_configuration(new_configuration)
            else:
                # Churn rebuilt the protocol; the epoch timeline resumes
                # at the segment the old engine had reached (the current
                # segment's elapsed duration restarts with the rebuilt
                # engine's counters).
                protocol = new_protocol
                engine = _make_engine(
                    scenario, protocol, new_configuration, rng,
                    start_epoch=getattr(engine, "epoch", 0),
                    instrumentation=instr, backend=backend,
                )
            log = PhaseLog(
                index=index,
                kind="fault",
                label=label,
                num_agents=protocol.num_agents,
                interactions=0,
                events=0,
                silent=engine.is_silent(),
                stop_reason="fault",
                distance=_distance(protocol, new_configuration),
                wall_time_s=time.perf_counter() - phase_wall,
                scheduler=_scheduler_label(engine),
            )
            result.phase_logs.append(log)
            if tracing:
                record(
                    {
                        "kind": "fault",
                        "phase": index,
                        "label": label,
                        "fault_kind": phase.kind,
                        "num_agents": protocol.num_agents,
                        "distance": log.distance,
                    }
                )
        if tracing:
            drain_marks(index)
            log = result.phase_logs[-1]
            record(
                {
                    "kind": "phase_end",
                    "phase": index,
                    "phase_kind": log.kind,
                    "label": log.label,
                    "num_agents": log.num_agents,
                    "interactions": log.interactions,
                    "events": log.events,
                    "silent": log.silent,
                    "stop_reason": log.stop_reason,
                    "distance": log.distance,
                    "scheduler": log.scheduler,
                }
            )
    result.final_configuration = Configuration(engine.counts)
    result.wall_time_s = time.perf_counter() - start_wall
    if tracing:
        record(
            {
                "kind": "run_end",
                "recovered_all": result.recovered_all,
                "total_events": result.total_events,
            }
        )
    if collect_trace:
        result.trace_events = trace
    return result
