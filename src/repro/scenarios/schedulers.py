"""Concrete pair-selection schedulers for scenario campaigns.

The engine-side seam (:class:`~repro.core.scheduler.PairScheduler`, the
rejection-sampling :class:`~repro.core.scheduler.ScheduledEngine`, and
the ``run_protocol(..., scheduler=...)`` hook) lives in
:mod:`repro.core.scheduler`; this module provides the adversaries the
scenario engine scripts against it:

* :class:`StateBiasedScheduler` — per-state agent selection weights
  (e.g. agents stuck in extra states are rarely scheduled, starving the
  reset machinery);
* :class:`ClusteredScheduler` — contiguous blocks of the state space
  interact freely, cross-block pairs are throttled (an adversary
  localising communication, the slow-mixing regime).

Both keep every pair weight strictly positive, so they are fair:
silence remains reachable, only slower.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.protocol import PopulationProtocol, RankingProtocol
from ..core.scheduler import PairScheduler, UniformScheduler
from ..exceptions import ExperimentError
from .spec import SchedulerSpec

__all__ = [
    "ClusteredScheduler",
    "StateBiasedScheduler",
    "build_scheduler",
]


class StateBiasedScheduler(PairScheduler):
    """Agents selected with probability proportional to a per-state weight.

    An ordered pair's weight is the product of its endpoints' weights,
    i.e. initiator and responder are chosen independently under the same
    bias.  Weights must lie in ``(0, 1]``.
    """

    def __init__(self, state_weights: Sequence[float]) -> None:
        weights = [float(w) for w in state_weights]
        if not weights:
            raise ExperimentError("state weights must be non-empty")
        for state, weight in enumerate(weights):
            if not 0.0 < weight <= 1.0:
                raise ExperimentError(
                    f"state {state} weight {weight} outside (0, 1]"
                )
        self._weights = weights

    @property
    def name(self) -> str:
        return "state_biased"

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        return self._weights[initiator_state] * self._weights[responder_state]

    def state_classes(self, num_states: int) -> List[int]:
        """States with the same selection weight are interchangeable."""
        if num_states != len(self._weights):
            raise ExperimentError(
                f"scheduler has {len(self._weights)} state weights, "
                f"protocol has {num_states} states"
            )
        by_weight: dict = {}
        return [
            by_weight.setdefault(weight, len(by_weight))
            for weight in self._weights
        ]


class ClusteredScheduler(PairScheduler):
    """Pairs inside a state cluster fire freely; cross-cluster rarely.

    States are split into ``num_clusters`` contiguous blocks; a pair
    whose endpoints fall in different blocks gets relative weight
    ``across`` (``0 < across <= 1``).  With rank states laid out in
    structural order (trap lines, tree levels), contiguous blocks are a
    genuinely adversarial locality pattern.
    """

    def __init__(
        self, num_states: int, num_clusters: int, across: float = 0.05
    ) -> None:
        if num_clusters < 1:
            raise ExperimentError(
                f"num_clusters must be >= 1, got {num_clusters}"
            )
        if not 0.0 < across <= 1.0:
            raise ExperimentError(
                f"across-cluster weight must be in (0, 1], got {across}"
            )
        num_clusters = min(num_clusters, num_states)
        block = (num_states + num_clusters - 1) // num_clusters
        self._cluster = [s // block for s in range(num_states)]
        self._across = float(across)

    @property
    def name(self) -> str:
        return "clustered"

    def cluster_of(self, state: int) -> int:
        """Cluster id of a state (exposed for tests/analysis)."""
        return self._cluster[state]

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        if self._cluster[initiator_state] == self._cluster[responder_state]:
            return 1.0
        return self._across

    def state_classes(self, num_states: int) -> List[int]:
        """Pair weights depend only on the endpoints' clusters."""
        if num_states != len(self._cluster):
            raise ExperimentError(
                f"scheduler covers {len(self._cluster)} states, "
                f"protocol has {num_states}"
            )
        return list(self._cluster)


def build_scheduler(
    spec: Optional[SchedulerSpec], protocol: PopulationProtocol
) -> Optional[PairScheduler]:
    """Instantiate a scheduler spec against a concrete protocol.

    Returns ``None`` for the uniform scheduler so
    :func:`~repro.core.engine.run_protocol` keeps its allocation-free
    fast path — selecting uniform must cost nothing.
    """
    if spec is None or spec.is_uniform:
        return None
    if spec.kind == "state_biased":
        if isinstance(protocol, RankingProtocol):
            weights = [spec.rank_weight] * protocol.num_ranks + [
                spec.extra_weight
            ] * protocol.num_extra_states
        else:
            weights = [spec.rank_weight] * protocol.num_states
        return StateBiasedScheduler(weights)
    if spec.kind == "clustered":
        return ClusteredScheduler(
            protocol.num_states, spec.num_clusters, across=spec.across
        )
    raise ExperimentError(f"unknown scheduler kind {spec.kind!r}")


UNIFORM = UniformScheduler()
