"""Concrete pair-selection schedulers for scenario campaigns.

The engine-side seam (:class:`~repro.core.scheduler.PairScheduler`, the
rejection-sampling :class:`~repro.core.scheduler.ScheduledEngine`, and
the ``run_protocol(..., scheduler=...)`` hook) lives in
:mod:`repro.core.scheduler`; this module provides the adversaries the
scenario engine scripts against it:

* :class:`StateBiasedScheduler` — per-state agent selection weights
  (e.g. agents stuck in extra states are rarely scheduled, starving the
  reset machinery);
* :class:`ClusteredScheduler` — contiguous blocks of the state space
  interact freely, cross-block pairs are throttled (an adversary
  localising communication, the slow-mixing regime);
* :class:`TargetedSuppressionScheduler` /
  :class:`DegreeSkewedScheduler` — **agent-identity** adversaries
  (:class:`~repro.core.scheduler.AgentScheduler`): a fixed set of
  devices is jammed, or contact rates follow a skewed degree profile.
  These run on the explicit-agent engine;
* :func:`build_epoch_scheduler` — assembles a scenario's ``timeline``
  into a :class:`~repro.core.scheduler.EpochScheduler`, resolving named
  predicates against the concrete protocol.

All keep every weight strictly positive, so they are fair: silence
remains reachable, only slower.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.protocol import PopulationProtocol, RankingProtocol
from ..core.scheduler import (
    AgentScheduler,
    EpochBoundary,
    EpochScheduler,
    PairScheduler,
    UniformScheduler,
)
from ..exceptions import ExperimentError
from .spec import Scenario, SchedulerSpec

__all__ = [
    "ClusteredScheduler",
    "DegreeSkewedScheduler",
    "StateBiasedScheduler",
    "TargetedSuppressionScheduler",
    "build_epoch_scheduler",
    "build_scheduler",
]


class StateBiasedScheduler(PairScheduler):
    """Agents selected with probability proportional to a per-state weight.

    An ordered pair's weight is the product of its endpoints' weights,
    i.e. initiator and responder are chosen independently under the same
    bias.  Weights must lie in ``(0, 1]``.
    """

    def __init__(self, state_weights: Sequence[float]) -> None:
        weights = [float(w) for w in state_weights]
        if not weights:
            raise ExperimentError("state weights must be non-empty")
        for state, weight in enumerate(weights):
            if not 0.0 < weight <= 1.0:
                raise ExperimentError(
                    f"state {state} weight {weight} outside (0, 1]"
                )
        self._weights = weights

    @property
    def name(self) -> str:
        return "state_biased"

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        return self._weights[initiator_state] * self._weights[responder_state]

    def state_classes(self, num_states: int) -> List[int]:
        """States with the same selection weight are interchangeable."""
        if num_states != len(self._weights):
            raise ExperimentError(
                f"scheduler has {len(self._weights)} state weights, "
                f"protocol has {num_states} states"
            )
        by_weight: dict = {}
        return [
            by_weight.setdefault(weight, len(by_weight))
            for weight in self._weights
        ]


class ClusteredScheduler(PairScheduler):
    """Pairs inside a state cluster fire freely; cross-cluster rarely.

    States are split into ``num_clusters`` contiguous blocks; a pair
    whose endpoints fall in different blocks gets relative weight
    ``across`` (``0 < across <= 1``).  With rank states laid out in
    structural order (trap lines, tree levels), contiguous blocks are a
    genuinely adversarial locality pattern.
    """

    def __init__(
        self, num_states: int, num_clusters: int, across: float = 0.05
    ) -> None:
        if num_clusters < 1:
            raise ExperimentError(
                f"num_clusters must be >= 1, got {num_clusters}"
            )
        if not 0.0 < across <= 1.0:
            raise ExperimentError(
                f"across-cluster weight must be in (0, 1], got {across}"
            )
        num_clusters = min(num_clusters, num_states)
        block = (num_states + num_clusters - 1) // num_clusters
        self._cluster = [s // block for s in range(num_states)]
        self._across = float(across)

    @property
    def name(self) -> str:
        return "clustered"

    def cluster_of(self, state: int) -> int:
        """Cluster id of a state (exposed for tests/analysis)."""
        return self._cluster[state]

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        if self._cluster[initiator_state] == self._cluster[responder_state]:
            return 1.0
        return self._across

    def state_classes(self, num_states: int) -> List[int]:
        """Pair weights depend only on the endpoints' clusters."""
        if num_states != len(self._cluster):
            raise ExperimentError(
                f"scheduler covers {len(self._cluster)} states, "
                f"protocol has {num_states}"
            )
        return list(self._cluster)


class TargetedSuppressionScheduler(AgentScheduler):
    """A fixed set of agents is rarely scheduled; the rest fire freely.

    Models jammed or duty-cycled devices: the adversary picks its
    victims by *identity*, so whatever states those agents carry —
    including the unique leader after a crash lands it on a suppressed
    device — propagate slowly.  ``weight`` is the victims' relative
    selection weight, in ``(0, 1]``.
    """

    def __init__(self, targets: Sequence[int], weight: float = 0.05) -> None:
        targets = sorted({int(t) for t in targets})
        if not targets:
            raise ExperimentError("targeted suppression needs >= 1 target")
        if targets[0] < 0:
            raise ExperimentError(
                f"agent ids must be >= 0, got {targets[0]}"
            )
        if not 0.0 < weight <= 1.0:
            raise ExperimentError(
                f"suppression weight must be in (0, 1], got {weight}"
            )
        self._targets = frozenset(targets)
        self._max_target = targets[-1]
        self._weight = float(weight)

    @property
    def name(self) -> str:
        return "targeted"

    @property
    def targets(self) -> frozenset:
        """The suppressed agent ids (exposed for tests/analysis)."""
        return self._targets

    def agent_weight(self, agent: int, num_agents: int) -> float:
        if self._max_target >= num_agents:
            raise ExperimentError(
                f"targeted scheduler suppresses agent {self._max_target}, "
                f"population has only {num_agents} agents"
            )
        return self._weight if agent in self._targets else 1.0


class DegreeSkewedScheduler(AgentScheduler):
    """Contact rates follow a skewed degree profile over agent ids.

    Agent ``i`` is selected with weight
    ``max(floor, ((i + 1) / n) ** exponent)`` — low-index agents are
    near-isolated leaves, high-index agents are hubs.  ``exponent``
    controls the skew (0 = uniform), ``floor > 0`` keeps the scheduler
    fair.
    """

    def __init__(self, exponent: float = 1.0, floor: float = 0.05) -> None:
        if exponent < 0.0:
            raise ExperimentError(
                f"degree exponent must be >= 0, got {exponent}"
            )
        if not 0.0 < floor <= 1.0:
            raise ExperimentError(
                f"degree floor must be in (0, 1], got {floor}"
            )
        self._exponent = float(exponent)
        self._floor = float(floor)

    @property
    def name(self) -> str:
        return "degree_skewed"

    def agent_weight(self, agent: int, num_agents: int) -> float:
        return max(
            self._floor, ((agent + 1) / num_agents) ** self._exponent
        )


def build_scheduler(spec: Optional[SchedulerSpec], protocol: PopulationProtocol):
    """Instantiate a scheduler spec against a concrete protocol.

    Returns ``None`` for the uniform scheduler so
    :func:`~repro.core.engine.run_protocol` keeps its allocation-free
    fast path — selecting uniform must cost nothing.  State-level kinds
    yield a :class:`~repro.core.scheduler.PairScheduler`; agent-identity
    kinds yield an :class:`~repro.core.scheduler.AgentScheduler` (the
    scenario engine routes those to the explicit-agent engine).
    """
    if spec is None or spec.is_uniform:
        return None
    if spec.kind == "state_biased":
        if isinstance(protocol, RankingProtocol):
            weights = [spec.rank_weight] * protocol.num_ranks + [
                spec.extra_weight
            ] * protocol.num_extra_states
        else:
            weights = [spec.rank_weight] * protocol.num_states
        return StateBiasedScheduler(weights)
    if spec.kind == "clustered":
        return ClusteredScheduler(
            protocol.num_states, spec.num_clusters, across=spec.across
        )
    if spec.kind == "targeted":
        # A scripted adversary must do what it says or fail loudly — a
        # silently clamped target set would mislabel the recovery
        # tables (same rule as the churn fault).
        if spec.targets >= protocol.num_agents:
            raise ExperimentError(
                f"targeted scheduler suppresses {spec.targets} agents "
                f"but the population has only {protocol.num_agents}; "
                "at least one agent must stay unsuppressed"
            )
        return TargetedSuppressionScheduler(
            range(spec.targets), weight=spec.target_weight
        )
    if spec.kind == "degree_skewed":
        return DegreeSkewedScheduler(
            exponent=spec.exponent, floor=spec.floor
        )
    raise ExperimentError(f"unknown scheduler kind {spec.kind!r}")


def _epoch_predicate(
    name: str, protocol: PopulationProtocol
) -> Callable[[Sequence[int]], bool]:
    """Resolve a named predicate into an engine-level counts callable."""
    if name == "ranked":
        if not isinstance(protocol, RankingProtocol):
            raise ExperimentError(
                f"'ranked' epoch boundary needs a ranking protocol, "
                f"got {protocol.name}"
            )
        return lambda counts: protocol.is_ranked(Configuration(counts))
    if name == "leader":
        from ..protocols.leader import count_leaders

        return (
            lambda counts: count_leaders(protocol, Configuration(counts)) == 1
        )
    raise ExperimentError(f"unknown epoch predicate {name!r}")


def build_epoch_scheduler(
    scenario: Scenario, protocol: PopulationProtocol
) -> EpochScheduler:
    """Assemble a scenario's timeline into an :class:`EpochScheduler`.

    Each segment's scheduler spec is built against the concrete
    protocol (uniform segments become real
    :class:`~repro.core.scheduler.UniformScheduler` instances — inside
    a timeline there is no fast-path sentinel to preserve) and named
    predicates resolve to counts-level callables.
    """
    if not scenario.timeline:
        raise ExperimentError(
            f"scenario {scenario.name!r} has no scheduler timeline"
        )
    segments = []
    for epoch in scenario.timeline:
        scheduler = build_scheduler(epoch.scheduler, protocol)
        if scheduler is None:
            scheduler = UniformScheduler()
        boundary = None
        if epoch.until is not None:
            boundary = EpochBoundary(
                kind=epoch.until,
                value=epoch.value,
                predicate=(
                    _epoch_predicate(epoch.predicate, protocol)
                    if epoch.until == "predicate"
                    else None
                ),
                check_every=epoch.check_every,
            )
        segments.append((boundary, scheduler))
    return EpochScheduler(
        segments, labels=[epoch.label for epoch in scenario.timeline]
    )


UNIFORM = UniformScheduler()
