"""Campaigns: many independently seeded instances of one scenario.

A *campaign* repeats a scenario with independent randomness, so the
recovery-time measurements in :mod:`repro.analysis.recovery` are
distributions rather than anecdotes.  Seeding follows the repo-wide
sweep discipline: one root ``SeedSequence`` is spawned into one child
per repetition *before* dispatch, and the jobs run through the shared
:func:`repro.analysis.sweep.fan_out` process-pool seam — so a campaign
is bit-identical at every worker count, including serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro._deps import np

from ..analysis.supervision import (
    JobFailure,
    SupervisionPolicy,
    supervised_map,
)
from ..exceptions import ExperimentError
from .engine import ScenarioResult, run_scenario
from .spec import Scenario

__all__ = ["CampaignResult", "CampaignRunner", "run_campaign"]


@dataclass
class CampaignResult:
    """All repetitions of one scenario campaign.

    ``failures`` lists repetitions quarantined by the supervised
    executor (only non-empty under a ``fail_fast=False``
    :class:`~repro.analysis.supervision.SupervisionPolicy`); the
    statistics below cover the surviving ``results``.
    """

    scenario: Scenario
    seed: int
    results: List[ScenarioResult] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        return len(self.results)

    @property
    def recovered_fraction(self) -> float:
        """Fraction of repetitions whose every post-fault phase re-silenced."""
        if not self.results:
            return 0.0
        recovered = sum(1 for r in self.results if r.recovered_all)
        return recovered / len(self.results)

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.scenario.name}, "
            f"repetitions={self.repetitions}, "
            f"recovered={self.recovered_fraction:.0%})"
        )


def _campaign_job(job: tuple) -> ScenarioResult:
    """One scenario instance, self-contained for worker processes.

    The repetition's randomness is its own pre-spawned ``SeedSequence``
    child, so the result is a pure function of the job tuple —
    bit-identical inline or in any worker process.
    """
    scenario, child, default_max_events, collect_trace = job
    return run_scenario(
        scenario,
        seed=child,
        default_max_events=default_max_events,
        collect_trace=collect_trace,
    )


def run_campaign(
    scenario: Scenario,
    repetitions: int = 5,
    seed: int = 0,
    workers: Optional[int] = None,
    default_max_events: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    collect_trace: bool = False,
) -> CampaignResult:
    """Run ``repetitions`` independent instances of ``scenario``.

    ``workers`` > 1 fans the instances out over the supervised process
    pool (the scenario spec and its results are plain data, so they
    pickle); ``default_max_events`` caps run phases that carry no
    budget of their own.  ``policy`` tunes supervision; with
    ``fail_fast=False`` quarantined repetitions are recorded in
    :attr:`CampaignResult.failures` instead of raising.
    ``collect_trace`` makes every repetition record its logical trace
    (:attr:`~repro.scenarios.engine.ScenarioResult.trace_events`) —
    plain data that travels back from worker processes and merges into
    one campaign trace independent of the worker count.
    """
    if repetitions < 1:
        raise ExperimentError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    children = np.random.SeedSequence(seed).spawn(repetitions)
    jobs = [
        (scenario, child, default_max_events, collect_trace)
        for child in children
    ]
    results, failures = supervised_map(
        _campaign_job, jobs, workers=workers, policy=policy
    )
    if failures and (policy is None or policy.fail_fast):
        detail = "; ".join(repr(failure) for failure in failures[:5])
        raise ExperimentError(
            f"{len(failures)} of {len(jobs)} campaign repetitions of "
            f"{scenario.name!r} failed under supervision: {detail}"
        )
    return CampaignResult(
        scenario=scenario,
        seed=seed,
        results=[r for r in results if r is not None],
        failures=failures,
    )


class CampaignRunner:
    """Reusable campaign configuration (repetitions / seed / pool size).

    Thin object wrapper over :func:`run_campaign` for callers that fire
    several scenarios under one execution policy (the CLI and the
    experiment registry do this).
    """

    def __init__(
        self,
        repetitions: int = 5,
        seed: int = 0,
        workers: Optional[int] = None,
        default_max_events: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
    ) -> None:
        self.repetitions = repetitions
        self.seed = seed
        self.workers = workers
        self.default_max_events = default_max_events
        self.policy = policy

    def run(self, scenario: Scenario) -> CampaignResult:
        """Execute one scenario under this runner's policy."""
        return run_campaign(
            scenario,
            repetitions=self.repetitions,
            seed=self.seed,
            workers=self.workers,
            default_max_events=self.default_max_events,
            policy=self.policy,
        )
