"""Scenario engine: scripted fault campaigns over the simulation core.

Self-stabilisation is a statement about recovery from *arbitrary*
configurations under *any* fair scheduler; this package turns that into
runnable workloads.  A :class:`~repro.scenarios.spec.Scenario` scripts a
timeline of run phases and mid-run faults (corruption, crashes, swaps,
population churn) under a pluggable pair scheduler;
:func:`~repro.scenarios.engine.run_scenario` executes one seeded
instance; :func:`~repro.scenarios.campaign.run_campaign` repeats it —
bit-reproducibly, optionally over a process pool — and
:mod:`repro.analysis.recovery` turns the phase logs into recovery-time
distributions.

Quickstart::

    from repro.scenarios import get_campaign, run_campaign
    from repro.analysis.recovery import recovery_table

    campaign = get_campaign("ag_corrupt_recover")
    result = run_campaign(campaign.build("small"), repetitions=5, seed=0)
    print(recovery_table(result).render())
"""

from .campaign import CampaignResult, CampaignRunner, run_campaign
from .catalog import CAMPAIGNS, Campaign, get_campaign, list_campaigns
from .engine import PhaseLog, ScenarioResult, run_scenario
from .schedulers import (
    ClusteredScheduler,
    DegreeSkewedScheduler,
    StateBiasedScheduler,
    TargetedSuppressionScheduler,
    build_epoch_scheduler,
    build_scheduler,
)
from .spec import (
    EpochSpec,
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
)

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "ClusteredScheduler",
    "DegreeSkewedScheduler",
    "EpochSpec",
    "FaultPhase",
    "PhaseLog",
    "ProtocolSpec",
    "RunPhase",
    "Scenario",
    "ScenarioResult",
    "SchedulerSpec",
    "StartSpec",
    "StateBiasedScheduler",
    "TargetedSuppressionScheduler",
    "build_epoch_scheduler",
    "build_scheduler",
    "get_campaign",
    "list_campaigns",
    "run_campaign",
    "run_scenario",
]
