"""Canned fault campaigns, registered for the CLI and the experiments.

Each entry builds a :class:`~repro.scenarios.spec.Scenario` at one of
the repo-wide scales (``smoke`` — seconds, CI; ``small`` — the default;
``paper`` — the sizes worth quoting).  The campaigns mirror the regimes
the paper and its companion works stress:

* ``ag_corrupt_recover`` — the Θ(n²) baseline AG: stabilise, corrupt a
  fraction, re-stabilise, then a crash-and-reboot wave into the leader
  state (the classic fail-and-rejoin k-distant regime of §3).
* ``tree_corrupt_recover`` — the O(n·log n) tree protocol: corruption
  across the whole space, then a crash wave into the reset line
  (exercising the §5 reset machinery mid-run).
* ``line_churn_storm`` — the one-extra-state line-of-traps protocol
  under population churn: departures and arrivals resize ``n`` inside
  the ``m = 2`` lattice window while the run continues.
* ``ag_clustered_adversary`` — AG under the adversarially clustered
  scheduler: interactions are localised into state blocks, slowing
  mixing; corruption lands mid-run.
* ``ag_epoch_cluster_flip`` — AG under an **epoch-switching** adversary
  that re-draws its cluster boundaries on a fixed cadence (simulated
  time), so no static locality assumption survives; corruption lands
  mid-timeline.  Runs on the weighted jump fast path with one
  precompiled index per segment.
* ``tree_epoch_bias_flip`` — the tree protocol under a bias that flips
  **at silence**: the reset machinery is starved while stabilising,
  then a crash wave lands and recovery runs under the inverted bias
  (ranks starved instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..exceptions import ExperimentError
from .spec import (
    EpochSpec,
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
)

__all__ = [
    "Campaign",
    "CAMPAIGNS",
    "get_campaign",
    "list_campaigns",
]

_SCALES = ("smoke", "small", "paper")


def _pick(scale: str, smoke, small, paper):
    if scale not in _SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; expected one of {_SCALES}"
        )
    return {"smoke": smoke, "small": small, "paper": paper}[scale]


@dataclass(frozen=True)
class Campaign:
    """A named, scale-parameterised scenario builder."""

    campaign_id: str
    description: str
    build: Callable[[str], Scenario]
    repetitions: Tuple[int, int, int]  # per scale: smoke, small, paper

    def repetitions_for(self, scale: str) -> int:
        return _pick(scale, *self.repetitions)


def _ag_corrupt_recover(scale: str) -> Scenario:
    n = _pick(scale, 24, 200, 1000)
    budget = _pick(scale, 100_000, 600_000, 6_000_000)
    return Scenario(
        name="ag_corrupt_recover",
        description=(
            "AG baseline: stabilise from random, corrupt 20%, recover, "
            "crash 30% into the leader state, recover again"
        ),
        protocol=ProtocolSpec(kind="ag", num_agents=n),
        start=StartSpec(kind="random"),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(kind="corrupt", fraction=0.2, label="corrupt 20%"),
            RunPhase(until="silence", max_events=budget, label="recover"),
            FaultPhase(
                kind="crash",
                fraction=0.3,
                replacement_state="leader",
                label="crash 30% -> leader",
            ),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


def _tree_corrupt_recover(scale: str) -> Scenario:
    n = _pick(scale, 16, 150, 600)
    budget = _pick(scale, 100_000, 1_000_000, 4_000_000)
    return Scenario(
        name="tree_corrupt_recover",
        description=(
            "Tree protocol: stabilise from random, corrupt 25%, recover, "
            "crash 20% into the reset line, recover again"
        ),
        protocol=ProtocolSpec(kind="tree", num_agents=n),
        start=StartSpec(kind="random"),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(kind="corrupt", fraction=0.25, label="corrupt 25%"),
            RunPhase(until="silence", max_events=budget, label="recover"),
            FaultPhase(
                kind="crash",
                fraction=0.2,
                replacement_state="first_extra",
                label="crash 20% -> reset line",
            ),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


def _line_churn_storm(scale: str) -> Scenario:
    # The m = 2 lattice covers 72 <= n <= 120; the storm wanders inside
    # that window, so every rebuild keeps the same trap geometry.
    budget = _pick(scale, 150_000, 500_000, 1_500_000)
    phases: List = [
        RunPhase(until="silence", max_events=budget, label="stabilise"),
        FaultPhase(
            kind="churn",
            departures=12,
            arrivals=6,
            arrival_state="first_extra",
            label="churn -12/+6",
        ),
        RunPhase(until="silence", max_events=budget, label="recover"),
        FaultPhase(
            kind="churn",
            departures=0,
            arrivals=20,
            arrival_state="first_extra",
            label="churn +20",
        ),
        RunPhase(until="silence", max_events=budget, label="recover"),
    ]
    if scale != "smoke":
        phases.extend(
            [
                FaultPhase(
                    kind="churn",
                    departures=24,
                    arrivals=10,
                    arrival_state="first_extra",
                    label="churn -24/+10",
                ),
                RunPhase(until="silence", max_events=budget, label="recover"),
            ]
        )
    return Scenario(
        name="line_churn_storm",
        description=(
            "Line of traps under churn: agents leave and join mid-run, "
            "resizing n inside the m=2 lattice window (72..120)"
        ),
        protocol=ProtocolSpec(kind="line", num_agents=96, m=2),
        start=StartSpec(kind="random"),
        phases=tuple(phases),
    )


def _ag_clustered_adversary(scale: str) -> Scenario:
    # The clustered scheduler runs through the per-interaction engine,
    # so populations stay small; interaction budgets bound the work.
    n = _pick(scale, 12, 48, 128)
    interactions = _pick(scale, 200_000, 2_000_000, 40_000_000)
    return Scenario(
        name="ag_clustered_adversary",
        description=(
            "AG under an adversarially clustered scheduler (4 state "
            "blocks, cross-block pairs throttled 20x): stabilise, "
            "corrupt 25%, recover"
        ),
        protocol=ProtocolSpec(kind="ag", num_agents=n),
        start=StartSpec(kind="random"),
        scheduler=SchedulerSpec(kind="clustered", num_clusters=4, across=0.05),
        phases=(
            RunPhase(
                until="silence",
                max_interactions=interactions,
                label="stabilise",
            ),
            FaultPhase(kind="corrupt", fraction=0.25, label="corrupt 25%"),
            RunPhase(
                until="silence",
                max_interactions=interactions,
                label="recover",
            ),
        ),
    )


def _ag_epoch_cluster_flip(scale: str) -> Scenario:
    # Alternating cluster suppression: the adversary re-tiles the state
    # space every `period` scheduler steps (2 blocks -> 4 blocks -> 2
    # blocks), so pairs that interacted freely become throttled and
    # vice versa.  Every segment compiles into the weighted fused
    # index, so the whole timeline runs on the weighted fast path.
    # Periods are tuned so every scale crosses at least one boundary
    # mid-run (smoke runs spend ~6k scheduler steps in total).
    n = _pick(scale, 24, 96, 256)
    period = _pick(scale, 1_500, 150_000, 800_000)
    budget = _pick(scale, 100_000, 600_000, 4_000_000)
    return Scenario(
        name="ag_epoch_cluster_flip",
        description=(
            "AG under alternating cluster suppression: the clustered "
            "adversary re-draws its blocks (2 -> 4 -> 2) on a fixed "
            "simulated-time cadence; corruption lands mid-timeline"
        ),
        protocol=ProtocolSpec(kind="ag", num_agents=n),
        start=StartSpec(kind="random"),
        timeline=(
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="clustered", num_clusters=2, across=0.05
                ),
                until="interactions",
                value=period,
            ),
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="clustered", num_clusters=4, across=0.05
                ),
                until="interactions",
                value=period,
            ),
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="clustered", num_clusters=2, across=0.05
                ),
            ),
        ),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(kind="corrupt", fraction=0.25, label="corrupt 25%"),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


def _tree_epoch_bias_flip(scale: str) -> Scenario:
    # Bias flip at silence: while stabilising, agents in the reset line
    # are starved (extra_weight 0.15); the moment the population first
    # silences, the adversary inverts the bias (rank states starved),
    # and the crash wave that follows must be absorbed under it.
    n = _pick(scale, 16, 150, 600)
    budget = _pick(scale, 100_000, 1_000_000, 4_000_000)
    return Scenario(
        name="tree_epoch_bias_flip",
        description=(
            "tree protocol under a bias that flips at silence: reset "
            "line starved while stabilising, ranks starved during the "
            "post-crash recovery"
        ),
        protocol=ProtocolSpec(kind="tree", num_agents=n),
        start=StartSpec(kind="random"),
        timeline=(
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="state_biased", extra_weight=0.15
                ),
                until="silence",
            ),
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="state_biased", rank_weight=0.3, extra_weight=1.0
                ),
            ),
        ),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(
                kind="crash",
                fraction=0.25,
                replacement_state="first_extra",
                label="crash 25% -> reset line",
            ),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


CAMPAIGNS: Dict[str, Campaign] = {
    c.campaign_id: c
    for c in [
        Campaign(
            campaign_id="ag_corrupt_recover",
            description=(
                "stabilise -> corrupt 20% -> recover -> crash 30% -> "
                "recover on the AG baseline"
            ),
            build=_ag_corrupt_recover,
            repetitions=(2, 5, 7),
        ),
        Campaign(
            campaign_id="tree_corrupt_recover",
            description=(
                "stabilise -> corrupt 25% -> recover -> crash 20% into "
                "the reset line on the tree protocol"
            ),
            build=_tree_corrupt_recover,
            repetitions=(2, 5, 7),
        ),
        Campaign(
            campaign_id="line_churn_storm",
            description=(
                "churn storm on the line of traps: n wanders 72..120 "
                "mid-run via departures/arrivals"
            ),
            build=_line_churn_storm,
            repetitions=(2, 5, 7),
        ),
        Campaign(
            campaign_id="ag_clustered_adversary",
            description=(
                "AG under the clustered adversarial scheduler, corruption "
                "mid-run (per-interaction engine, small n)"
            ),
            build=_ag_clustered_adversary,
            repetitions=(2, 4, 5),
        ),
        Campaign(
            campaign_id="ag_epoch_cluster_flip",
            description=(
                "AG under alternating cluster suppression (epoch-"
                "switching clustered adversary on the weighted fast "
                "path), corruption mid-timeline"
            ),
            build=_ag_epoch_cluster_flip,
            repetitions=(2, 4, 6),
        ),
        Campaign(
            campaign_id="tree_epoch_bias_flip",
            description=(
                "tree protocol under a bias flip at silence: reset line "
                "starved before, ranks starved during post-crash recovery"
            ),
            build=_tree_epoch_bias_flip,
            repetitions=(2, 4, 6),
        ),
    ]
}


def list_campaigns() -> List[Campaign]:
    """All canned campaigns, in registration order."""
    return list(CAMPAIGNS.values())


def get_campaign(campaign_id: str) -> Campaign:
    """Look a canned campaign up by id."""
    if campaign_id not in CAMPAIGNS:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ExperimentError(
            f"unknown campaign {campaign_id!r}; known ids: {known}"
        )
    return CAMPAIGNS[campaign_id]
