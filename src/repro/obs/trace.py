"""Versioned JSONL run traces with deterministic logical content.

A trace file is one JSON object per line: a ``header`` record first
(carrying ``version``), then event records.  Records split into two
classes:

* **logical** records — the run's history (run/phase lifecycle, faults,
  epoch switches, snapshot/restore).  They carry *no wall-clock
  fields*: every value is a pure function of the scenario and its seed,
  so traces of the same campaign taken at ``workers=1`` and
  ``workers=N`` merge (in run-index order) to byte-identical logical
  histories.
* **operational** records (:data:`OPERATIONAL_KINDS`) — supervision
  retries/quarantines/pool-rebuilds, shard lifecycle (including the
  cooperative-mode lease protocol: ``lease_claim``/``lease_renew``/
  ``lease_expire``/``lease_steal`` and the fenced ``shard_commit``),
  and timing summaries.  They describe *this execution* and are
  excluded from logical comparison.

Files are written atomically via :func:`repro._io.atomic_write_text`
(the ensemble manifest's temp/fsync/rename discipline), so a killed
writer never leaves a torn trace under a valid name.
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace
from typing import Dict, Iterable, List, Sequence

from .._io import atomic_write_text
from ..exceptions import ExperimentError

__all__ = [
    "OPERATIONAL_KINDS",
    "TRACE_VERSION",
    "TraceReader",
    "TraceWriter",
    "diff_traces",
    "merge_trace_events",
    "summarize_trace",
    "validate_trace",
]

TRACE_VERSION = 1

#: Execution-specific record kinds, excluded from logical comparison.
OPERATIONAL_KINDS = frozenset(
    {
        "retry",
        "quarantine",
        "pool_rebuild",
        "shard_start",
        "shard_done",
        "shard_commit",
        "lease_claim",
        "lease_renew",
        "lease_expire",
        "lease_steal",
        "job_start",
        "job_progress",
        "job_paused",
        "job_resumed",
        "job_done",
        "timing",
        "note",
    }
)

#: All record kinds a version-1 trace may contain.
KNOWN_KINDS = OPERATIONAL_KINDS | frozenset(
    {
        "header",
        "run_start",
        "phase_start",
        "fault",
        "epoch_switch",
        "resync",
        "snapshot",
        "restore",
        "phase_end",
        "run_end",
    }
)

#: Wall-clock-ish fields stripped before logical comparison (defensive:
#: logical emitters never set them, operational ones may).
VOLATILE_FIELDS = ("wall_s", "t", "attempts_wall_s")

#: Per-kind required fields (beyond ``kind``) for schema validation.
_REQUIRED: Dict[str, Sequence[str]] = {
    "header": ("version", "source"),
    "run_start": ("run", "scenario", "protocol", "num_agents"),
    "phase_start": ("run", "phase", "phase_kind", "label"),
    "fault": ("run", "phase", "label", "num_agents"),
    "epoch_switch": ("run", "epoch"),
    "phase_end": (
        "run", "phase", "phase_kind", "label", "num_agents",
        "interactions", "events", "silent", "stop_reason", "scheduler",
    ),
    "run_end": ("run", "recovered_all", "total_events"),
    "retry": ("job", "attempt", "failure"),
    "quarantine": ("job", "failure"),
    "pool_rebuild": ("rebuilds",),
    "shard_start": ("shard", "start", "stop"),
    "shard_done": ("shard", "start", "stop"),
    "shard_commit": ("shard", "sha256"),
    "lease_claim": ("shard", "owner", "token"),
    "lease_renew": ("shard", "owner", "token"),
    "lease_expire": ("shard", "owner", "token"),
    "lease_steal": ("shard", "owner", "token", "previous_owner"),
    "job_start": ("digest",),
    "job_progress": ("events", "interactions"),
    "job_paused": ("digest",),
    "job_resumed": ("digest",),
    "job_done": ("digest", "status"),
}


def merge_trace_events(per_run_events: Sequence[Sequence[Dict]]) -> List[Dict]:
    """Merge per-run event lists into one logical history.

    Entry ``i`` of ``per_run_events`` is run ``i``'s event list (as
    collected by ``run_scenario(..., collect_trace=True)``); the merge
    annotates each record with its run index and concatenates in run
    order — which is what makes the result independent of how many
    workers produced the runs.
    """
    merged: List[Dict] = []
    for run_index, events in enumerate(per_run_events):
        for record in events:
            annotated = {"kind": record["kind"], "run": run_index}
            annotated.update(
                (k, v) for k, v in record.items() if k != "kind"
            )
            merged.append(annotated)
    return merged


class TraceWriter:
    """Accumulates records and writes the whole file atomically.

    ``write()`` may be called repeatedly (e.g. once per finished shard
    for a live trace); each call atomically replaces the file with the
    full record list, so readers only ever see complete traces.
    """

    def __init__(self, path: str, source: str, **meta) -> None:
        self.path = path
        header: Dict = {
            "kind": "header", "version": TRACE_VERSION, "source": source,
        }
        header.update(meta)
        self._records: List[Dict] = [header]

    def emit(self, kind: str, **fields) -> None:
        record: Dict = {"kind": kind}
        record.update(fields)
        self._records.append(record)

    def extend(self, records: Iterable[Dict]) -> None:
        """Append already-formed records (each must carry ``kind``)."""
        for record in records:
            if "kind" not in record:
                raise ExperimentError(
                    f"trace record without a kind: {record!r}"
                )
            self._records.append(dict(record))

    @property
    def records(self) -> List[Dict]:
        return list(self._records)

    def write(self) -> str:
        """Atomically persist the trace; returns the path."""
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self._records
        )
        atomic_write_text(self.path, text, suffix=".jsonl")
        return self.path


class TraceReader:
    """Parses one trace file; validates the header on construction."""

    def __init__(self, path: str) -> None:
        if not os.path.exists(path):
            raise ExperimentError(f"no trace file at {path}")
        self.path = path
        self.records: List[Dict] = []
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ExperimentError(
                        f"{path}:{number} is not valid JSON: {exc}"
                    ) from exc
                if not isinstance(record, dict):
                    raise ExperimentError(
                        f"{path}:{number} is not a JSON object"
                    )
                self.records.append(record)
        if not self.records or self.records[0].get("kind") != "header":
            raise ExperimentError(
                f"{path} does not start with a trace header record"
            )
        version = self.records[0].get("version")
        if version != TRACE_VERSION:
            raise ExperimentError(
                f"{path} has trace version {version!r}, "
                f"expected {TRACE_VERSION}"
            )

    @property
    def header(self) -> Dict:
        return self.records[0]

    def logical(self) -> List[Dict]:
        """Deterministic history: header and operational records out,
        volatile fields stripped."""
        out: List[Dict] = []
        for record in self.records[1:]:
            if record.get("kind") in OPERATIONAL_KINDS:
                continue
            out.append(
                {
                    k: v
                    for k, v in record.items()
                    if k not in VOLATILE_FIELDS
                }
            )
        return out

    def operational(self) -> List[Dict]:
        return [
            r for r in self.records[1:] if r.get("kind") in OPERATIONAL_KINDS
        ]


def validate_trace(records: Sequence[Dict]) -> None:
    """Structural schema check; raises ``ExperimentError`` on violation.

    Pass ``TraceReader(path).records`` (header included).  Checks: the
    header leads with the supported version, every record's kind is
    known, and each kind carries its required fields.
    """
    if not records:
        raise ExperimentError("trace is empty (no header record)")
    if records[0].get("kind") != "header":
        raise ExperimentError("trace does not start with a header record")
    if records[0].get("version") != TRACE_VERSION:
        raise ExperimentError(
            f"unsupported trace version {records[0].get('version')!r}"
        )
    for position, record in enumerate(records):
        kind = record.get("kind")
        if not isinstance(kind, str):
            raise ExperimentError(
                f"trace record {position} has no string kind: {record!r}"
            )
        if kind not in KNOWN_KINDS:
            raise ExperimentError(
                f"trace record {position} has unknown kind {kind!r}"
            )
        if position > 0 and kind == "header":
            raise ExperimentError(
                f"trace record {position} is a second header"
            )
        missing = [
            field
            for field in _REQUIRED.get(kind, ())
            if field not in record
        ]
        if missing:
            raise ExperimentError(
                f"trace record {position} ({kind}) is missing "
                f"fields: {missing}"
            )


def diff_traces(
    a: Sequence[Dict], b: Sequence[Dict], limit: int = 10
) -> List[str]:
    """Compare two *logical* histories; returns difference lines.

    Empty result means the histories are identical.  Pass the output of
    :meth:`TraceReader.logical` for both sides.
    """
    lines: List[str] = []
    if len(a) != len(b):
        lines.append(f"record counts differ: {len(a)} vs {len(b)}")
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            lines.append(
                f"record {index} differs:\n"
                f"  a: {json.dumps(left, sort_keys=True)}\n"
                f"  b: {json.dumps(right, sort_keys=True)}"
            )
            if len(lines) >= limit:
                lines.append("... (further differences suppressed)")
                break
    return lines


def _phase_logs_from_records(records: Sequence[Dict]):
    """Rebuild ``PhaseLog`` objects from one run's phase_end records."""
    from ..scenarios.engine import PhaseLog

    logs = []
    for record in sorted(
        (r for r in records if r.get("kind") == "phase_end"),
        key=lambda r: r["phase"],
    ):
        logs.append(
            PhaseLog(
                index=record["phase"],
                kind=record["phase_kind"],
                label=record["label"],
                num_agents=record["num_agents"],
                interactions=record["interactions"],
                events=record["events"],
                silent=record["silent"],
                stop_reason=record["stop_reason"],
                distance=record.get("distance"),
                wall_time_s=0.0,
                scheduler=record.get("scheduler", "uniform"),
            )
        )
    return logs


def summarize_trace(records: Sequence[Dict]) -> str:
    """Rebuild the campaign tables from a trace's logical history.

    Groups logical records by run, reconstructs each run's phase logs,
    and renders the same per-fault recovery and per-phase tables
    ``repro scenario run`` prints — so a trace file alone reproduces
    the campaign's analysis.
    """
    from ..analysis.recovery import phase_table, recovery_table
    from ..scenarios.engine import ScenarioResult

    validate_trace(records)
    logical = [
        r for r in records[1:] if r.get("kind") not in OPERATIONAL_KINDS
    ]
    by_run: Dict[int, List[Dict]] = {}
    for record in logical:
        run = record.get("run")
        if run is None:
            continue
        by_run.setdefault(int(run), []).append(record)
    if not by_run:
        return "trace has no run records"

    scenario_name = "?"
    protocol_name = "?"
    results = []
    for run in sorted(by_run):
        run_records = by_run[run]
        start = next(
            (r for r in run_records if r["kind"] == "run_start"), None
        )
        if start is not None:
            scenario_name = start.get("scenario", scenario_name)
            protocol_name = start.get("protocol", protocol_name)
        results.append(
            ScenarioResult(
                scenario_name=scenario_name,
                protocol_name=protocol_name,
                seed=None,
                phase_logs=_phase_logs_from_records(run_records),
            )
        )

    # Duck-typed stand-in for a CampaignResult: the table builders only
    # touch .scenario.name, .repetitions, and .results.
    campaign = SimpleNamespace(
        scenario=SimpleNamespace(name=scenario_name),
        repetitions=len(results),
        results=results,
    )
    epoch_switches = sum(
        1 for r in logical if r["kind"] == "epoch_switch"
    )
    faults = sum(1 for r in logical if r["kind"] == "fault")
    header = [
        f"trace        : {len(records) - 1} records, "
        f"{len(results)} runs, {faults} faults, "
        f"{epoch_switches} epoch switches",
        f"scenario     : {scenario_name}",
        f"protocol     : {protocol_name}",
        "",
    ]
    tables = [recovery_table(campaign), phase_table(campaign)]
    return "\n".join(header) + "\n\n".join(
        table.render() for table in tables
    )
