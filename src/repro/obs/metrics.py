"""Metrics registry: counters, gauges, histograms, and export sinks.

One :class:`MetricsRegistry` aggregates telemetry across any number of
runs — including runs executed in worker pools, whose contributions
arrive as plain counter dicts (picklable) and are folded in by the
coordinating process.  Histograms reuse the ensemble's streaming
reducers (:class:`~repro.ensemble.reducers.Welford` plus P² quantile
markers), so aggregation is O(1) memory regardless of run count.

Export sinks: :meth:`MetricsRegistry.to_dict` (JSON-ready) and
:meth:`MetricsRegistry.to_prometheus` (the Prometheus text exposition
format, histograms as summaries with quantile labels).
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from ..ensemble.reducers import P2Quantile, Welford

__all__ = ["MetricsRegistry", "ensemble_event_counter"]

_QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """Sanitise a metric name for the Prometheus exposition format."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


class _Histogram:
    """Welford + P² quantile battery over one observed statistic."""

    def __init__(self) -> None:
        self.welford = Welford()
        self.quantiles = [P2Quantile(p) for p in _QUANTILES]

    def observe(self, value: float) -> None:
        self.welford.update(value)
        for quantile in self.quantiles:
            quantile.update(value)

    def to_dict(self) -> Dict:
        data = self.welford.to_dict()
        for quantile in self.quantiles:
            data[f"p{int(quantile.p * 100)}"] = quantile.value
        return data


class MetricsRegistry:
    """Named counters / gauges / histograms with JSON + Prometheus sinks.

    A ``namespace`` (default ``repro``) prefixes every exported
    Prometheus metric name.  All mutators are cheap enough for
    per-record use; the hot simulation loops never touch a registry
    directly — they flush :class:`~repro.obs.Instrumentation` counter
    bags, which callers fold in via :meth:`merge_counters`.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, _Histogram] = {}

    # -- mutators ------------------------------------------------------
    def counter_add(self, name: str, value: int = 1) -> None:
        if value:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = _Histogram()
        histogram.observe(float(value))

    def merge_counters(
        self, counters: Dict[str, int], prefix: str = ""
    ) -> None:
        """Fold a worker's counter dict (e.g. ``Instrumentation.counters``)."""
        for name, value in counters.items():
            self.counter_add(prefix + name, value)

    # -- sinks ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "namespace": self.namespace,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of the whole registry.

        Histograms export as summaries: one sample per quantile plus
        ``_sum``-less ``_count`` and ``_mean`` (the reducers keep no
        exact sum; mean times count recovers it for dashboards).
        """
        lines = []
        prefix = _prom_name(self.namespace)
        for name, value in sorted(self.counters.items()):
            metric = f"{prefix}_{_prom_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in sorted(self.gauges.items()):
            metric = f"{prefix}_{_prom_name(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        for name, histogram in sorted(self.histograms.items()):
            metric = f"{prefix}_{_prom_name(name)}"
            lines.append(f"# TYPE {metric} summary")
            for quantile in histogram.quantiles:
                estimate = quantile.value
                if estimate is None:
                    continue
                lines.append(
                    f'{metric}{{quantile="{quantile.p}"}} '
                    f"{_format_value(estimate)}"
                )
            lines.append(f"{metric}_count {histogram.welford.count}")
            lines.append(
                f"{metric}_mean {_format_value(histogram.welford.mean)}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "NaN"
    formatted = repr(float(value))
    return formatted


def ensemble_event_counter(registry: MetricsRegistry, prefix: str = "ensemble_"):
    """An ensemble/lease observer that counts events into ``registry``.

    Returns an ``observer(kind, fields)`` callable for the runner's and
    lease manager's observer seams: every operational event increments
    the counter ``<prefix><kind>`` (``ensemble_shard_commit``,
    ``ensemble_lease_claim``, ``ensemble_lease_steal``,
    ``ensemble_retry``, …), so a metrics export answers "how contended
    was this cooperative run" without parsing the trace.  Observers can
    be chained by hand: counting here never consumes the event.
    """

    def observer(kind: str, fields: Dict) -> None:
        registry.counter_add(prefix + kind)

    return observer
