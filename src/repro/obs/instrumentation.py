"""Opt-in engine counters with per-chunk accounting.

:class:`Instrumentation` is a plain counter bag handed to
``build_engine``/``run_protocol`` (or any engine constructor).  The
engines treat it as *chunk-level* telemetry: fast loops keep their
counts in locals or derive them from batch-consumption arithmetic
(``batches * BATCH - unconsumed - discarded``) and flush once per chunk
or at loop exit, never per event.  When no instrumentation is attached
the only residue on the hot path is a single ``is not None`` test per
chunk, so throughput is unchanged — the committed bench floors gate
that.

Counters never consume randomness, so a run with instrumentation
attached is bit-identical to the same seed without it (the
trajectory-equality property test asserts exactly that).

Counter vocabulary (engines only touch the ones their loop has):

``events``, ``interactions``
    Productive events and scheduler steps covered by the run.
``skip_draws``, ``raw_draws``
    Uniforms consumed for geometric skips and 64-bit raws consumed for
    routing/rejection, from batch arithmetic.
``pool_draws``, ``sprint_events``, ``proposal_draws``
    Events served by the proposal pool, the subset taken on the sprint
    shortcut (no routing draw), and agent proposals consumed including
    rejected ones — ``proposal_draws / pool_draws`` is the ROADMAP's
    "proposals per draw" residual-cost number.
``fenwick_finds``, ``composite_finds``
    Routed target draws resolved by a Fenwick walk vs the composite
    linear scan.
``proposal_mode_events``, ``fenwick_mode_events``, ``mode_switches``
    The same-state dual sampler's adaptive split.
``accept_tests``, ``accept_rejects``
    Rejection/thinning acceptance loop activity (scheduled engines).
``weighted_events``, ``thinned_events``, ``slow_events``
    Weighted-engine segment routing.
``pair_draws``
    Ordered agent pairs drawn by the sequential reference engine (from
    batch arithmetic, rejected thinning draws included).
``batch_refreshes``, ``batch_refills``, ``batch_candidates``,
``batch_confirm_rejects``, ``batch_k2_events``, ``uniform_draws``
    The numpy batch kernel's epoch machinery: frozen-stratum refreshes,
    vectorised proposal refills (each one Python-level touch of numpy),
    proposal candidates consumed / rejected by the modified-agent
    confirm, events resolved through the closed-form K2 strata, and
    uniforms consumed for geometric-skip batches —
    ``events / batch_refills`` is the "events per Python touch"
    amortisation number.
``reclassifications``, ``resyncs``, ``epoch_switches``
``snapshots``, ``restores``
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Instrumentation", "check_instrumentation_off_overhead"]


class Instrumentation:
    """Counter bag plus an optional structured mark log.

    ``marks`` records rare structural events (epoch switches, resyncs,
    snapshot/restore) as plain dicts when ``trace=True`` — the scenario
    tracer folds them into the run trace.  Counters are plain ints in a
    dict; everything is picklable so instrumentation survives worker
    round-trips.
    """

    __slots__ = ("counters", "marks", "trace")

    def __init__(self, trace: bool = False) -> None:
        self.counters: Dict[str, int] = {}
        self.marks: List[Dict] = []
        self.trace = trace

    def add(self, name: str, value: int = 1) -> None:
        """Bump one counter (chunk-level call sites only)."""
        if value:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_counters(self, **deltas: int) -> None:
        """Flush a fast loop's local tallies in one call."""
        counters = self.counters
        for name, value in deltas.items():
            if value:
                counters[name] = counters.get(name, 0) + int(value)

    def mark(self, kind: str, **fields) -> None:
        """Record one structural event (no-op unless tracing)."""
        if self.trace:
            record = {"kind": kind}
            record.update(fields)
            self.marks.append(record)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def merge(self, other: "Instrumentation") -> None:
        """Fold another bag's counters (and marks) into this one."""
        self.add_counters(**other.counters)
        if self.trace:
            self.marks.extend(other.marks)

    def merge_counts(self, counters: Dict[str, int]) -> None:
        """Fold a plain counter dict (e.g. from a worker record)."""
        self.add_counters(**counters)

    def derived(self) -> Dict[str, float]:
        """Ratios answering the residual-cost questions.

        Only ratios whose denominators are non-zero appear, so the dict
        reflects which loops actually ran.
        """
        c = self.counters.get
        out: Dict[str, float] = {}
        events = c("events", 0)
        pool = c("pool_draws", 0)
        finds = c("fenwick_finds", 0) + c("composite_finds", 0)
        if pool:
            out["proposals_per_pool_draw"] = c("proposal_draws", 0) / pool
            out["sprint_share"] = c("sprint_events", 0) / pool
        if events:
            out["skip_draws_per_event"] = c("skip_draws", 0) / events
            out["raw_draws_per_event"] = c("raw_draws", 0) / events
        if pool or finds:
            out["fenwick_share"] = finds / (pool + finds)
        tests = c("accept_tests", 0)
        if tests:
            out["acceptance"] = 1.0 - c("accept_rejects", 0) / tests
        refills = c("batch_refills", 0)
        if refills and events:
            # Events amortised per Python-level numpy touch.
            out["events_per_batch_refill"] = events / refills
        refreshes = c("batch_refreshes", 0)
        if refreshes and events:
            out["batch_refresh_rate"] = refreshes / events
        candidates = c("batch_candidates", 0)
        if candidates:
            out["batch_confirm_acceptance"] = (
                1.0 - c("batch_confirm_rejects", 0) / candidates
            )
        if events:
            k2 = c("batch_k2_events", 0)
            if k2 or refills:
                out["batch_k2_share"] = k2 / events
        return out

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-data view (sorted counters + derived ratios)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "derived": dict(sorted(self.derived().items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{k}={v}" for k, v in sorted(self.counters.items())
        )
        return f"Instrumentation({inner})"


def check_instrumentation_off_overhead(
    case_id: str = "line-m4",
    tolerance: float = 0.02,
    repeats: int = 5,
    seed: int = 7,
    attempts: int = 3,
) -> Dict[str, object]:
    """Assert the instrumentation-off path costs ≤ ``tolerance``.

    Interleaves best-of-``repeats`` timings of one quick bench case run
    two ways with the same seed: directly constructed ``JumpEngine``
    (the uninstrumented baseline) and through ``build_engine`` with
    ``instrumentation=None`` (the off path every caller gets).  Both
    execute the identical fast loop, so the ratio sits at ~1.0 unless
    the off path grows per-event work — which is exactly the regression
    this guards (the committed speedup floors gate the absolute
    throughput separately).  The overhead guarded against is structural
    (per-event branches), so one clean measurement suffices: a failing
    measurement is re-taken up to ``attempts`` times before it counts —
    scheduler noise trips a single best-of-N comparison a few percent
    either way, and only a real regression fails every attempt.  Raises
    :class:`~repro.exceptions.SimulationError` if the off path stays
    more than ``tolerance`` slower; returns the measurement dict.
    """
    import time

    import numpy as np

    from ..analysis.bench import bench_suite
    from ..core.engine import build_engine
    from ..core.jump import JumpEngine
    from ..exceptions import SimulationError

    case = next(
        (c for c in bench_suite(quick=True) if c.case_id == case_id), None
    )
    if case is None:
        raise SimulationError(
            f"unknown quick bench case {case_id!r} for the overhead check"
        )

    def run_baseline() -> float:
        protocol, start = case.build()
        engine = JumpEngine(protocol, start, np.random.default_rng(seed))
        begin = time.perf_counter()
        engine.run(max_events=case.max_events)
        wall = time.perf_counter() - begin
        return engine.events / wall if wall > 0 else float("inf")

    def run_off() -> float:
        protocol, start = case.build()
        driver, _ = build_engine(
            protocol, start, seed=seed, engine="jump", instrumentation=None
        )
        begin = time.perf_counter()
        driver.run(max_events=case.max_events)
        wall = time.perf_counter() - begin
        return driver.events / wall if wall > 0 else float("inf")

    result: Dict[str, object] = {}
    for attempt in range(max(1, attempts)):
        baseline = 0.0
        off = 0.0
        # Interleaved so slow-start noise (page cache, turbo) hits both
        # arms.
        for _ in range(max(1, repeats)):
            baseline = max(baseline, run_baseline())
            off = max(off, run_off())
        ratio = off / baseline if baseline > 0 else 1.0
        result = {
            "case": case_id,
            "baseline_events_per_sec": baseline,
            "off_events_per_sec": off,
            "ratio": ratio,
            "tolerance": tolerance,
            "attempt": attempt + 1,
        }
        if ratio >= 1.0 - tolerance:
            return result
    raise SimulationError(
        f"instrumentation-off overhead on {case_id}: "
        f"{result['off_events_per_sec']:,.0f} ev/s vs baseline "
        f"{result['baseline_events_per_sec']:,.0f} ev/s "
        f"(ratio {result['ratio']:.3f} < {1.0 - tolerance:.3f} "
        f"on every one of {max(1, attempts)} attempts)"
    )
