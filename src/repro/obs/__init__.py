"""Observability: engine counters, structured traces, metrics sinks.

Zero-cost-when-off instrumentation for the simulation stack:

* :class:`~repro.obs.instrumentation.Instrumentation` — an opt-in
  counter bag passed to ``build_engine``/``run_protocol``; the fast
  loops account for it per chunk (batch consumption arithmetic at loop
  exits), never per event, so the bench floors stay green when it is
  off.
* :mod:`repro.obs.trace` — versioned JSONL run traces with
  deterministic logical content (no wall-clock in compared fields), so
  traces taken at any worker count merge to identical histories.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry on
  the ensemble reducers, exported as JSON or Prometheus text.
"""

from .instrumentation import Instrumentation, check_instrumentation_off_overhead
from .metrics import MetricsRegistry, ensemble_event_counter
from .trace import (
    TRACE_VERSION,
    TraceReader,
    TraceWriter,
    diff_traces,
    merge_trace_events,
    summarize_trace,
    validate_trace,
)

__all__ = [
    "Instrumentation",
    "MetricsRegistry",
    "TRACE_VERSION",
    "TraceReader",
    "TraceWriter",
    "check_instrumentation_off_overhead",
    "diff_traces",
    "ensemble_event_counter",
    "merge_trace_events",
    "summarize_trace",
    "validate_trace",
]
