"""Initial-configuration generators (k-distant, random, adversarial)."""

from .generators import (
    all_in_extras_configuration,
    all_in_state_configuration,
    distance_from_solved,
    doubled_prefix_configuration,
    k_distant_configuration,
    random_configuration,
    solved_configuration,
)

__all__ = [
    "all_in_extras_configuration",
    "all_in_state_configuration",
    "distance_from_solved",
    "doubled_prefix_configuration",
    "k_distant_configuration",
    "random_configuration",
    "solved_configuration",
]
