"""Initial-configuration generators for self-stabilisation experiments.

Self-stabilising protocols must recover from *arbitrary* configurations;
the generators here produce the families the paper reasons about:

* ``k``-distant configurations — exactly ``k`` rank states unoccupied
  (the §3 parameterisation);
* uniformly random configurations (the generic adversary);
* named adversarial extremes (everyone piled in one state, everyone in
  the extra states, ...), used for worst-case measurements.

All generators are pure: they return fresh
:class:`~repro.core.configuration.Configuration` objects and draw
randomness only from the seed/generator argument.
"""

from __future__ import annotations

from typing import Union

from repro._deps import np

from ..exceptions import ConfigurationError
from ..core.configuration import Configuration
from ..core.engine import make_rng
from ..core.protocol import RankingProtocol

__all__ = [
    "solved_configuration",
    "k_distant_configuration",
    "random_configuration",
    "all_in_state_configuration",
    "all_in_extras_configuration",
    "doubled_prefix_configuration",
    "distance_from_solved",
]

Seed = Union[int, "np.random.Generator", None]


def solved_configuration(protocol: RankingProtocol) -> Configuration:
    """The final silent configuration: one agent per rank, extras empty."""
    return protocol.solved_configuration()


def k_distant_configuration(
    protocol: RankingProtocol, k: int, seed: Seed = None
) -> Configuration:
    """A uniformly random ``k``-distant configuration over rank states.

    Exactly ``k`` rank states are unoccupied; the ``k`` displaced agents
    are spread uniformly over the occupied ranks (so some ranks hold
    duplicates).  Extra states are left empty — this matches §3, where
    the protocol is state-optimal.
    """
    n = protocol.num_ranks
    if not 0 <= k <= n - 1:
        raise ConfigurationError(
            f"k-distant configurations need 0 <= k <= n-1, got k={k}, n={n}"
        )
    rng = make_rng(seed)
    counts = [0] * protocol.num_states
    missing = set(rng.choice(n, size=k, replace=False).tolist()) if k else set()
    occupied = [r for r in range(n) if r not in missing]
    for rank in occupied:
        counts[rank] = 1
    # The k displaced agents land uniformly on occupied ranks.
    for rank in rng.choice(occupied, size=k, replace=True):
        counts[int(rank)] += 1
    return Configuration(counts)


def random_configuration(
    protocol: RankingProtocol,
    seed: Seed = None,
    include_extras: bool = True,
) -> Configuration:
    """Every agent drawn uniformly from the (full or rank-only) state space."""
    rng = make_rng(seed)
    limit = protocol.num_states if include_extras else protocol.num_ranks
    states = rng.integers(0, limit, size=protocol.num_agents)
    return Configuration.from_agents(
        (int(s) for s in states), protocol.num_states
    )


def all_in_state_configuration(
    protocol: RankingProtocol, state: int
) -> Configuration:
    """Every agent in one state — the classic adversarial pile-up."""
    return Configuration.all_in_state(
        state, protocol.num_agents, protocol.num_states
    )


def all_in_extras_configuration(
    protocol: RankingProtocol, seed: Seed = None
) -> Configuration:
    """Every agent uniformly random within the extra states.

    Only meaningful for near-state-optimal protocols (``x >= 1``); it is
    the maximally rank-distant start (every rank unoccupied).
    """
    if protocol.num_extra_states == 0:
        raise ConfigurationError(
            f"{protocol.name} has no extra states to occupy"
        )
    rng = make_rng(seed)
    counts = [0] * protocol.num_states
    extras = list(protocol.extra_states)
    for state in rng.choice(extras, size=protocol.num_agents, replace=True):
        counts[int(state)] += 1
    return Configuration(counts)


def doubled_prefix_configuration(protocol: RankingProtocol) -> Configuration:
    """Two agents in each of the first ``⌊n/2⌋`` ranks (deterministic).

    A maximally-distant configuration with ``k = ⌈n/2⌉`` missing ranks;
    used as a deterministic worst case in tests and benchmarks.
    """
    n = protocol.num_ranks
    counts = [0] * protocol.num_states
    for rank in range(n // 2):
        counts[rank] = 2
    if n % 2 == 1:
        counts[n // 2] = 1
    return Configuration(counts)


def distance_from_solved(
    protocol: RankingProtocol, configuration: Configuration
) -> int:
    """Number of unoccupied rank states (the ``k`` of ``k``-distant)."""
    return sum(
        1 for rank in protocol.rank_states if configuration.count(rank) == 0
    )
