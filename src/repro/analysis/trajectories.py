"""Trajectory instrumentation: sampled metrics, phase censuses, counters.

:class:`~repro.core.engine.MetricRecorder` evaluates a metric after
*every* productive event, which is too expensive for large runs.  The
recorders here sample sparsely, classify the §5 protocol's phases
(tree / red / green populations), and count structural events such as
R2 reset firings — the quantities the richer experiments and examples
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..core.engine import Event, Recorder
from ..protocols.tree_protocol import TreeRankingProtocol

__all__ = [
    "SampledMetricRecorder",
    "PhaseCensus",
    "TreePhaseRecorder",
    "ResetCounter",
]


class SampledMetricRecorder(Recorder):
    """Evaluate ``metric(counts)`` once every ``sample_every`` events.

    The final state is always sampled (on ``on_finish``), so the last
    recorded value reflects the end of the run.
    """

    def __init__(
        self,
        metric: Callable[[Sequence[int]], object],
        sample_every: int = 100,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._metric = metric
        self._sample_every = sample_every
        self._event_count = 0
        self.values: List[object] = []
        self.interactions: List[int] = []

    def on_start(self, counts: Sequence[int]) -> None:
        self.values.append(self._metric(counts))
        self.interactions.append(0)

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        self._event_count += 1
        if self._event_count % self._sample_every == 0:
            self.values.append(self._metric(counts))
            self.interactions.append(event.interactions)

    def on_finish(
        self, silent: bool, interactions: int, counts: Sequence[int]
    ) -> None:
        if not self.interactions or self.interactions[-1] != interactions:
            self.values.append(self._metric(counts))
            self.interactions.append(interactions)


@dataclass(frozen=True)
class PhaseCensus:
    """Population split of the §5 protocol at one instant."""

    interactions: int
    tree: int
    red: int
    green: int

    @property
    def phase(self) -> str:
        """Coarse phase label used in timelines."""
        if self.red + self.green == 0:
            return "tree"
        if self.red >= self.green:
            return "red"
        return "green"


class TreePhaseRecorder(Recorder):
    """Sampled tree/red/green censuses for a tree-protocol run."""

    def __init__(
        self, protocol: TreeRankingProtocol, sample_every: int = 50
    ) -> None:
        self._protocol = protocol
        self._sample_every = max(1, sample_every)
        self._event_count = 0
        self.censuses: List[PhaseCensus] = []

    def _census(self, interactions: int, counts: Sequence[int]) -> PhaseCensus:
        protocol = self._protocol
        n = protocol.num_ranks
        tree = sum(counts[:n])
        red = sum(counts[s] for s in protocol.line_states
                  if protocol.is_red(s))
        green = sum(counts[s] for s in protocol.line_states
                    if protocol.is_green(s))
        return PhaseCensus(
            interactions=interactions, tree=tree, red=red, green=green
        )

    def on_start(self, counts: Sequence[int]) -> None:
        self.censuses.append(self._census(0, counts))

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        self._event_count += 1
        if self._event_count % self._sample_every == 0:
            self.censuses.append(self._census(event.interactions, counts))

    def on_finish(
        self, silent: bool, interactions: int, counts: Sequence[int]
    ) -> None:
        self.censuses.append(self._census(interactions, counts))

    def phases_seen(self) -> List[str]:
        """Distinct phase labels in order of first appearance."""
        seen: List[str] = []
        for census in self.censuses:
            if census.phase not in seen:
                seen.append(census.phase)
        return seen


class ResetCounter(Recorder):
    """Count R2 firings (a rank pair jumping to ``X_1``) in a tree run.

    Each firing is one detected overload — the number of times the
    population decided its current ranking attempt was unbalanced.
    """

    def __init__(self, protocol: TreeRankingProtocol) -> None:
        self._num_ranks = protocol.num_ranks
        self._x1 = protocol.line_state(1)
        self.resets = 0
        self.reset_interactions: List[int] = []

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        """Detect and record an R2 firing."""
        fired = (
            event.initiator_before < self._num_ranks
            and event.responder_before < self._num_ranks
            and event.initiator_after == self._x1
            and event.responder_after == self._x1
        )
        if fired:
            self.resets += 1
            self.reset_interactions.append(event.interactions)
