"""Measurement toolkit: potentials, fits, statistics, sweeps, tables."""

from .bench import BenchCase, LegacyJumpEngine, bench_suite, run_bench
from .fitting import PowerLawFit, bootstrap_exponent_interval, fit_power_law
from .potentials import (
    LineVectors,
    all_traps_tidy,
    global_deficit,
    global_excess,
    global_surplus,
    indicated_lines,
    line_deficit,
    line_excess_tokens,
    line_surplus,
    line_vectors,
    max_tree_path_potential,
    ring_weight,
    ring_weight_components,
    stabilise_line,
    tree_path_potential,
)
from .recovery import (
    RecoveryRecord,
    phase_table,
    recovery_records,
    recovery_table,
    survival_curve,
    survival_table,
)
from .stats import Summary, geometric_mean, summarise, wilson_interval
from .supervision import (
    JobFailure,
    SupervisionPolicy,
    check_picklable,
    supervised_map,
)
from .sweep import SweepPoint, fan_out, measure_stabilisation, run_sweep
from .tables import Table, format_value
from .trajectories import (
    PhaseCensus,
    ResetCounter,
    SampledMetricRecorder,
    TreePhaseRecorder,
)

__all__ = [
    "BenchCase",
    "LegacyJumpEngine",
    "JobFailure",
    "LineVectors",
    "PhaseCensus",
    "PowerLawFit",
    "RecoveryRecord",
    "ResetCounter",
    "SampledMetricRecorder",
    "Summary",
    "SupervisionPolicy",
    "SweepPoint",
    "Table",
    "TreePhaseRecorder",
    "all_traps_tidy",
    "bench_suite",
    "bootstrap_exponent_interval",
    "check_picklable",
    "fan_out",
    "fit_power_law",
    "format_value",
    "geometric_mean",
    "phase_table",
    "global_deficit",
    "global_excess",
    "global_surplus",
    "indicated_lines",
    "line_deficit",
    "line_excess_tokens",
    "line_surplus",
    "line_vectors",
    "max_tree_path_potential",
    "measure_stabilisation",
    "recovery_records",
    "recovery_table",
    "ring_weight",
    "ring_weight_components",
    "run_bench",
    "run_sweep",
    "stabilise_line",
    "summarise",
    "supervised_map",
    "survival_curve",
    "survival_table",
    "tree_path_potential",
    "wilson_interval",
]
