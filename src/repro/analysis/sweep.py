"""Seeded parameter sweeps over (protocol, initial configuration) pairs.

Every experiment in this reproduction is a sweep: for each parameter
point (a population size, a distance ``k``, ...) build a fresh protocol
and starting configuration, run to silence, repeat with independent
seeds, and summarise.  This module owns the seed bookkeeping
(``numpy.random.SeedSequence.spawn`` so repetitions are independent yet
the whole sweep is reproducible from one root seed), the aggregation,
and the optional process-pool fan-out (``workers=N``), which preserves
the one-root-seed reproducibility guarantee bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._deps import np

from ..core.configuration import Configuration
from ..core.engine import RunResult, run_protocol
from ..core.protocol import PopulationProtocol
from ..exceptions import ExperimentError
from .stats import Summary, summarise
from .supervision import JobFailure, SupervisionPolicy, supervised_map

__all__ = [
    "SweepPoint",
    "fan_out",
    "run_sweep",
    "measure_stabilisation",
    "JobFailure",
    "SupervisionPolicy",
]

# A builder maps (params, rng) to a ready-to-run (protocol, configuration).
Builder = Callable[
    [Dict[str, object], "np.random.Generator"],
    Tuple[PopulationProtocol, Configuration],
]


@dataclass
class SweepPoint:
    """All repetitions of one parameter point, with summaries.

    ``failures`` lists repetitions quarantined by the supervised
    executor (crashed/hung/erroring jobs under a non-fail-fast
    :class:`~repro.analysis.supervision.SupervisionPolicy`); the
    summaries below cover the surviving ``runs`` only.
    """

    params: Dict[str, object]
    runs: List[RunResult] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def parallel_times(self) -> List[float]:
        """Parallel time of every repetition."""
        return [run.parallel_time for run in self.runs]

    @property
    def interaction_counts(self) -> List[int]:
        """Total interaction count of every repetition."""
        return [run.interactions for run in self.runs]

    @property
    def all_silent(self) -> bool:
        """True iff every repetition reached silence within budget."""
        return all(run.silent for run in self.runs)

    def time_summary(self) -> Summary:
        """Summary of parallel stabilisation times."""
        return summarise(self.parallel_times)

    def median_parallel_time(self) -> float:
        """Median parallel stabilisation time across repetitions."""
        return self.time_summary().median

    def max_parallel_time(self) -> float:
        """Worst repetition — the relevant statistic for whp claims."""
        return self.time_summary().maximum


def fan_out(
    worker,
    jobs: Sequence,
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    observer: Optional[Callable[[str, Dict], None]] = None,
) -> List:
    """Map ``worker`` over ``jobs``, optionally via a process pool.

    The shared executor seam for every campaign/sweep in the repo:
    ``workers`` of ``None`` or 1 runs serially in-process; more fans the
    jobs out under :func:`~repro.analysis.supervision.supervised_map`
    (future-per-job dispatch with deadlines, crash isolation, bounded
    retries, and quarantine — see that module).  Results keep job
    order, so any caller that derives each job's randomness *before*
    dispatch (the ``SeedSequence.spawn`` pattern) is bit-identical at
    every worker count.  ``worker`` and the jobs must then be
    picklable — checked up front, with the offending object named —
    i.e. module-level callables and plain data.

    ``fan_out`` itself keeps the classic all-or-nothing contract: any
    job quarantined by the supervisor raises :class:`ExperimentError`
    here.  Callers that want quarantined jobs back as data use
    :func:`supervised_map` directly.  ``observer`` forwards the
    supervisor's retry/quarantine/pool-rebuild events (see
    :func:`supervised_map`).
    """
    results, failures = supervised_map(
        worker, jobs, workers=workers, policy=policy, observer=observer
    )
    if failures:
        detail = "; ".join(repr(failure) for failure in failures[:5])
        raise ExperimentError(
            f"{len(failures)} of {len(results)} jobs failed under "
            f"supervision: {detail}"
        )
    return results


def _run_sweep_job(job: tuple) -> RunResult:
    """One repetition, self-contained so worker processes can run it.

    The repetition's generator is derived from its own
    ``SeedSequence`` child, so the result is a pure function of the job
    — bit-identical whether executed inline or in any worker process.
    """
    params, child, build, engine, max_interactions, max_events = job
    rng = np.random.default_rng(child)
    protocol, configuration = build(dict(params), rng)
    return run_protocol(
        protocol,
        configuration,
        seed=rng,
        engine=engine,
        max_interactions=max_interactions,
        max_events=max_events,
    )


def run_sweep(
    points: Sequence[Dict[str, object]],
    build: Builder,
    repetitions: int = 5,
    seed: int = 0,
    engine: str = "jump",
    max_interactions: Optional[int] = None,
    max_events: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[SweepPoint]:
    """Run ``repetitions`` independent runs per parameter point.

    ``build(params, rng)`` must construct both the protocol and its
    starting configuration from the given generator, so the whole sweep
    is a pure function of ``seed``.

    ``workers`` > 1 fans the repetitions out over a supervised process
    pool.  Each repetition's generator is spawned from the root
    ``SeedSequence`` in a fixed order before dispatch, so results are
    bit-identical to a serial sweep with the same ``seed`` regardless
    of the worker count (only ``RunResult.wall_time_s`` varies).
    ``build`` must then be picklable, i.e. a module-level callable.
    The default (``None`` or 1) runs serially in-process.

    ``policy`` tunes supervision (per-job timeouts, retry budgets);
    with ``fail_fast=False`` quarantined repetitions land in
    :attr:`SweepPoint.failures` instead of raising, and that point's
    summaries cover the surviving runs.
    """
    if not points:
        raise ExperimentError(
            "run_sweep needs at least one parameter point; got an "
            "empty points sequence"
        )
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(points) * repetitions)
    jobs = [
        (
            dict(params),
            children[point_index * repetitions + rep],
            build,
            engine,
            max_interactions,
            max_events,
        )
        for point_index, params in enumerate(points)
        for rep in range(repetitions)
    ]
    runs, failures = supervised_map(
        _run_sweep_job, jobs, workers=workers, policy=policy
    )
    if failures and (policy is None or policy.fail_fast):
        detail = "; ".join(repr(failure) for failure in failures[:5])
        raise ExperimentError(
            f"{len(failures)} of {len(jobs)} sweep repetitions failed "
            f"under supervision: {detail}"
        )
    by_index = {failure.index: failure for failure in failures}
    results = []
    for point_index, params in enumerate(points):
        start = point_index * repetitions
        indices = range(start, start + repetitions)
        results.append(
            SweepPoint(
                params=dict(params),
                runs=[runs[i] for i in indices if runs[i] is not None],
                failures=[by_index[i] for i in indices if i in by_index],
            )
        )
    return results


def measure_stabilisation(
    build: Builder,
    xs: Sequence[int],
    x_name: str = "n",
    repetitions: int = 5,
    seed: int = 0,
    max_interactions: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[SweepPoint]:
    """Convenience sweep over a single integer parameter (usually ``n``)."""
    if not xs:
        raise ExperimentError(
            f"measure_stabilisation needs at least one {x_name} value; "
            "got an empty sequence"
        )
    points = [{x_name: x} for x in xs]
    return run_sweep(
        points,
        build,
        repetitions=repetitions,
        seed=seed,
        max_interactions=max_interactions,
        workers=workers,
        policy=policy,
    )
