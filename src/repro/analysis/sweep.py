"""Seeded parameter sweeps over (protocol, initial configuration) pairs.

Every experiment in this reproduction is a sweep: for each parameter
point (a population size, a distance ``k``, ...) build a fresh protocol
and starting configuration, run to silence, repeat with independent
seeds, and summarise.  This module owns the seed bookkeeping
(``numpy.random.SeedSequence.spawn`` so repetitions are independent yet
the whole sweep is reproducible from one root seed) and the aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.configuration import Configuration
from ..core.engine import RunResult, run_protocol
from ..core.protocol import PopulationProtocol
from ..exceptions import ExperimentError
from .stats import Summary, summarise

__all__ = ["SweepPoint", "run_sweep", "measure_stabilisation"]

# A builder maps (params, rng) to a ready-to-run (protocol, configuration).
Builder = Callable[
    [Dict[str, object], np.random.Generator],
    Tuple[PopulationProtocol, Configuration],
]


@dataclass
class SweepPoint:
    """All repetitions of one parameter point, with summaries."""

    params: Dict[str, object]
    runs: List[RunResult] = field(default_factory=list)

    @property
    def parallel_times(self) -> List[float]:
        """Parallel time of every repetition."""
        return [run.parallel_time for run in self.runs]

    @property
    def interaction_counts(self) -> List[int]:
        """Total interaction count of every repetition."""
        return [run.interactions for run in self.runs]

    @property
    def all_silent(self) -> bool:
        """True iff every repetition reached silence within budget."""
        return all(run.silent for run in self.runs)

    def time_summary(self) -> Summary:
        """Summary of parallel stabilisation times."""
        return summarise(self.parallel_times)

    def median_parallel_time(self) -> float:
        """Median parallel stabilisation time across repetitions."""
        return self.time_summary().median

    def max_parallel_time(self) -> float:
        """Worst repetition — the relevant statistic for whp claims."""
        return self.time_summary().maximum


def run_sweep(
    points: Sequence[Dict[str, object]],
    build: Builder,
    repetitions: int = 5,
    seed: int = 0,
    engine: str = "jump",
    max_interactions: Optional[int] = None,
    max_events: Optional[int] = None,
) -> List[SweepPoint]:
    """Run ``repetitions`` independent runs per parameter point.

    ``build(params, rng)`` must construct both the protocol and its
    starting configuration from the given generator, so the whole sweep
    is a pure function of ``seed``.
    """
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(points) * repetitions)
    results = []
    child_index = 0
    for params in points:
        point = SweepPoint(params=dict(params))
        for __ in range(repetitions):
            rng = np.random.default_rng(children[child_index])
            child_index += 1
            protocol, configuration = build(dict(params), rng)
            point.runs.append(
                run_protocol(
                    protocol,
                    configuration,
                    seed=rng,
                    engine=engine,
                    max_interactions=max_interactions,
                    max_events=max_events,
                )
            )
        results.append(point)
    return results


def measure_stabilisation(
    build: Builder,
    xs: Sequence[int],
    x_name: str = "n",
    repetitions: int = 5,
    seed: int = 0,
    max_interactions: Optional[int] = None,
) -> List[SweepPoint]:
    """Convenience sweep over a single integer parameter (usually ``n``)."""
    points = [{x_name: x} for x in xs]
    return run_sweep(
        points,
        build,
        repetitions=repetitions,
        seed=seed,
        max_interactions=max_interactions,
    )
