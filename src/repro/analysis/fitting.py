"""Scaling-law fits for complexity experiments.

The paper's claims are asymptotic (``Θ(n²)``, ``O(n^{7/4} log² n)``,
``O(n log n)``, ...).  Experiments measure stabilisation time over a
range of ``n`` and summarise the growth by a least-squares fit of
``log t`` against ``log n`` — the fitted slope is the empirical
exponent.  Polylogarithmic factors can be divided out first
(``log_correction``) so e.g. ``n log n`` data fits exponent ≈ 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from repro._deps import np

from ..core.engine import make_rng
from ..exceptions import ExperimentError

__all__ = ["PowerLawFit", "fit_power_law", "bootstrap_exponent_interval"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``t ≈ coefficient · x^exponent`` (log–log)."""

    exponent: float
    coefficient: float
    r_squared: float
    log_correction: float
    num_points: int

    def predict(self, x: float) -> float:
        """Model value at ``x`` (including the log correction factor)."""
        base = self.coefficient * x**self.exponent
        if self.log_correction:
            base *= math.log(x) ** self.log_correction
        return base

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``n^2.03 (R²=0.999)``."""
        logs = (
            f"·log^{self.log_correction:g}(n)" if self.log_correction else ""
        )
        return f"n^{self.exponent:.2f}{logs} (R²={self.r_squared:.3f})"


def fit_power_law(
    xs: Sequence[float],
    ys: Sequence[float],
    log_correction: float = 0.0,
) -> PowerLawFit:
    """Fit ``y ≈ c · x^e · log(x)^log_correction``.

    ``log_correction`` divides the data by ``log(x)^q`` before the
    log–log regression, so the returned exponent isolates the
    polynomial part of a poly·polylog law.
    """
    if len(xs) != len(ys):
        raise ExperimentError("fit needs equal-length x and y vectors")
    if len(xs) < 2:
        raise ExperimentError(f"fit needs at least 2 points, got {len(xs)}")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ExperimentError("power-law fit needs x > 0 and y > 0")
    if log_correction and any(x <= 1 for x in xs):
        raise ExperimentError("log-corrected fits need x > 1")
    x_arr = np.asarray(xs, dtype=float)
    y_arr = np.asarray(ys, dtype=float)
    if log_correction:
        y_arr = y_arr / np.log(x_arr) ** log_correction
    log_x = np.log(x_arr)
    log_y = np.log(y_arr)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = log_y - predicted
    total = log_y - log_y.mean()
    denom = float(total @ total)
    r_squared = 1.0 - float(residual @ residual) / denom if denom else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
        log_correction=log_correction,
        num_points=len(xs),
    )


def bootstrap_exponent_interval(
    xs: Sequence[float],
    ys: Sequence[float],
    log_correction: float = 0.0,
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: Union[int, np.random.Generator, None] = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the fitted exponent.

    Resamples (x, y) points with replacement; degenerate resamples
    (fewer than two distinct x) are rejected and redrawn.
    """
    rng = make_rng(seed)
    n = len(xs)
    if n < 3:
        raise ExperimentError("bootstrap needs at least 3 points")
    exponents = []
    while len(exponents) < num_resamples:
        idx = rng.integers(0, n, size=n)
        sample_x = [xs[i] for i in idx]
        if len(set(sample_x)) < 2:
            continue
        sample_y = [ys[i] for i in idx]
        exponents.append(
            fit_power_law(sample_x, sample_y, log_correction).exponent
        )
    lo = float(np.quantile(exponents, (1 - confidence) / 2))
    hi = float(np.quantile(exponents, 1 - (1 - confidence) / 2))
    return lo, hi
