"""Supervised process-pool execution: timeouts, retries, quarantine.

:func:`supervised_map` is the fault-tolerant executor seam underneath
:func:`repro.analysis.sweep.fan_out`.  Instead of ``executor.map`` —
where one crashed worker poisons the whole batch with
``BrokenProcessPool`` and one hung job stalls it forever — every job
gets its own future, a deadline, and a bounded retry budget:

* **Crash containment.**  A worker-process death surfaces as
  ``BrokenProcessPool`` on *every* in-flight future, so blame is
  attributed by *solo isolation*: the pool is rebuilt and each suspect
  re-runs alone in a single-worker pool.  Only the job that breaks its
  own solo pool is charged an attempt; innocent cohort members just
  return their results (bit-identical — jobs are pure functions of
  their pre-spawned seeds, so a re-run is a replay).
* **Hang containment.**  With ``policy.timeout`` set, a job past its
  deadline gets its pool killed; the hung job is charged an attempt and
  the other in-flight jobs are requeued uncharged.
* **Quarantine.**  A job that exhausts ``policy.max_attempts`` becomes
  a :class:`JobFailure` record at its slot — data, not an exception —
  so one poison job cannot sink the other 99 999.
* **Backoff.**  Charged retries wait ``backoff_base * 2**(attempt-1)``
  seconds (capped, jittered) before resubmission.  Backoff only ever
  sleeps; it cannot influence the results, which stay a pure function
  of the job tuples.
* **Degradation.**  After ``policy.max_pool_rebuilds`` rebuilds the
  supervisor stops trusting process pools and finishes the remaining
  jobs serially in-process.

Deterministic *exceptions* raised by the worker (as opposed to process
deaths) are never retried — the jobs are pure, so a re-run would raise
identically.  They re-raise immediately under ``policy.fail_fast``
(the default, preserving classic ``fan_out`` semantics) or become
:class:`JobFailure` records otherwise (the ensemble runner's choice).
"""

from __future__ import annotations

import pickle
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ExperimentError

__all__ = [
    "JobFailure",
    "ShutdownLatch",
    "SupervisionPolicy",
    "check_picklable",
    "supervised_map",
]


class ShutdownLatch:
    """A signal-to-flag adapter for cooperative graceful shutdown.

    Long-running drivers (the cooperative ensemble worker, most of all)
    poll ``latch.requested`` at safe points — between shards, never
    mid-commit — and wind down cleanly: release leases, leave every
    file either complete or absent, exit.  Used as a context manager it
    installs itself as the handler for ``signals`` (default
    ``SIGTERM``, what orchestrators and ``kill`` send) and restores the
    previous handlers on exit; installation is best-effort because
    ``signal.signal`` only works on the main thread — off it, the latch
    still functions via :meth:`trip`.
    """

    def __init__(self, signals: Sequence[int] = (signal.SIGTERM,)) -> None:
        self.signals = tuple(signals)
        self._event = threading.Event()
        self._previous: Dict[int, object] = {}

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def trip(self, signum: Optional[int] = None, frame=None) -> None:
        """Request shutdown (also the installed signal handler)."""
        self._event.set()

    def __enter__(self) -> "ShutdownLatch":
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self.trip)
            except ValueError:
                pass  # not the main thread — trip() still works
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass
        self._previous.clear()


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry / timeout / degradation knobs for :func:`supervised_map`."""

    #: Per-job wall-clock deadline in seconds (``None`` = no deadline).
    #: Only enforceable with ``workers > 1`` — a serial run cannot
    #: pre-empt its own process.
    timeout: Optional[float] = None
    #: Crash/hang attempts per job before quarantine.
    max_attempts: int = 3
    #: First retry delay in seconds; doubles per charged attempt.
    backoff_base: float = 0.25
    #: Upper bound on any single retry delay.
    backoff_cap: float = 8.0
    #: Uniform random extra fraction of the delay (desynchronises
    #: retries; sleep-only, never touches result bits).
    jitter: float = 0.25
    #: Pool rebuilds tolerated before degrading to serial execution.
    max_pool_rebuilds: int = 3
    #: ``True``: deterministic worker exceptions re-raise immediately
    #: (classic ``fan_out`` semantics).  ``False``: they quarantine as
    #: :class:`JobFailure` records like exhausted crash retries.
    fail_fast: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ExperimentError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ExperimentError("backoff delays must be >= 0")
        if self.jitter < 0:
            raise ExperimentError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_pool_rebuilds < 0:
            raise ExperimentError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * random.random()
        return delay


@dataclass(frozen=True)
class JobFailure:
    """A quarantined job: its slot in the results, not an exception.

    ``kind`` is ``"crash"`` (worker process died), ``"hang"`` (deadline
    exceeded), or ``"error"`` (the worker raised and the policy does
    not fail fast).  ``attempts`` counts the charged tries.
    """

    index: int
    kind: str
    error: str
    message: str
    attempts: int

    def __repr__(self) -> str:
        return (
            f"JobFailure(#{self.index} {self.kind} after "
            f"{self.attempts} attempt(s): {self.error}: {self.message})"
        )


def check_picklable(worker: Callable, jobs: Sequence) -> None:
    """Fail early, by name, on anything a process pool cannot ship.

    ``executor.submit`` discovers unpicklable payloads deep inside the
    pool's feeder thread, as an opaque late crash; this pre-check
    raises :class:`ExperimentError` naming the offending object before
    any process is spawned.
    """
    try:
        pickle.dumps(worker)
    except Exception as exc:
        raise ExperimentError(
            f"worker {worker!r} does not pickle and cannot be dispatched "
            f"to a process pool (use a module-level callable): {exc}"
        ) from exc
    try:
        pickle.dumps(list(jobs))
    except Exception:
        # Find and name the offender rather than blaming the batch.
        for index, job in enumerate(jobs):
            try:
                pickle.dumps(job)
            except Exception as exc:
                raise ExperimentError(
                    f"job #{index} ({job!r}) does not pickle and cannot "
                    f"be dispatched to a process pool: {exc}"
                ) from exc
        raise  # pragma: no cover — batch failed but every item passed


def _notify(observer, kind: str, **fields) -> None:
    """Report one supervision event; observer errors never break the map."""
    if observer is None:
        return
    try:
        observer(kind, fields)
    except Exception:
        pass


def _terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Kill a pool's workers and reap it without waiting on stuck jobs."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _run_serially(
    worker: Callable,
    jobs: Sequence,
    indices: Sequence[int],
    policy: SupervisionPolicy,
    results: List,
    failures: Dict[int, JobFailure],
    attempts: List[int],
    observer=None,
    shutdown=None,
) -> None:
    """Degraded mode: finish ``indices`` in-process (no pre-emption)."""
    for index in indices:
        if shutdown is not None and shutdown.requested:
            return
        try:
            results[index] = worker(jobs[index])
        except Exception as exc:
            if policy.fail_fast:
                raise
            failures[index] = JobFailure(
                index=index,
                kind="error",
                error=type(exc).__name__,
                message=str(exc),
                attempts=attempts[index] + 1,
            )
            _notify(observer, "quarantine", job=index, failure="error")


def _solo_isolation(
    worker: Callable,
    jobs: Sequence,
    suspects: Sequence[int],
    policy: SupervisionPolicy,
    results: List,
    failures: Dict[int, JobFailure],
    attempts: List[int],
    retry_queue: deque,
    observer=None,
) -> None:
    """Attribute blame for a pool break by re-running suspects alone.

    Each suspect gets a fresh single-worker pool: a job that breaks its
    *own* pool is definitively poison and is charged an attempt (then
    retried later or quarantined); every other suspect simply returns
    its result — a bit-identical replay, since jobs are pure.
    """
    for index in suspects:
        solo = ProcessPoolExecutor(max_workers=1)
        try:
            future = solo.submit(worker, jobs[index])
            done, _ = wait([future], timeout=policy.timeout)
            if not done:
                _terminate_pool(solo)
                _charge(index, "hang", "TimeoutError",
                        f"job exceeded {policy.timeout}s solo deadline",
                        policy, failures, attempts, retry_queue, observer)
                continue
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                _charge(index, "crash", "BrokenProcessPool",
                        "worker process died running this job alone",
                        policy, failures, attempts, retry_queue, observer)
            except Exception as exc:
                if policy.fail_fast:
                    raise
                failures[index] = JobFailure(
                    index=index,
                    kind="error",
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=attempts[index] + 1,
                )
                _notify(observer, "quarantine", job=index, failure="error")
        finally:
            _terminate_pool(solo)


def _charge(
    index: int,
    kind: str,
    error: str,
    message: str,
    policy: SupervisionPolicy,
    failures: Dict[int, JobFailure],
    attempts: List[int],
    retry_queue: deque,
    observer=None,
) -> None:
    """Charge one attempt to a job; quarantine or schedule a retry."""
    attempts[index] += 1
    if attempts[index] >= policy.max_attempts:
        failures[index] = JobFailure(
            index=index,
            kind=kind,
            error=error,
            message=message,
            attempts=attempts[index],
        )
        _notify(observer, "quarantine", job=index, failure=kind)
    else:
        retry_queue.append((index, policy.backoff_delay(attempts[index])))
        _notify(
            observer, "retry",
            job=index, attempt=attempts[index], failure=kind,
        )


def supervised_map(
    worker: Callable,
    jobs: Sequence,
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    observer: Optional[Callable[[str, dict], None]] = None,
    shutdown: Optional[ShutdownLatch] = None,
) -> Tuple[List, List[JobFailure]]:
    """Map ``worker`` over ``jobs`` under supervision.

    Returns ``(results, failures)``: ``results`` keeps job order with
    ``None`` at every quarantined slot, ``failures`` lists the
    quarantined jobs (sorted by index).  ``worker`` must be a pure
    function of its job — retries and worker-count changes are then
    invisible in the results, preserving the repo-wide bit-identical
    reproducibility guarantee.

    With ``workers`` of ``None``/1 the jobs run serially in-process:
    no pre-emption is possible, so ``policy.timeout`` is not enforced
    and a hard crash is fatal — but worker exceptions still honour
    ``policy.fail_fast``.

    ``observer``, when given, receives ``(kind, fields)`` for each
    supervision event — ``"retry"`` (``job``/``attempt``/``failure``),
    ``"quarantine"`` (``job``/``failure``), ``"pool_rebuild"``
    (``rebuilds``) — the vocabulary of :mod:`repro.obs.trace`'s
    operational records.  Observation is best-effort: observer
    exceptions are swallowed, and the callback can never change the
    results.

    ``shutdown``, when given, makes the map *interruptible at job
    boundaries*: once ``shutdown.requested`` turns true no further job
    is dispatched — in-flight jobs finish (their results land), and
    every undispatched slot simply stays ``None`` without a failure
    record.  Completed slots are final either way, so an interrupted
    map is a clean prefix a caller can commit or resume from (the
    ensemble shard runner and ``repro serve`` both rely on this).
    """
    policy = policy or SupervisionPolicy()
    if workers is not None and workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    jobs = list(jobs)
    results: List = [None] * len(jobs)
    failures: Dict[int, JobFailure] = {}
    attempts = [0] * len(jobs)

    if workers is None or workers <= 1 or not jobs:
        _run_serially(worker, jobs, range(len(jobs)), policy,
                      results, failures, attempts, observer, shutdown)
        return results, sorted(failures.values(), key=lambda f: f.index)

    check_picklable(worker, jobs)

    pending: deque = deque(range(len(jobs)))
    retry_queue: deque = deque()  # (index, not-before-delay) pairs
    rebuilds = 0
    executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
        max_workers=workers
    )
    in_flight: Dict = {}  # future -> (index, deadline | None)

    def submit(index: int) -> bool:
        """Submit one job; False when the pool is already broken."""
        deadline = (
            time.monotonic() + policy.timeout
            if policy.timeout is not None
            else None
        )
        try:
            future = executor.submit(worker, jobs[index])
        except BrokenProcessPool:
            pending.appendleft(index)
            return False
        in_flight[future] = (index, deadline)
        return True

    def drain_retries() -> None:
        """Move due retries into ``pending`` (sleeping off the backoff)."""
        while retry_queue:
            index, delay = retry_queue.popleft()
            if delay > 0:
                time.sleep(delay)
            pending.append(index)

    def break_pool(suspects: List[int]) -> None:
        """Rebuild after a crash/hang; suspects go to solo isolation."""
        nonlocal executor, rebuilds
        for future in list(in_flight):
            index, _ = in_flight.pop(future)
            if index not in suspects:
                pending.appendleft(index)  # innocent: requeue uncharged
        _terminate_pool(executor)
        executor = None
        _solo_isolation(worker, jobs, suspects, policy,
                        results, failures, attempts, retry_queue, observer)
        rebuilds += 1
        _notify(observer, "pool_rebuild", rebuilds=rebuilds)

    try:
        while pending or in_flight or retry_queue:
            if shutdown is not None and shutdown.requested:
                # Cooperative wind-down: stop dispatching, let what is
                # already running finish, leave the rest untouched.
                pending.clear()
                retry_queue.clear()
                if not in_flight:
                    break
            drain_retries()
            if executor is None or rebuilds > policy.max_pool_rebuilds:
                if executor is not None:
                    # Pool trust exhausted: fall back to serial for
                    # everything not yet dispatched.
                    for future in list(in_flight):
                        index, _ = in_flight.pop(future)
                        pending.appendleft(index)
                    _terminate_pool(executor)
                    executor = None
                if rebuilds > policy.max_pool_rebuilds:
                    remaining = list(pending)
                    pending.clear()
                    drain_retries()
                    remaining += list(pending)
                    pending.clear()
                    _run_serially(worker, jobs, remaining, policy,
                                  results, failures, attempts, observer,
                                  shutdown)
                    continue
                executor = ProcessPoolExecutor(max_workers=workers)
            while pending and len(in_flight) < workers:
                if not submit(pending.popleft()):
                    break_pool(suspects=list(
                        {idx for idx, _ in in_flight.values()}
                    ) or [])
                    break
            if not in_flight:
                continue
            now = time.monotonic()
            deadlines = [d for _, d in in_flight.values() if d is not None]
            poll = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            done, _ = wait(
                list(in_flight), timeout=poll, return_when=FIRST_COMPLETED
            )
            broken_suspects: Optional[List[int]] = None
            for future in done:
                index, _ = in_flight.pop(future)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    if broken_suspects is None:
                        broken_suspects = [index]
                    else:
                        broken_suspects.append(index)
                except Exception as exc:
                    if policy.fail_fast:
                        raise
                    failures[index] = JobFailure(
                        index=index,
                        kind="error",
                        error=type(exc).__name__,
                        message=str(exc),
                        attempts=attempts[index] + 1,
                    )
                    _notify(
                        observer, "quarantine", job=index, failure="error"
                    )
            if broken_suspects is not None:
                # Every job in flight at the break is a suspect — the
                # dead worker could have been running any of them.
                broken_suspects.extend(
                    idx for idx, _ in in_flight.values()
                )
                break_pool(broken_suspects)
                continue
            if policy.timeout is not None:
                now = time.monotonic()
                overdue = [
                    idx
                    for fut, (idx, deadline) in in_flight.items()
                    if deadline is not None and now >= deadline
                ]
                if overdue:
                    # A running future cannot be cancelled; the only
                    # pre-emption a process pool offers is killing it.
                    for index in overdue:
                        _charge(index, "hang", "TimeoutError",
                                f"job exceeded {policy.timeout}s deadline",
                                policy, failures, attempts, retry_queue,
                                observer)
                    for future in list(in_flight):
                        index, _ = in_flight.pop(future)
                        if index not in overdue:
                            pending.appendleft(index)
                    _terminate_pool(executor)
                    executor = None
                    rebuilds += 1
                    _notify(observer, "pool_rebuild", rebuilds=rebuilds)
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    return results, sorted(failures.values(), key=lambda f: f.index)
