"""The paper's potential functions and accounting vectors, as code.

The correctness proofs hinge on a handful of quantities that decrease
(or are conserved) along trajectories.  Implementing them makes the
proofs *testable*: the test suite asserts monotonicity/identities along
simulated trajectories, and experiments record them as time series.

* §2.2  — tidiness of trap configurations (Lemma 2).
* §3    — the Lemma 3 weight ``K = k₁ + 2·k₂`` of a ring configuration.
* §4    — per-line vectors ``β, γ`` and the derived allocation ``α``,
  target-gate ``δ`` and excess ``ρ`` vectors; the Lemma 5 closed form
  for a line stabilising in isolation; surplus ``s``, deficit ``d`` and
  token count ``r``; the Lemma 10 identity ``s(C) = d(C)``.
* §5    — the Lemma 20 root-to-leaf path potential
  ``F = k_b + 3/2·k_n − h_b − 3/2·h_n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..protocols.line import LineOfTrapsProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.trap import TrapLayout, trap_gaps, trap_is_flat, trap_is_tidy
from ..protocols.tree import NodeKind, PerfectlyBalancedTree

__all__ = [
    "ring_weight_components",
    "ring_weight",
    "all_traps_tidy",
    "tree_path_potential",
    "max_tree_path_potential",
    "LineVectors",
    "line_vectors",
    "stabilise_line",
    "line_surplus",
    "line_excess_tokens",
    "line_deficit",
    "global_surplus",
    "global_deficit",
    "global_excess",
    "indicated_lines",
]


# ----------------------------------------------------------------------
# §2.2 / Lemma 2 — tidiness
# ----------------------------------------------------------------------
def all_traps_tidy(traps: Sequence[TrapLayout], counts: Sequence[int]) -> bool:
    """True iff every trap is tidy: overloads sit above all gaps (§2.2)."""
    return all(trap_is_tidy(counts, trap) for trap in traps)


# ----------------------------------------------------------------------
# §3 / Lemma 3 — the ring weight K
# ----------------------------------------------------------------------
def ring_weight_components(
    protocol: RingOfTrapsProtocol, counts: Sequence[int]
) -> Tuple[int, int]:
    """``(k₁, k₂)``: flat traps with empty gates, and total gaps."""
    k1 = 0
    k2 = 0
    for trap in protocol.traps:
        k2 += trap_gaps(counts, trap)
        if trap_is_flat(counts, trap) and counts[trap.gate] == 0:
            k1 += 1
    return k1, k2


def ring_weight(protocol: RingOfTrapsProtocol, counts: Sequence[int]) -> int:
    """The Lemma 3 weight ``K = k₁ + 2·k₂`` (non-increasing along runs)."""
    k1, k2 = ring_weight_components(protocol, counts)
    return k1 + 2 * k2


# ----------------------------------------------------------------------
# §5 / Lemma 20 — root-to-leaf path potential
# ----------------------------------------------------------------------
def tree_path_potential(
    tree: PerfectlyBalancedTree, counts: Sequence[int], leaf: int
) -> float:
    """``F = k_b + 3/2·k_n − h_b − 3/2·h_n`` along one root-to-leaf path.

    ``k_b/k_n`` count agents on branching/non-branching path nodes,
    ``h_b/h_n`` count the nodes themselves; the leaf counts as
    branching, as in the paper's proof.  ``F = 0`` on a path occupied by
    exactly one agent per node.
    """
    kb = kn = hb = hn = 0
    for node in tree.root_to_leaf_path(leaf):
        branching_like = tree.kind(node) != NodeKind.NON_BRANCHING
        if branching_like:
            hb += 1
            kb += counts[node]
        else:
            hn += 1
            kn += counts[node]
    return (kb - hb) + 1.5 * (kn - hn)


def max_tree_path_potential(
    tree: PerfectlyBalancedTree, counts: Sequence[int]
) -> float:
    """Maximum path potential over all root-to-leaf paths (small trees)."""
    return max(
        tree_path_potential(tree, counts, leaf) for leaf in tree.leaves
    )


# ----------------------------------------------------------------------
# §4 — line-of-traps accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LineVectors:
    """Per-trap agent counts of one line, in trap order ``a = 1..A``.

    ``beta[a-1]`` agents occupy the *inner* states of trap ``a`` and
    ``gamma[a-1]`` its gate; ``inner_caps[a-1]`` is the trap's inner
    capacity ``m`` (``size − 1``).  Exposes the paper's derived vectors
    as properties.
    """

    beta: Tuple[int, ...]
    gamma: Tuple[int, ...]
    inner_caps: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not len(self.beta) == len(self.gamma) == len(self.inner_caps):
            raise ConfigurationError("line vectors must have equal length")

    @property
    def num_traps(self) -> int:
        return len(self.beta)

    @property
    def num_agents(self) -> int:
        """Total agents on the line."""
        return sum(self.beta) + sum(self.gamma)

    @property
    def capacity(self) -> int:
        """Total states on the line (``3m(m+1)`` in the exact lattice)."""
        return sum(cap + 1 for cap in self.inner_caps)

    # -- local (no-inflow) stabilisation quantities, per trap ----------
    def allocation(self) -> Tuple[int, ...]:
        """The allocation vector ``α``: inner occupancy after isolation."""
        return tuple(
            min(b + g // 2, cap)
            for b, g, cap in zip(self.beta, self.gamma, self.inner_caps)
        )

    def target_gate(self) -> Tuple[int, ...]:
        """The target gate vector ``δ`` (0/1 gate occupancy after isolation)."""
        result = []
        for b, g, cap in zip(self.beta, self.gamma, self.inner_caps):
            result.append(g % 2 if b + g // 2 <= cap else 1)
        return tuple(result)

    def excess(self) -> Tuple[int, ...]:
        """The excess vector ``ρ`` — each entry is that trap's token count."""
        result = []
        for b, g, cap in zip(self.beta, self.gamma, self.inner_caps):
            if b + g // 2 <= cap:
                result.append(g // 2)
            else:
                result.append(b + g - cap - 1)
        return tuple(result)


def line_vectors(
    protocol: LineOfTrapsProtocol, counts: Sequence[int], line: int
) -> LineVectors:
    """Extract ``(β, γ)`` of ``line`` from a full-protocol configuration."""
    beta = []
    gamma = []
    caps = []
    for trap in protocol.line_traps(line):
        gamma.append(counts[trap.gate])
        beta.append(sum(counts[s] for s in trap.inner_states))
        caps.append(trap.size - 1)
    return LineVectors(beta=tuple(beta), gamma=tuple(gamma),
                       inner_caps=tuple(caps))


def stabilise_line(vectors: LineVectors) -> Tuple[LineVectors, int]:
    """Lemma 5's closed form: the silent configuration of an isolated line.

    Runs the paper's descending induction from the entrance trap
    ``a = A`` down to the exit trap ``a = 1``: every other agent visiting
    a gate enters the trap (until it is full), the rest flow onward.
    Returns the final ``(β̄, γ̄)`` vectors and the surplus ``s`` — the
    number of agents the line releases to ``X``.  Both depend only on
    the initial configuration (schedule independence is property-tested
    against simulation).
    """
    num_traps = vectors.num_traps
    beta_bar = [0] * num_traps
    gamma_bar = [0] * num_traps
    inflow = 0  # x_a: agents arriving from the trap above
    for idx in range(num_traps - 1, -1, -1):
        beta = vectors.beta[idx]
        gamma = vectors.gamma[idx]
        cap = vectors.inner_caps[idx]
        visiting = inflow + gamma  # y_a: all agents visiting this gate
        entering = visiting // 2
        if beta + entering <= cap:
            beta_bar[idx] = beta + entering
            gamma_bar[idx] = visiting % 2
            inflow = entering
        else:
            beta_bar[idx] = cap
            gamma_bar[idx] = 1
            inflow = beta + visiting - cap - 1
    final = LineVectors(
        beta=tuple(beta_bar),
        gamma=tuple(gamma_bar),
        inner_caps=vectors.inner_caps,
    )
    return final, inflow


def line_surplus(vectors: LineVectors) -> int:
    """``s(C_l)``: agents an isolated line releases before silence."""
    __, surplus = stabilise_line(vectors)
    return surplus


def line_excess_tokens(vectors: LineVectors) -> int:
    """``r(C_l) = Σ_a ρ_a``: the line's token count."""
    return sum(vectors.excess())


def line_deficit(vectors: LineVectors) -> int:
    """``d(C_l)``: unoccupied states once the line stabilises in isolation.

    The Lemma 10 identity ``s(C) = d(C)`` holds with the deficit
    measured on the stabilised line (the paper's proof equates
    ``Σ_l 3m(m+1) − Σ_l |C̄_l|``).
    """
    final, __ = stabilise_line(vectors)
    return final.capacity - final.num_agents


# ----------------------------------------------------------------------
# §4 — global (whole-protocol) quantities
# ----------------------------------------------------------------------
def _all_line_vectors(
    protocol: LineOfTrapsProtocol, counts: Sequence[int]
) -> List[LineVectors]:
    return [
        line_vectors(protocol, counts, line)
        for line in range(protocol.num_lines)
    ]


def global_surplus(
    protocol: LineOfTrapsProtocol, counts: Sequence[int]
) -> int:
    """``s(C) = |C_X| + Σ_l s(C_l)`` — the paper's measure of global flow."""
    x_agents = counts[protocol.x_state]
    return x_agents + sum(
        line_surplus(v) for v in _all_line_vectors(protocol, counts)
    )


def global_deficit(
    protocol: LineOfTrapsProtocol, counts: Sequence[int]
) -> int:
    """``d(C) = Σ_l d(C_l)`` — distance to the final configuration."""
    return sum(line_deficit(v) for v in _all_line_vectors(protocol, counts))


def global_excess(
    protocol: LineOfTrapsProtocol, counts: Sequence[int]
) -> int:
    """``r(C) = |C_X| + Σ_l r(C_l)`` — total tokens (X agents included)."""
    x_agents = counts[protocol.x_state]
    return x_agents + sum(
        line_excess_tokens(v) for v in _all_line_vectors(protocol, counts)
    )


def indicated_lines(
    protocol: LineOfTrapsProtocol, counts: Sequence[int]
) -> List[bool]:
    """Which lines are *indicated*: more than ``m(m+1)`` occupied states
    among the traps pointing to them (§4.2, before Lemma 11)."""
    m = protocol.m
    threshold = m * (m + 1)
    occupied_pointing = [0] * protocol.num_lines
    for line in range(protocol.num_lines):
        for a in range(1, protocol.traps_per_line + 1):
            target = protocol.pointed_line(line, a)
            trap = protocol.trap(line, a)
            occupied_pointing[target] += sum(
                1 for s in trap.states if counts[s] > 0
            )
    return [occ > threshold for occ in occupied_pointing]
