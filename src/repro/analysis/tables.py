"""Plain-text and Markdown table rendering for experiment output.

Benchmarks print the same rows the paper's claims describe; this module
owns the formatting so every experiment renders consistently in the
terminal, in EXPERIMENTS.md, and in benchmark logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Table", "format_value"]


def format_value(value: object) -> str:
    """Render a cell: thousands separators for ints, 4 sig figs for floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled table with optional footnotes."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cells are formatted lazily)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        """Append a footnote line."""
        self.notes.append(note)

    def _formatted(self) -> List[List[str]]:
        return [[format_value(c) for c in row] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering for terminals and logs."""
        formatted = self._formatted()
        widths = [len(h) for h in self.headers]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in formatted:
            lines.append(
                " | ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (used by EXPERIMENTS.md)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self._formatted():
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
