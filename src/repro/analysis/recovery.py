"""Recovery-time analysis of scenario campaigns.

The paper's silence/stabilisation bounds are statements about how fast
a population returns to the silent configuration after an adversarial
disturbance.  This module turns the phase logs of a
:class:`~repro.scenarios.campaign.CampaignResult` into exactly those
measurements:

* :func:`recovery_records` — one record per (repetition, fault): did the
  population re-silence, and in how much parallel time;
* :func:`survival_curve` — the empirical survival function
  ``S(t) = P(recovery time > t)``, the whp-bound shape check;
* :func:`recovery_table` / :func:`survival_table` /
  :func:`phase_table` — rendered tables for the CLI, the experiment
  registry, and EXPERIMENTS.md;
* :func:`epoch_table` — recovery times grouped by the scheduler
  segment active during the recovery (the per-epoch view for
  time-varying :class:`~repro.core.scheduler.EpochScheduler`
  adversaries: the same fault can recover under different biases
  depending on which epoch it lands in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._deps import np

from ..exceptions import ExperimentError
from .stats import summarise, wilson_interval
from .tables import Table

__all__ = [
    "RecoveryRecord",
    "epoch_table",
    "phase_table",
    "recovery_records",
    "recovery_table",
    "survival_curve",
    "survival_table",
]


@dataclass(frozen=True)
class RecoveryRecord:
    """One fault's recovery measurement in one repetition.

    ``recovery_time`` is the parallel time (interactions / n) the
    following run phase spent before silence — or before its budget ran
    out, in which case ``recovered`` is False and the time is the
    censoring point, not a completed recovery.
    """

    repetition: int
    fault_index: int
    fault_label: str
    distance_after_fault: Optional[int]
    num_agents: int
    recovered: bool
    recovery_time: float
    recovery_events: int
    #: Scheduler (or epoch segment) active when the recovery run ended.
    scheduler: str = "uniform"


def recovery_records(campaign) -> List[RecoveryRecord]:
    """Flatten a campaign into per-(repetition, fault) recovery records.

    Faults with no run phase after them (a trailing fault) produce no
    record — there is nothing to measure.
    """
    records: List[RecoveryRecord] = []
    for repetition, result in enumerate(campaign.results):
        for fault, run in result.recovery_pairs():
            if run is None:
                continue
            records.append(
                RecoveryRecord(
                    repetition=repetition,
                    fault_index=fault.index,
                    fault_label=fault.label,
                    distance_after_fault=fault.distance,
                    num_agents=run.num_agents,
                    recovered=run.silent,
                    recovery_time=run.parallel_time,
                    recovery_events=run.events,
                    scheduler=getattr(run, "scheduler", "uniform"),
                )
            )
    return records


def _by_fault(
    records: Sequence[RecoveryRecord],
) -> Dict[Tuple[int, str], List[RecoveryRecord]]:
    """Group records by fault phase, preserving timeline order."""
    groups: Dict[Tuple[int, str], List[RecoveryRecord]] = {}
    for record in records:
        groups.setdefault((record.fault_index, record.fault_label), []).append(
            record
        )
    return dict(sorted(groups.items()))


def recovery_table(campaign) -> Table:
    """Per-fault recovery summary: success rate and time distribution."""
    records = recovery_records(campaign)
    table = Table(
        title=(
            f"Recovery after faults — campaign "
            f"{campaign.scenario.name!r}, "
            f"{campaign.repetitions} repetitions"
        ),
        headers=[
            "fault",
            "runs",
            "recovered",
            "95% CI",
            "median time",
            "p75 time",
            "max time",
            "median events",
        ],
    )
    if not records:
        table.add_note("no fault phases with a following run phase")
        return table
    for (_, label), group in _by_fault(records).items():
        recovered = sum(1 for r in group if r.recovered)
        low, high = wilson_interval(recovered, len(group))
        times = summarise([r.recovery_time for r in group])
        events = summarise([float(r.recovery_events) for r in group])
        table.add_row(
            label,
            len(group),
            f"{recovered}/{len(group)}",
            f"[{low:.2f}, {high:.2f}]",
            times.median,
            times.p75,
            times.maximum,
            events.median,
        )
    censored = sum(1 for r in records if not r.recovered)
    if censored:
        table.add_note(
            f"{censored} unrecovered run(s): their times are censoring "
            "points (budget exhausted), not completed recoveries"
        )
    table.add_note(
        "time is parallel time (interactions / n) spent re-silencing "
        "after the fault"
    )
    return table


def survival_curve(
    times: Sequence[float], grid: Optional[Sequence[float]] = None
) -> Tuple[List[float], List[float]]:
    """Empirical survival function of recovery times.

    Returns ``(ts, fractions)`` with ``fractions[i] = P(T > ts[i])``.
    The default grid spans the sample's range in 8 even steps.
    """
    if not times:
        raise ExperimentError("survival_curve needs at least one time")
    sorted_times = np.sort(np.asarray(times, dtype=float))
    if grid is None:
        top = float(sorted_times[-1])
        grid = [top * i / 8 for i in range(9)]
    fractions = [
        float(np.mean(sorted_times > t)) for t in grid
    ]
    return list(grid), fractions


def survival_table(campaign, points: int = 8) -> Table:
    """Survival of recovery times across all faults of a campaign."""
    records = [r for r in recovery_records(campaign) if r.recovered]
    table = Table(
        title=(
            f"Recovery-time survival — campaign {campaign.scenario.name!r}"
        ),
        headers=["t (parallel time)", "P(recovery > t)"],
    )
    if not records:
        table.add_note("no completed recoveries to summarise")
        return table
    times = [r.recovery_time for r in records]
    top = max(times)
    grid = [top * i / points for i in range(points + 1)]
    ts, fractions = survival_curve(times, grid)
    for t, fraction in zip(ts, fractions):
        table.add_row(t, fraction)
    table.add_note(
        f"{len(times)} completed recoveries pooled across "
        "faults and repetitions"
    )
    return table


def epoch_table(campaign) -> Table:
    """Recovery summary grouped by the scheduler segment doing the work.

    Under an epoch-switching adversary the *same* scripted fault can be
    recovered from under different biases (repetitions cross boundaries
    at different times), so per-fault tables mix regimes; this table
    regroups every (repetition, fault) record by the scheduler active
    when its recovery phase ended.
    """
    records = recovery_records(campaign)
    table = Table(
        title=(
            f"Recovery by scheduler epoch — campaign "
            f"{campaign.scenario.name!r}"
        ),
        headers=[
            "scheduler",
            "runs",
            "recovered",
            "median time",
            "p75 time",
            "max time",
        ],
    )
    if not records:
        table.add_note("no fault phases with a following run phase")
        return table
    groups: Dict[str, List[RecoveryRecord]] = {}
    for record in records:
        groups.setdefault(record.scheduler, []).append(record)
    for label in sorted(groups):
        group = groups[label]
        recovered = sum(1 for r in group if r.recovered)
        times = summarise([r.recovery_time for r in group])
        table.add_row(
            label,
            len(group),
            f"{recovered}/{len(group)}",
            times.median,
            times.p75,
            times.maximum,
        )
    table.add_note(
        "grouped by the pair-selection bias active when the recovery "
        "phase ended (epoch boundaries fire mid-run)"
    )
    return table


def phase_table(campaign) -> Table:
    """Per-phase event/time medians across a campaign's repetitions."""
    table = Table(
        title=f"Phase timeline — campaign {campaign.scenario.name!r}",
        headers=[
            "phase",
            "kind",
            "n (median)",
            "median events",
            "median time",
            "silent",
        ],
    )
    if not campaign.results:
        table.add_note("campaign has no repetitions")
        return table
    num_phases = len(campaign.results[0].phase_logs)
    for phase_index in range(num_phases):
        logs = [
            result.phase_logs[phase_index] for result in campaign.results
        ]
        silent = sum(1 for log in logs if log.silent)
        table.add_row(
            logs[0].label,
            logs[0].kind,
            summarise([float(log.num_agents) for log in logs]).median,
            summarise([float(log.events) for log in logs]).median,
            summarise([log.parallel_time for log in logs]).median,
            f"{silent}/{len(logs)}",
        )
    return table
