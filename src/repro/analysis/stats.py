"""Summary statistics for repeated stochastic runs.

The paper's guarantees are "with high probability" statements; the
experiments therefore repeat every measurement and report medians,
spreads and empirical success rates (with Wilson confidence intervals
rather than the unstable normal approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro._deps import np

from ..exceptions import ExperimentError

__all__ = ["Summary", "summarise", "wilson_interval", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def describe(self) -> str:
        """Compact ``median [min..max]`` rendering used in tables."""
        return f"{self.median:.3g} [{self.minimum:.3g}..{self.maximum:.3g}]"


def summarise(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if not values:
        raise ExperimentError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=len(values),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(values) > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(np.quantile(arr, 0.25)),
        median=float(np.quantile(arr, 0.5)),
        p75=float(np.quantile(arr, 0.75)),
        maximum=float(arr.max()),
    )


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (0 or all successes), unlike the
    normal approximation — exactly the regime whp experiments live in.
    """
    if trials <= 0:
        raise ExperimentError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise ExperimentError(
            f"successes {successes} outside [0, {trials}]"
        )
    p_hat = successes / trials
    z2 = z * z
    denom = 1 + z2 / trials
    centre = (p_hat + z2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (natural for ratios like speedups)."""
    if not values:
        raise ExperimentError("cannot average an empty sample")
    if any(v <= 0 for v in values):
        raise ExperimentError("geometric mean needs positive values")
    return float(math.exp(np.mean(np.log(np.asarray(values, dtype=float)))))
