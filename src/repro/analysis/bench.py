"""Hot-path throughput benchmark harness (``repro bench``).

Measures productive-event throughput (events/sec) of the current
:class:`~repro.core.jump.JumpEngine` against :class:`LegacyJumpEngine`
— a frozen copy of the engine as it shipped in the seed commit — over a
fixed suite of protocols and population sizes, and writes the numbers
to ``BENCH_<timestamp>.json``.  Keeping the legacy engine in-tree means
every benchmark run measures the baseline on the *same* hardware, so
the recorded speedups are honest and future PRs inherit a perf
trajectory instead of a stale absolute number.

The suite covers both engine fast paths: same-state-only protocols
(AG, single trap, ring of traps — the adaptive dual-sampler loop) and
the multi-family protocols (the §5 reset-line tree and the §4 line of
traps — the fused-index general loop).  A separate scheduler section
measures biased-scheduler runs three ways — the uniform jump baseline,
the rejection :class:`~repro.core.scheduler.ScheduledEngine`, and the
weighted jump fast path — so the cost of adversarial scheduling stays
on the record.

:func:`check_speedup_floors` turns a benchmark record into a pass/fail
gate (used by CI smoke): a case regressing below its committed floor
over the frozen seed baseline fails the run.  :func:`compare_bench`
gates the whole *trend*: it diffs a fresh record against the committed
baseline record case by case and fails on any >15% regression of the
machine-relative throughput ratios (speedup over the frozen seed engine
for engine cases, weighted-over-rejection for scheduler cases — both
numerator and denominator of every ratio run in the same process, so
the comparison transfers across machines).  :func:`append_bench_history`
accumulates per-case events/s into a CSV that the nightly workflow
uploads and renders as an ASCII trend table.
"""

from __future__ import annotations

import csv
import json
import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro._deps import np

from ..core.configuration import Configuration
from ..core.engine import Recorder
from ..core.jump import JumpEngine
from ..core.protocol import PopulationProtocol
from ..core.scheduler import (
    PairScheduler,
    ScheduledEngine,
    WeightedScheduledEngine,
)
from ..exceptions import SimulationError
from ..configurations.generators import random_configuration
from ..protocols.ag import AGProtocol
from ..protocols.line import LineOfTrapsProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.trap import SingleTrapProtocol
from ..protocols.tree_protocol import TreeRankingProtocol

__all__ = [
    "BenchCase",
    "LegacyJumpEngine",
    "SchedulerBenchCase",
    "append_bench_history",
    "backend_bench_suite",
    "bench_ratios",
    "bench_suite",
    "check_speedup_floors",
    "compare_bench",
    "instrument_bench",
    "load_bench",
    "read_bench_history",
    "render_instrument",
    "run_bench",
    "scheduler_bench_suite",
    "write_bench_json",
]

# Fidelity bound of the seed engine's float-indexed sampling.
_LEGACY_MAX_EXACT = 1 << 53

_LEGACY_UNIFORM_BATCH = 8192


class _LegacySameStatePairs:
    """Seed-commit ``SameStatePairs`` (``on_count_change`` returns None)."""

    __slots__ = ("_has_rule", "_fenwick")

    def __init__(self, counts, rule_states) -> None:
        num_states = len(counts)
        self._has_rule = [False] * num_states
        for state in rule_states:
            self._has_rule[state] = True
        weights = [
            counts[s] * (counts[s] - 1) if self._has_rule[s] else 0
            for s in range(num_states)
        ]
        from ..core.fenwick import FenwickTree

        self._fenwick = FenwickTree.from_values(weights)

    @property
    def weight(self) -> int:
        return self._fenwick.total

    def on_count_change(self, state, old, new) -> None:
        if self._has_rule[state]:
            self._fenwick.set(state, new * (new - 1))

    def sample(self, rand_below):
        state = self._fenwick.find(rand_below(self._fenwick.total))
        return state, state


class _LegacyOrderedProduct:
    """Seed-commit ``OrderedProduct`` (unconditional two-sided update)."""

    __slots__ = ("_initiators", "_responders", "_init_pos", "_resp_pos",
                 "_init_fenwick", "_resp_fenwick")

    def __init__(self, counts, initiators, responders) -> None:
        from ..core.fenwick import FenwickTree

        self._initiators = list(initiators)
        self._responders = list(responders)
        num_states = len(counts)
        self._init_pos = [-1] * num_states
        self._resp_pos = [-1] * num_states
        for pos, state in enumerate(self._initiators):
            self._init_pos[state] = pos
        for pos, state in enumerate(self._responders):
            self._resp_pos[state] = pos
        self._init_fenwick = FenwickTree.from_values(
            counts[s] for s in self._initiators
        )
        self._resp_fenwick = FenwickTree.from_values(
            counts[s] for s in self._responders
        )

    @property
    def weight(self) -> int:
        return self._init_fenwick.total * self._resp_fenwick.total

    def on_count_change(self, state, old, new) -> None:
        pos = self._init_pos[state]
        if pos >= 0:
            self._init_fenwick.set(pos, new)
        pos = self._resp_pos[state]
        if pos >= 0:
            self._resp_fenwick.set(pos, new)

    def sample(self, rand_below):
        initiator_pos = self._init_fenwick.find(
            rand_below(self._init_fenwick.total)
        )
        responder_pos = self._resp_fenwick.find(
            rand_below(self._resp_fenwick.total)
        )
        return self._initiators[initiator_pos], self._responders[responder_pos]


class _LegacyTriangularLine:
    """Seed-commit ``TriangularLine`` (full recompute, no delta return)."""

    __slots__ = ("_line", "_pos", "_counts", "_weight")

    def __init__(self, counts, line_states) -> None:
        self._line = list(line_states)
        self._pos = {state: i for i, state in enumerate(self._line)}
        self._counts = [counts[s] for s in self._line]
        self._weight = self._recompute()

    def _recompute(self) -> int:
        total = 0
        suffix = 0
        for c in reversed(self._counts):
            total += c * (c - 1) + c * suffix
            suffix += c
        return total

    @property
    def weight(self) -> int:
        return self._weight

    def on_count_change(self, state, old, new) -> None:
        pos = self._pos.get(state)
        if pos is None:
            return
        self._counts[pos] = new
        self._weight = self._recompute()

    def sample(self, rand_below):
        target = rand_below(self._weight)
        counts = self._counts
        length = len(counts)
        suffix = sum(counts)
        for i in range(length):
            c = counts[i]
            suffix -= c
            same = c * (c - 1)
            if target < same:
                return self._line[i], self._line[i]
            target -= same
            cross = c * suffix
            if target < cross:
                j_target = target // c
                for j in range(i + 1, length):
                    if j_target < counts[j]:
                        return self._line[i], self._line[j]
                    j_target -= counts[j]
                raise SimulationError("TriangularLine sample overflow")
            target -= cross
        raise SimulationError("TriangularLine sample out of range")


def _legacy_families(protocol: PopulationProtocol, counts: List[int]):
    """The protocol's families, rebuilt from the frozen seed classes.

    The live family classes evolve with the fast path (this PR already
    made ``on_count_change`` return deltas); reconstructing their seed
    equivalents keeps the baseline measurement from drifting when they
    do.  Unknown custom family types are used as-is.
    """
    from ..core.families import OrderedProduct, SameStatePairs, TriangularLine

    frozen = []
    for family in protocol.build_families(counts):
        if type(family) is SameStatePairs:
            rule_states = [
                s for s, has in enumerate(family._has_rule) if has
            ]
            frozen.append(_LegacySameStatePairs(counts, rule_states))
        elif type(family) is OrderedProduct:
            frozen.append(
                _LegacyOrderedProduct(
                    counts, family._initiators, family._responders
                )
            )
        elif type(family) is TriangularLine:
            frozen.append(_LegacyTriangularLine(counts, family._line))
        else:
            frozen.append(family)
    return frozen


class LegacyJumpEngine:
    """The seed-commit jump engine, frozen as the benchmark baseline.

    Verbatim hot path of the pre-optimisation engine: per-event family
    weight re-summation, dynamic ``delta()`` dispatch, per-event count
    delta dicts, and float-multiply pair indexing — running on frozen
    copies of the seed weight families.  Do not optimise any of it —
    its whole purpose is to stay slow the way the seed was.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
    ) -> None:
        protocol.validate_configuration(configuration)
        n = protocol.num_agents
        if n * (n - 1) >= _LEGACY_MAX_EXACT:
            raise SimulationError(
                f"population {n} too large for exact float-indexed sampling"
            )
        self._protocol = protocol
        self._rng = rng
        self.counts: List[int] = configuration.counts_list()
        self._families = _legacy_families(protocol, self.counts)
        self._total_pairs = n * (n - 1)
        self.interactions = 0
        self.events = 0
        self._uniforms = rng.random(_LEGACY_UNIFORM_BATCH)
        self._uniform_pos = 0

    def _next_uniform(self) -> float:
        pos = self._uniform_pos
        if pos == _LEGACY_UNIFORM_BATCH:
            self._uniforms = self._rng.random(_LEGACY_UNIFORM_BATCH)
            pos = 0
        self._uniform_pos = pos + 1
        return self._uniforms[pos]

    def rand_below(self, bound: int) -> int:
        """Seed-era float-multiply draw in ``[0, bound)`` (biased near 2⁵³)."""
        value = int(self._next_uniform() * bound)
        return bound - 1 if value >= bound else value

    def _geometric_skip(self, weight: int) -> int:
        p = weight / self._total_pairs
        if p >= 1.0:
            return 1
        u = 1.0 - self._next_uniform()
        skip = math.ceil(math.log(u) / math.log1p(-p))
        return skip if skip >= 1 else 1

    def _sample_pair(self, weight: int) -> tuple:
        target = self.rand_below(weight)
        for family in self._families:
            fw = family.weight
            if target < fw:
                return family.sample(self.rand_below)
            target -= fw
        raise SimulationError("family weights changed during sampling")

    def _apply(self, si: int, sj: int, ti: int, tj: int) -> None:
        counts = self._counts_delta(si, sj, ti, tj)
        for state, delta in counts:
            old = self.counts[state]
            new = old + delta
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying "
                    f"({si},{sj})→({ti},{tj})"
                )
            self.counts[state] = new
            for family in self._families:
                family.on_count_change(state, old, new)

    @staticmethod
    def _counts_delta(si: int, sj: int, ti: int, tj: int):
        delta: dict = {}
        delta[si] = delta.get(si, 0) - 1
        delta[sj] = delta.get(sj, 0) - 1
        delta[ti] = delta.get(ti, 0) + 1
        delta[tj] = delta.get(tj, 0) + 1
        return [(s, d) for s, d in delta.items() if d != 0]

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent."""
        if recorder is not None:
            recorder.on_start(self.counts)
        protocol = self._protocol
        families = self._families
        silent = False
        while True:
            if max_events is not None and self.events >= max_events:
                break
            weight = 0
            for family in families:
                weight += family.weight
            if weight == 0:
                silent = True
                break
            skip = self._geometric_skip(weight)
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                break
            self.interactions += skip
            si, sj = self._sample_pair(weight)
            out = protocol.delta(si, sj)
            if out is None:
                raise SimulationError(
                    f"families sampled null pair ({si}, {sj}) — "
                    "family coverage does not match delta"
                )
            ti, tj = out
            self._apply(si, sj, ti, tj)
            self.events += 1
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent


@dataclass(frozen=True)
class BenchCase:
    """One suite entry: a protocol/start builder plus an event budget."""

    case_id: str
    protocol_name: str
    num_agents: int
    max_events: int
    build: Callable[[], Tuple[PopulationProtocol, Configuration]]


def _ag_case(n: int, max_events: int) -> BenchCase:
    def build():
        protocol = AGProtocol(n)
        return protocol, Configuration.all_in_state(0, n, n)

    return BenchCase(f"ag-n{n}", "AG", n, max_events, build)


def _trap_case(inner: int, n: int, max_events: int) -> BenchCase:
    def build():
        protocol = SingleTrapProtocol(inner, n)
        return protocol, Configuration.all_in_state(
            protocol.trap.top, n, protocol.num_states
        )

    return BenchCase(f"trap-m{inner}-n{n}", f"SingleTrap(m={inner})", n,
                     max_events, build)


def _ring_case(m: int, max_events: int) -> BenchCase:
    def build():
        protocol = RingOfTrapsProtocol(m=m)
        n = protocol.num_agents
        return protocol, Configuration.all_in_state(0, n, n)

    return BenchCase(f"ring-m{m}", f"RingOfTraps(m={m})", m * (m + 1),
                     max_events, build)


def _tree_case(n: int, max_events: int, seed: int = 11) -> BenchCase:
    def build():
        protocol = TreeRankingProtocol(n)
        return protocol, random_configuration(protocol, seed=seed)

    return BenchCase(f"tree-n{n}", "TreeRanking", n, max_events, build)


def _line_case(m: int, max_events: int, seed: int = 13) -> BenchCase:
    def build():
        protocol = LineOfTrapsProtocol(m=m)
        return protocol, random_configuration(
            protocol, seed=seed, include_extras=True
        )

    protocol = LineOfTrapsProtocol(m=m)
    return BenchCase(
        f"line-m{m}", f"LineOfTraps(m={m})", protocol.num_agents,
        max_events, build,
    )


def bench_suite(quick: bool = False) -> List[BenchCase]:
    """The fixed benchmark suite (smaller sizes/budgets when ``quick``).

    ``line-m4`` (the smallest §4 lattice the paper's construction is
    honest at, n = 960) appears in *both* tiers: it is the hybrid
    proposal/Fenwick sampler's headline workload, so the quick tier
    gates it on every PR.
    """
    if quick:
        return [
            _ag_case(256, 5_000),
            _ag_case(1_000, 5_000),
            _trap_case(16, 512, 5_000),
            _ring_case(15, 5_000),
            _tree_case(256, 5_000),
            _line_case(2, 5_000),
            _line_case(4, 20_000),
        ]
    return [
        _ag_case(1_000, 200_000),
        _ag_case(10_000, 200_000),
        _trap_case(64, 4_096, 100_000),
        _ring_case(99, 100_000),
        _tree_case(4_096, 100_000),
        _line_case(4, 100_000),
    ]


@dataclass(frozen=True)
class SchedulerBenchCase:
    """One biased-scheduler entry: protocol/start plus the scheduler."""

    case_id: str
    protocol_name: str
    scheduler_name: str
    num_agents: int
    max_events: int
    build: Callable[[], Tuple[PopulationProtocol, Configuration]]
    build_scheduler: Callable[[PopulationProtocol], PairScheduler]


def _tree_biased_case(
    n: int, max_events: int, extra_weight: float = 0.25, seed: int = 17
) -> SchedulerBenchCase:
    def build():
        protocol = TreeRankingProtocol(n)
        return protocol, random_configuration(
            protocol, seed=seed, include_extras=True
        )

    def build_scheduler(protocol):
        # Imported here: analysis must not hard-depend on scenarios.
        from ..scenarios.schedulers import StateBiasedScheduler

        return StateBiasedScheduler(
            [1.0] * protocol.num_ranks
            + [extra_weight] * protocol.num_extra_states
        )

    return SchedulerBenchCase(
        f"tree-biased-n{n}", "TreeRanking", "state_biased", n, max_events,
        build, build_scheduler,
    )


def _tree_epoch_case(n: int, max_events: int, seed: int = 19) -> SchedulerBenchCase:
    """Epoch-switching adversary: the timeline swaps bias mid-run.

    Segments alternate a state-biased and a clustered scheduler on
    event-count boundaries sized so the run crosses several epoch
    swaps — the case measures the weighted engine's hot-swap (index
    resync at every boundary) against the rejection reference under
    the identical timeline.
    """

    def build():
        protocol = TreeRankingProtocol(n)
        return protocol, random_configuration(
            protocol, seed=seed, include_extras=True
        )

    def build_scheduler(protocol):
        from ..core.scheduler import EpochBoundary, EpochScheduler
        from ..scenarios.schedulers import (
            ClusteredScheduler,
            StateBiasedScheduler,
        )

        biased = StateBiasedScheduler(
            [1.0] * protocol.num_ranks
            + [0.25] * protocol.num_extra_states
        )
        clustered = ClusteredScheduler(protocol.num_states, 2, across=0.1)
        segment = max(1, max_events // 8)
        return EpochScheduler([
            (EpochBoundary(kind="events", value=segment), biased),
            (EpochBoundary(kind="events", value=segment), clustered),
            (EpochBoundary(kind="events", value=segment), biased),
            (None, clustered),
        ])

    return SchedulerBenchCase(
        f"tree-epoch-n{n}", "TreeRanking", "epoch", n, max_events,
        build, build_scheduler,
    )


def scheduler_bench_suite(quick: bool = False) -> List[SchedulerBenchCase]:
    """Biased-scheduler suite: uniform vs rejection vs weighted path."""
    if quick:
        return [_tree_biased_case(128, 2_000), _tree_epoch_case(128, 2_000)]
    return [_tree_biased_case(1_024, 20_000), _tree_epoch_case(1_024, 20_000)]


def backend_bench_suite(quick: bool = False) -> List[BenchCase]:
    """Cases measured scalar-vs-numpy-batch (``backend="numpy"`` path).

    Reuses the engine-suite builders; the runner measures each case
    under the tuned scalar :class:`JumpEngine` and the numpy
    :class:`~repro.core.batch.BatchEngine` and records the
    ``batch_vs_scalar`` ratio.  Case ids carry a ``-np`` suffix so the
    floors and the history CSV keep the backends apart.  The committed
    floors here are *honest* measured values — the batch kernel is
    currently slower than the tuned scalar engine (per-event Python
    commit cost dominates; see README "Backends") — so the gate guards
    against further regression, not a speedup claim.
    """
    if quick:
        picks = [_line_case(4, 20_000), _tree_case(256, 5_000)]
    else:
        picks = [_line_case(4, 100_000), _tree_case(4_096, 100_000)]
    return [
        BenchCase(
            f"{case.case_id}-np", case.protocol_name, case.num_agents,
            case.max_events, case.build,
        )
        for case in picks
    ]


def _measure_scheduler_case(
    case: SchedulerBenchCase, seed: int, repeats: int = 2
) -> Dict[str, object]:
    """Throughput of one biased case under all three realisations.

    ``uniform`` (the unbiased jump baseline, for context), ``rejection``
    (the exact :class:`ScheduledEngine`), and ``weighted`` (the fused
    weighted jump path).  Rejection and weighted realise the same step
    distribution, so their events/sec are directly comparable.
    """

    def best_of(make_engine) -> Dict[str, object]:
        best = None
        for _ in range(max(1, repeats)):
            engine = make_engine()
            begin = time.perf_counter()
            engine.run(max_events=case.max_events)
            wall = time.perf_counter() - begin
            if best is None or wall < best["wall_time_s"]:
                best = {
                    "events": engine.events,
                    "interactions": engine.interactions,
                    "wall_time_s": wall,
                    "events_per_sec": (
                        engine.events / wall if wall > 0 else float("inf")
                    ),
                }
        return best

    protocol, start = case.build()
    scheduler = case.build_scheduler(protocol)
    uniform = best_of(
        lambda: JumpEngine(protocol, start, np.random.default_rng(seed))
    )
    rejection = best_of(
        lambda: ScheduledEngine(
            protocol, start, np.random.default_rng(seed), scheduler
        )
    )
    weighted = best_of(
        lambda: WeightedScheduledEngine(
            protocol, start, np.random.default_rng(seed), scheduler
        )
    )
    return {
        "case": case.case_id,
        "protocol": case.protocol_name,
        "scheduler": case.scheduler_name,
        "n": case.num_agents,
        "max_events": case.max_events,
        "seed": seed,
        "uniform": uniform,
        "rejection": rejection,
        "weighted": weighted,
        "weighted_vs_rejection": (
            weighted["events_per_sec"] / rejection["events_per_sec"]
        ),
    }


def _measure(
    engine_cls, case: BenchCase, seed: int, repeats: int = 2
) -> Dict[str, object]:
    """Best-of-``repeats`` timing (fresh engine per repeat, same seed).

    Each repeat performs identical work, so taking the fastest one
    filters out scheduler noise without flattering either engine.
    """
    best = None
    for _ in range(max(1, repeats)):
        protocol, start = case.build()
        engine = engine_cls(protocol, start, np.random.default_rng(seed))
        begin = time.perf_counter()
        silent = engine.run(max_events=case.max_events)
        wall = time.perf_counter() - begin
        if best is None or wall < best["wall_time_s"]:
            best = {
                "events": engine.events,
                "interactions": engine.interactions,
                "silent": silent,
                "wall_time_s": wall,
                "events_per_sec": (
                    engine.events / wall if wall > 0 else float("inf")
                ),
            }
    return best


def run_bench(
    quick: bool = False, seed: int = 7, repeats: int = 3
) -> Dict[str, object]:
    """Run the suite with both engines; return the comparison record.

    The legacy (seed) engine is measured first for every case, then the
    current engine, so both numbers come from the same process on the
    same hardware and the recorded speedup is apples-to-apples.
    """
    cases = []
    for case in bench_suite(quick=quick):
        legacy = _measure(LegacyJumpEngine, case, seed, repeats=repeats)
        current = _measure(JumpEngine, case, seed, repeats=repeats)
        cases.append(
            {
                "case": case.case_id,
                "protocol": case.protocol_name,
                "n": case.num_agents,
                "max_events": case.max_events,
                "seed": seed,
                "legacy": legacy,
                "current": current,
                "speedup": (
                    current["events_per_sec"] / legacy["events_per_sec"]
                ),
            }
        )
    scheduler_cases = [
        _measure_scheduler_case(case, seed, repeats=repeats)
        for case in scheduler_bench_suite(quick=quick)
    ]
    # Imported here: the batch kernel is optional machinery the scalar
    # bench must not pay for at import time.
    from ..core.batch import BatchEngine

    backend_cases = []
    for case in backend_bench_suite(quick=quick):
        scalar = _measure(JumpEngine, case, seed, repeats=repeats)
        batch = _measure(BatchEngine, case, seed, repeats=repeats)
        backend_cases.append(
            {
                "case": case.case_id,
                "protocol": case.protocol_name,
                "n": case.num_agents,
                "max_events": case.max_events,
                "seed": seed,
                "scalar": scalar,
                "batch": batch,
                "batch_vs_scalar": (
                    batch["events_per_sec"] / scalar["events_per_sec"]
                ),
            }
        )
    headline = next(
        (c for c in cases if c["case"] == "ag-n10000"), cases[0]
    )
    return {
        "timestamp": time.strftime("%Y%m%dT%H%M%S"),
        "quick": quick,
        "repeats": repeats,
        "cases": cases,
        "scheduler_cases": scheduler_cases,
        "backend_cases": backend_cases,
        "headline": {
            "case": headline["case"],
            "legacy_events_per_sec": headline["legacy"]["events_per_sec"],
            "current_events_per_sec": headline["current"]["events_per_sec"],
            "speedup": headline["speedup"],
        },
    }


def check_speedup_floors(
    record: Dict[str, object], floors: Dict[str, float]
) -> None:
    """Fail if any case's speedup regressed below its committed floor.

    ``floors`` maps case ids to minimum acceptable speedups.  Engine
    cases gate ``speedup`` (current vs the frozen seed engine);
    scheduler cases (``tree-biased-*``, ``tree-epoch-*``) gate
    ``weighted_vs_rejection`` — the weighted fast path against the
    rejection reference running the identical step distribution, which
    is the ratio a fast-path regression would erode.  Backend cases
    (``*-np``) gate ``batch_vs_scalar`` — the numpy batch kernel
    against the tuned scalar engine on the same case; their committed
    floors sit below 1.0 (honest measured values).  Raises
    :class:`~repro.exceptions.SimulationError` on an unknown case id or
    a floor violation — the CI gate.
    """
    by_id: Dict[str, Tuple[str, float]] = {
        case["case"]: ("speedup vs frozen seed engine", case["speedup"])
        for case in record["cases"]
    }
    for case in record.get("scheduler_cases", ()):
        by_id[case["case"]] = (
            "weighted vs rejection", case["weighted_vs_rejection"]
        )
    for case in record.get("backend_cases", ()):
        by_id[case["case"]] = (
            "batch vs scalar", case["batch_vs_scalar"]
        )
    for case_id, floor in floors.items():
        entry = by_id.get(case_id)
        if entry is None:
            raise SimulationError(
                f"speedup floor names unknown case {case_id!r}; "
                f"suite has {sorted(by_id)}"
            )
        metric, speedup = entry
        if speedup < floor:
            raise SimulationError(
                f"{case_id}: {metric} speedup {speedup:.2f}x is below "
                f"the committed floor {floor:.2f}x"
            )


def bench_ratios(record: Dict[str, object]) -> Dict[str, Tuple[str, float, float]]:
    """Per-case ``(metric name, ratio, current events/s)`` of one record.

    Engine cases report their speedup over the frozen seed engine,
    scheduler cases the weighted-over-rejection ratio.  Both are
    measured within one process, which is what makes them comparable
    across machines and CI runners.
    """
    ratios: Dict[str, Tuple[str, float, float]] = {}
    for case in record["cases"]:
        ratios[case["case"]] = (
            "speedup",
            case["speedup"],
            case["current"]["events_per_sec"],
        )
    for case in record.get("scheduler_cases", ()):
        ratios[case["case"]] = (
            "weighted_vs_rejection",
            case["weighted_vs_rejection"],
            case["weighted"]["events_per_sec"],
        )
    for case in record.get("backend_cases", ()):
        ratios[case["case"]] = (
            "batch_vs_scalar",
            case["batch_vs_scalar"],
            case["batch"]["events_per_sec"],
        )
    return ratios


def load_bench(path: str) -> Dict[str, object]:
    """Read a committed ``BENCH_*.json`` record."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_bench(
    record: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.15,
) -> List[str]:
    """Diff a fresh record against the committed baseline record.

    Returns the human-readable comparison lines and raises
    :class:`~repro.exceptions.SimulationError` when any case's
    machine-relative ratio regressed more than ``tolerance`` below the
    baseline's — the CI trend gate.  Raw events/s are reported for
    context only: they do not transfer between machines, whereas each
    ratio's numerator and denominator were measured in one process.
    Cases present in only one record are reported but never fail the
    gate (the suite may grow).
    """
    current = bench_ratios(record)
    base = bench_ratios(baseline)
    lines: List[str] = []
    failures: List[str] = []
    for case_id in sorted(set(current) | set(base)):
        if case_id not in current:
            lines.append(f"{case_id:<18} missing from this run (baseline only)")
            continue
        metric, ratio, eps = current[case_id]
        if case_id not in base:
            lines.append(
                f"{case_id:<18} {metric} {ratio:6.2f}x (new case, "
                f"{eps:,.0f} ev/s)"
            )
            continue
        _, base_ratio, base_eps = base[case_id]
        drift = ratio / base_ratio - 1.0
        lines.append(
            f"{case_id:<18} {metric} {base_ratio:6.2f}x -> {ratio:6.2f}x "
            f"({drift:+.1%}; {base_eps:,.0f} -> {eps:,.0f} ev/s raw)"
        )
        if ratio < (1.0 - tolerance) * base_ratio:
            failures.append(
                f"{case_id}: {metric} {ratio:.2f}x regressed more than "
                f"{tolerance:.0%} below the baseline {base_ratio:.2f}x"
            )
    if failures:
        raise SimulationError(
            "bench trend regression vs baseline "
            f"{baseline.get('timestamp', '?')}:\n  " + "\n  ".join(failures)
        )
    return lines


_HISTORY_FIELDS = (
    "timestamp", "case", "metric", "backend", "ratio", "events_per_sec",
    "reference_events_per_sec",
)


def _migrate_bench_history(path: str) -> None:
    """Upgrade a pre-backend-column history CSV in place.

    Older CSVs lack the ``backend`` column; every row they hold was a
    scalar-engine measurement, so migration rewrites them with
    ``backend=python`` under the new header.  A current-header (or
    missing/empty) file is left untouched.
    """
    if not (os.path.exists(path) and os.path.getsize(path) > 0):
        return
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) == _HISTORY_FIELDS:
            return
        old_rows = [dict(zip(header, row)) for row in reader]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HISTORY_FIELDS)
        for row in old_rows:
            writer.writerow([
                row.get(field, "python" if field == "backend" else "")
                for field in _HISTORY_FIELDS
            ])


def append_bench_history(record: Dict[str, object], path: str) -> int:
    """Append one record's per-case rows to a ``bench_history.csv``.

    Creates the file (with a header) when missing and migrates an
    old-header file first (see :func:`_migrate_bench_history`); returns
    the number of rows appended.  Rows are labelled per backend:
    engine and scheduler cases are the scalar Python hot paths
    (``python``), backend cases the numpy batch kernel (``numpy``).
    The nightly workflow keeps this CSV in its cache so every run
    extends the same trend, uploads it as an artifact, and renders it
    via :func:`repro.viz.ascii.render_trend_table`.
    """
    _migrate_bench_history(path)
    exists = os.path.exists(path) and os.path.getsize(path) > 0
    rows = 0
    with open(path, "a", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        if not exists:
            writer.writerow(_HISTORY_FIELDS)
        timestamp = record["timestamp"]
        for case in record["cases"]:
            writer.writerow([
                timestamp, case["case"], "speedup", "python",
                f"{case['speedup']:.4f}",
                f"{case['current']['events_per_sec']:.1f}",
                f"{case['legacy']['events_per_sec']:.1f}",
            ])
            rows += 1
        for case in record.get("scheduler_cases", ()):
            writer.writerow([
                timestamp, case["case"], "weighted_vs_rejection", "python",
                f"{case['weighted_vs_rejection']:.4f}",
                f"{case['weighted']['events_per_sec']:.1f}",
                f"{case['rejection']['events_per_sec']:.1f}",
            ])
            rows += 1
        for case in record.get("backend_cases", ()):
            writer.writerow([
                timestamp, case["case"], "batch_vs_scalar", "numpy",
                f"{case['batch_vs_scalar']:.4f}",
                f"{case['batch']['events_per_sec']:.1f}",
                f"{case['scalar']['events_per_sec']:.1f}",
            ])
            rows += 1
    return rows


def read_bench_history(path: str) -> List[Dict[str, str]]:
    """Read a ``bench_history.csv`` back as a list of row dicts."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        return list(csv.DictReader(handle))


def write_bench_json(record: Dict[str, object], output_dir: str = ".") -> str:
    """Write the record to ``<output_dir>/BENCH_<timestamp>.json``.

    Atomic (temp/fsync/rename via :mod:`repro._io`): a record under a
    valid ``BENCH_*`` name is always complete, even if the bench run is
    killed mid-write.
    """
    from .._io import atomic_write_json

    path = os.path.join(output_dir, f"BENCH_{record['timestamp']}.json")
    atomic_write_json(path, record, indent=2, sort_keys=False)
    return path


def instrument_bench(
    quick: bool = True, seed: int = 7, backend: str = "python"
) -> Dict[str, object]:
    """Run the engine suite once per case with counters attached.

    One instrumented run per :func:`bench_suite` case (no timing — the
    counters, not the wall clock, are the measurement): each entry
    reports the raw counter bag plus the derived ratios from
    :meth:`repro.obs.Instrumentation.derived`.  With the default
    ``backend="python"`` the scalar :class:`JumpEngine` runs and
    ``line-m4`` is the headline: its ``proposals_per_pool_draw`` and
    ``sprint_share`` are the ROADMAP's residual-cost answer for the
    hybrid proposal/Fenwick sampler.  With ``backend="numpy"`` the
    engines are built through :func:`~repro.core.engine.build_engine`
    (so cases route onto the batch kernel where supported) and the
    batch-level counters — ``events_per_batch_refill`` ("events per
    Python touch") and the refill/confirm rates — are the measurement.
    """
    from ..core.engine import build_engine
    from ..obs import Instrumentation

    cases = []
    for case in bench_suite(quick=quick):
        protocol, start = case.build()
        instr = Instrumentation()
        if backend == "python":
            engine = JumpEngine(
                protocol, start, np.random.default_rng(seed),
                instrumentation=instr,
            )
            engine_name = "jump"
        else:
            engine, engine_name = build_engine(
                protocol, start, seed=seed, engine="jump",
                instrumentation=instr, backend=backend,
            )
        silent = engine.run(max_events=case.max_events)
        entry = {
            "case": case.case_id,
            "protocol": case.protocol_name,
            "n": case.num_agents,
            "max_events": case.max_events,
            "seed": seed,
            "backend": backend,
            "engine": engine_name,
            "silent": silent,
        }
        entry.update(instr.to_dict())
        cases.append(entry)
    return {"quick": quick, "seed": seed, "backend": backend, "cases": cases}


def render_instrument(record: Dict[str, object]) -> str:
    """Fixed-width table of an :func:`instrument_bench` record.

    Column set follows the backend: the scalar engines' sampler ratios
    for ``python``, the batch kernel's amortisation ratios for
    ``numpy``.
    """

    def ratio(entry, name, fmt="{:.2f}"):
        value = entry["derived"].get(name)
        return fmt.format(value) if value is not None else "-"

    if record.get("backend", "python") == "numpy":
        lines = [
            f"{'case':<16} {'engine':>10} {'events':>8} {'ev/refill':>10} "
            f"{'confirm':>8} {'k2':>6} {'skips/ev':>9}"
        ]
        for entry in record["cases"]:
            lines.append(
                f"{entry['case']:<16} {entry.get('engine', '-'):>10} "
                f"{entry['counters'].get('events', 0):>8} "
                f"{ratio(entry, 'events_per_batch_refill', '{:.1f}'):>10} "
                f"{ratio(entry, 'batch_confirm_acceptance', '{:.0%}'):>8} "
                f"{ratio(entry, 'batch_k2_share', '{:.0%}'):>6} "
                f"{ratio(entry, 'skip_draws_per_event'):>9}"
            )
        headline = next(
            (
                c for c in record["cases"]
                if c["case"] == "line-m4" and c.get("engine") == "batch"
            ),
            None,
        )
        if headline is not None:
            derived = headline["derived"]
            lines.append(
                "line-m4 batch amortisation: "
                f"{derived.get('events_per_batch_refill', float('nan')):.1f} "
                "events per Python touch (vectorised refill), "
                f"{derived.get('batch_confirm_acceptance', 0.0):.0%} "
                "confirm acceptance"
            )
        return "\n".join(lines)

    lines = [
        f"{'case':<16} {'events':>8} {'skips/ev':>9} {'raws/ev':>8} "
        f"{'props/pool':>10} {'sprint':>7} {'fenwick':>8}"
    ]
    for entry in record["cases"]:
        lines.append(
            f"{entry['case']:<16} {entry['counters'].get('events', 0):>8} "
            f"{ratio(entry, 'skip_draws_per_event'):>9} "
            f"{ratio(entry, 'raw_draws_per_event'):>8} "
            f"{ratio(entry, 'proposals_per_pool_draw'):>10} "
            f"{ratio(entry, 'sprint_share', '{:.0%}'):>7} "
            f"{ratio(entry, 'fenwick_share', '{:.0%}'):>8}"
        )
    headline = next(
        (c for c in record["cases"] if c["case"] == "line-m4"), None
    )
    if headline is not None:
        derived = headline["derived"]
        lines.append(
            "line-m4 residual cost: "
            f"{derived.get('proposals_per_pool_draw', float('nan')):.2f} "
            "proposals per pool draw, "
            f"{derived.get('sprint_share', 0.0):.0%} of pool events on "
            "the sprint shortcut"
        )
    return "\n".join(lines)


def render_bench(record: Dict[str, object]) -> str:
    """Fixed-width text table of one benchmark record."""
    lines = [
        f"{'case':<16} {'n':>6} {'events':>8} "
        f"{'legacy ev/s':>12} {'current ev/s':>13} {'speedup':>8}"
    ]
    for case in record["cases"]:
        lines.append(
            f"{case['case']:<16} {case['n']:>6} "
            f"{case['current']['events']:>8} "
            f"{case['legacy']['events_per_sec']:>12,.0f} "
            f"{case['current']['events_per_sec']:>13,.0f} "
            f"{case['speedup']:>7.2f}x"
        )
    for case in record.get("scheduler_cases", ()):
        lines.append(
            f"{case['case']:<16} {case['n']:>6} "
            f"{case['weighted']['events']:>8} "
            f"{case['rejection']['events_per_sec']:>12,.0f} "
            f"{case['weighted']['events_per_sec']:>13,.0f} "
            f"{case['weighted_vs_rejection']:>7.2f}x"
            f"   [{case['scheduler']}; uniform "
            f"{case['uniform']['events_per_sec']:,.0f} ev/s]"
        )
    for case in record.get("backend_cases", ()):
        lines.append(
            f"{case['case']:<16} {case['n']:>6} "
            f"{case['batch']['events']:>8} "
            f"{case['scalar']['events_per_sec']:>12,.0f} "
            f"{case['batch']['events_per_sec']:>13,.0f} "
            f"{case['batch_vs_scalar']:>7.2f}x"
            "   [numpy batch vs tuned scalar]"
        )
    head = record["headline"]
    lines.append(
        f"headline [{head['case']}]: "
        f"{head['legacy_events_per_sec']:,.0f} -> "
        f"{head['current_events_per_sec']:,.0f} events/s "
        f"({head['speedup']:.2f}x)"
    )
    return "\n".join(lines)
