"""Resumable sharded ensembles over the scenario campaign catalog.

The orchestration layer for very large (10⁵+ run) fault-tolerance
studies: shard the seeded runs, execute each shard under worker
supervision, persist shards atomically with checksums, stream the
records through online reducers, and resume exactly the missing gap
after any crash.  See :mod:`repro.ensemble.runner` for the mechanics.
"""

from .manifest import (
    atomic_write_json,
    create_manifest,
    file_sha256,
    load_manifest,
    save_manifest,
    shard_path,
)
from .reducers import EnsembleAggregates, P2Quantile, RecoveryTable, Welford
from .runner import ensemble_status, run_ensemble, run_record

__all__ = [
    "EnsembleAggregates",
    "P2Quantile",
    "RecoveryTable",
    "Welford",
    "atomic_write_json",
    "create_manifest",
    "ensemble_status",
    "file_sha256",
    "load_manifest",
    "run_ensemble",
    "run_record",
    "save_manifest",
    "shard_path",
]
