"""Resumable sharded ensembles over the scenario campaign catalog.

The orchestration layer for very large (10⁵+ run) fault-tolerance
studies: shard the seeded runs, execute each shard under worker
supervision, persist shards atomically with checksums and exclusive
commit markers, stream the records through online reducers, and resume
exactly the missing gap after any crash.  Cooperative mode
(:func:`~repro.ensemble.runner.join_ensemble`) lets N processes — on
any machines sharing the ensemble directory's filesystem — drain one
manifest concurrently through crash-tolerant shard leases
(:mod:`repro.ensemble.lease`).  See :mod:`repro.ensemble.runner` for
the mechanics.
"""

from .lease import (
    Lease,
    LeaseHeartbeat,
    LeaseManager,
    lease_path,
    list_leases,
    worker_identity,
)
from .manifest import (
    atomic_write_json,
    commit_shard,
    create_manifest,
    create_manifest_exclusive,
    done_marker_path,
    file_sha256,
    load_manifest,
    read_done_marker,
    reconcile_manifest,
    save_manifest,
    shard_path,
    write_done_marker,
)
from .reducers import (
    EnsembleAggregates,
    P2Quantile,
    RecoveryTable,
    SurvivalCurve,
    Welford,
)
from .runner import (
    CooperativeWorker,
    ensemble_status,
    join_ensemble,
    run_ensemble,
    run_record,
)

__all__ = [
    "CooperativeWorker",
    "EnsembleAggregates",
    "Lease",
    "LeaseHeartbeat",
    "LeaseManager",
    "P2Quantile",
    "RecoveryTable",
    "SurvivalCurve",
    "Welford",
    "atomic_write_json",
    "commit_shard",
    "create_manifest",
    "create_manifest_exclusive",
    "done_marker_path",
    "ensemble_status",
    "file_sha256",
    "join_ensemble",
    "lease_path",
    "list_leases",
    "load_manifest",
    "read_done_marker",
    "reconcile_manifest",
    "run_ensemble",
    "run_record",
    "save_manifest",
    "shard_path",
    "worker_identity",
    "write_done_marker",
]
