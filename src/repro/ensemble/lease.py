"""Crash-tolerant shard leases for cooperative multi-worker ensembles.

N independent ``repro ensemble join`` processes — different machines
included, as long as they share the ensemble directory's filesystem —
drain one manifest concurrently.  Coordination is a per-shard *lease
file* (``shard-<index>.lease``):

* **Claim.**  A pending shard is claimed by creating its lease file
  with ``O_CREAT|O_EXCL`` — the one filesystem primitive that is
  atomic-and-exclusive even on NFS-style shared mounts.  The lease
  carries the claimant's identity (host/pid/uuid), a monotonic
  *fencing token*, and a deadline ``now + ttl``.
* **Heartbeat.**  The owner renews by atomically rewriting the lease
  with a fresh deadline (same token); :class:`LeaseHeartbeat` does
  this from a daemon thread at ``ttl/3`` while the shard computes.
* **Expiry and steal.**  A lease whose deadline has passed is fair
  game: a reclaimer rewrites it with ``token + 1`` and re-reads to
  confirm it won (last-writer-wins with read-back).  The previous
  owner's next renewal sees the foreign owner/token, returns ``False``,
  and the worker abandons the shard gracefully.
* **Correctness does not depend on mutual exclusion.**  Shards are
  pure functions of ``(seed, index)``, so even if two workers briefly
  both believe they own a shard, both compute byte-identical files and
  the commit path (:func:`repro.ensemble.manifest.commit_shard`) is
  idempotent: sha-verified content, first ``shard-<i>.done`` marker
  wins.  Leases exist to avoid *duplicate work*, not to guard
  integrity — which is what makes the protocol safe under arbitrary
  clock skew (bounded only by: skew much smaller than the TTL keeps
  duplicate computation rare).

Every lease event is reported through the observer seam with the
vocabulary of :mod:`repro.obs.trace`: ``lease_claim``, ``lease_renew``,
``lease_expire``, ``lease_steal``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .._io import atomic_write_text
from ..exceptions import ExperimentError

__all__ = [
    "Lease",
    "LeaseHeartbeat",
    "LeaseManager",
    "lease_path",
    "list_leases",
    "worker_identity",
]

LEASE_VERSION = 1


def worker_identity() -> str:
    """A globally unique worker id: ``<host>-<pid>-<uuid8>``.

    The uuid component matters: pids recycle, and a respawned worker on
    the same host must not be able to renew its predecessor's leases.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def lease_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, f"shard-{index:05d}.lease")


@dataclass
class Lease:
    """One worker's live claim on one shard."""

    shard: int
    owner: str
    token: int
    deadline: float
    path: str


def _read_lease(path: str) -> Optional[Dict]:
    """The lease file's payload, or ``None`` if absent or unreadable.

    An unreadable lease (torn exclusive create from a worker killed
    mid-write) is indistinguishable from an expired one to claimants —
    both are stealable — so corruption can only ever *shorten* a dead
    worker's hold on a shard, never wedge it.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


class LeaseManager:
    """Claim / renew / release shard leases in one ensemble directory.

    ``clock`` is injectable (defaults to wall-clock ``time.time`` —
    deadlines must be comparable *across machines*, so monotonic clocks
    are out) which is also what makes lease schedules deterministic in
    tests.  ``observer(kind, fields)`` receives the lease lifecycle
    events; observer failures never affect leasing.
    """

    def __init__(
        self,
        out_dir: str,
        owner: Optional[str] = None,
        ttl: float = 30.0,
        clock: Callable[[], float] = time.time,
        observer: Optional[Callable[[str, Dict], None]] = None,
    ) -> None:
        if ttl <= 0:
            raise ExperimentError(f"lease ttl must be positive, got {ttl}")
        self.out_dir = out_dir
        self.owner = owner or worker_identity()
        self.ttl = float(ttl)
        self.clock = clock
        self.observer = observer

    def _emit(self, kind: str, **fields) -> None:
        if self.observer is None:
            return
        try:
            self.observer(kind, fields)
        except Exception:
            pass

    def _payload(self, index: int, token: int, deadline: float) -> Dict:
        return {
            "version": LEASE_VERSION,
            "shard": index,
            "owner": self.owner,
            "token": token,
            "deadline": deadline,
            "ttl": self.ttl,
        }

    def peek(self, index: int) -> Optional[Dict]:
        """The shard's current lease payload, unvalidated."""
        return _read_lease(lease_path(self.out_dir, index))

    def claim(self, index: int) -> Optional[Lease]:
        """Try to claim one shard; ``None`` on live contention.

        A fresh claim starts at fencing token 1; reclaiming an expired
        (or unreadable) lease increments the token it found, so tokens
        are monotone along each shard's ownership history.
        """
        path = lease_path(self.out_dir, index)
        now = self.clock()
        deadline = now + self.ttl
        try:
            descriptor = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return self._reclaim(path, index, now)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(self._payload(index, 1, deadline), handle)
            handle.write("\n")
            handle.flush()
        self._emit("lease_claim", shard=index, owner=self.owner, token=1)
        return Lease(index, self.owner, 1, deadline, path)

    def _reclaim(self, path: str, index: int, now: float) -> Optional[Lease]:
        """Steal an expired/corrupt lease; ``None`` if live or outraced."""
        current = _read_lease(path)
        if current is None:
            if not os.path.exists(path):
                # Released between our O_EXCL failure and the read; the
                # caller's next attempt will take the fresh-claim path.
                return None
            current = {"owner": "?", "token": 0, "deadline": float("-inf")}
        held_by = str(current.get("owner", "?"))
        held_token = int(current.get("token", 0) or 0)
        held_deadline = float(current.get("deadline", 0.0) or 0.0)
        expired = held_deadline <= now
        if not expired and held_by != self.owner:
            return None  # live contention — back off and try elsewhere
        if expired:
            self._emit(
                "lease_expire", shard=index, owner=held_by, token=held_token,
            )
        token = held_token + 1
        deadline = now + self.ttl
        atomic_write_text(
            path,
            json.dumps(self._payload(index, token, deadline), sort_keys=True)
            + "\n",
            suffix=".lease",
        )
        readback = _read_lease(path)
        if (
            readback is None
            or readback.get("owner") != self.owner
            or int(readback.get("token", -1) or -1) != token
        ):
            return None  # another stealer wrote after us — they win
        if held_by == self.owner:
            # Re-acquiring our own lease (fresh handle, bumped token) is
            # a claim, not a steal — ownership never left this worker.
            self._emit(
                "lease_claim", shard=index, owner=self.owner, token=token,
            )
        else:
            self._emit(
                "lease_steal",
                shard=index, owner=self.owner, token=token,
                previous_owner=held_by,
            )
        return Lease(index, self.owner, token, deadline, path)

    def renew(self, lease: Lease) -> bool:
        """Extend the deadline; ``False`` means the lease was lost.

        A ``False`` return is the fencing signal: the on-disk lease now
        carries a foreign owner or a higher token, so this worker must
        abandon the shard (its eventual commit would be byte-identical
        anyway, but abandoning avoids duplicate work and keeps the
        ownership story in the trace truthful).
        """
        current = _read_lease(lease.path)
        if (
            current is None
            or current.get("owner") != lease.owner
            or int(current.get("token", -1) or -1) != lease.token
        ):
            return False
        deadline = self.clock() + self.ttl
        atomic_write_text(
            lease.path,
            json.dumps(
                self._payload(lease.shard, lease.token, deadline),
                sort_keys=True,
            )
            + "\n",
            suffix=".lease",
        )
        readback = _read_lease(lease.path)
        if (
            readback is None
            or readback.get("owner") != lease.owner
            or int(readback.get("token", -1) or -1) != lease.token
        ):
            return False
        lease.deadline = deadline
        self._emit(
            "lease_renew",
            shard=lease.shard, owner=lease.owner, token=lease.token,
        )
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease if still ours; never raises."""
        current = _read_lease(lease.path)
        if (
            current is not None
            and current.get("owner") == lease.owner
            and int(current.get("token", -1) or -1) == lease.token
        ):
            try:
                os.unlink(lease.path)
            except OSError:
                pass


def list_leases(
    out_dir: str, clock: Callable[[], float] = time.time
) -> List[Dict]:
    """All lease files in a directory, annotated with liveness.

    Feeds ``repro ensemble status``: unexpired rows are the live
    workers (one heartbeat each), expired rows are claims whose owner
    died and whose shards are about to be reclaimed.
    """
    now = clock()
    rows: List[Dict] = []
    try:
        names = sorted(os.listdir(out_dir))
    except OSError:
        return rows
    for name in names:
        if not name.endswith(".lease"):
            continue
        payload = _read_lease(os.path.join(out_dir, name))
        if payload is None:
            continue
        deadline = float(payload.get("deadline", 0.0) or 0.0)
        rows.append(
            {
                "shard": int(payload.get("shard", -1)),
                "owner": str(payload.get("owner", "?")),
                "token": int(payload.get("token", 0) or 0),
                "expires_in_s": deadline - now,
                "expired": deadline <= now,
            }
        )
    return rows


class LeaseHeartbeat:
    """Daemon thread renewing one lease at a fraction of its TTL.

    ``lost`` is set (and renewal stops) the moment a renew fails —
    the worker checks it after computing and abandons the shard
    instead of committing under a stolen lease.
    """

    def __init__(
        self,
        manager: LeaseManager,
        lease: Lease,
        interval: Optional[float] = None,
    ) -> None:
        self.manager = manager
        self.lease = lease
        self.interval = (
            interval if interval is not None else max(manager.ttl / 3.0, 0.05)
        )
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            name=f"lease-heartbeat-{lease.shard}",
            daemon=True,
        )

    def start(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                renewed = self.manager.renew(self.lease)
            except Exception:
                renewed = False
            if not renewed:
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=max(self.interval * 4, 1.0))
