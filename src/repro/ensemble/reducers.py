"""Online (single-pass, O(1)-memory) reducers for ensemble aggregation.

The ensemble runner streams 10⁵+ run records shard-by-shard; nothing
here ever holds the observations themselves.  Four primitives:

* :class:`Welford` — numerically stable running mean/variance/extrema;
* :class:`P2Quantile` — the Jain–Chlamtac P² estimator: a quantile
  approximation from five markers, no stored samples;
* :class:`SurvivalCurve` — a fixed-grid empirical survival function
  (exceedance counts per grid point), the tail view the paper's
  silence-time claims need;
* :class:`RecoveryTable` — per-fault-label recovery statistics built
  from each record's phase timeline.

:class:`EnsembleAggregates` composes them into the shape
``aggregates.json`` serialises.  Every reducer is a deterministic fold:
feeding the same records in the same order always produces bit-equal
state, which is what makes a resumed ensemble's aggregate file
byte-identical to an uninterrupted run's (the runner always streams
shards in index order).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "EnsembleAggregates",
    "P2Quantile",
    "RecoveryTable",
    "SurvivalCurve",
    "Welford",
]


class Welford:
    """Running count / mean / variance / extrema (Welford's method)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Tracks the ``p``-quantile with five markers whose heights are
    adjusted by parabolic interpolation — O(1) memory and a
    deterministic fold over the observation stream.  Exact for the
    first five observations; an estimate afterwards.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Nudge the three middle markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, q = self._positions, self._heights
        return q[i] + step / (h[i + 1] - h[i - 1]) * (
            (h[i] - h[i - 1] + step) * (q[i + 1] - q[i]) / (h[i + 1] - h[i])
            + (h[i + 1] - h[i] - step) * (q[i] - q[i - 1]) / (h[i] - h[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, q = self._positions, self._heights
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (h[j] - h[i])

    @property
    def value(self) -> Optional[float]:
        """Current quantile estimate (``None`` before any observation)."""
        if not self._heights:
            return None
        if len(self._heights) < 5:
            # Exact small-sample quantile (nearest-rank on the sorted
            # prefix) until the marker machinery has five observations.
            rank = max(
                0, min(len(self._heights) - 1,
                       int(math.ceil(self.p * len(self._heights))) - 1)
            )
            return self._heights[rank]
        return self._heights[2]


class SurvivalCurve:
    """Fixed-grid empirical survival function, folded one value at a time.

    For each grid point ``t`` the curve reports how many observations
    exceeded it — ``exceed[i] = #{T : T > grid[i]}`` — and the fraction
    ``survival[i] = exceed[i] / count``, the empirical ``P(T > t)``.
    The quantile battery answers "what time covers 99% of recoveries";
    the survival curve answers the complementary tail question the
    paper's silence-time theorems are phrased in: "what fraction of
    runs is still unrecovered at time t".

    The grid is *fixed at construction* (default: 0 plus a geometric
    ladder of exact dyadics, ``0.25 · 2^k`` up to ~5·10⁵, spanning
    every recovery parallel time these protocols produce) so the fold
    is deterministic and O(1) memory: feeding the same values in any
    count of shards or resumes yields bit-equal output, preserving the
    byte-identical ``aggregates.json`` contract.  Updates are O(log
    grid) (one bisect into a per-bucket histogram); the exceedance
    suffix sums are materialised only in :meth:`to_dict`.
    """

    DEFAULT_GRID: Tuple[float, ...] = (0.0,) + tuple(
        0.25 * 2.0 ** k for k in range(21)
    )

    def __init__(self, grid: Optional[Sequence[float]] = None) -> None:
        points = tuple(
            float(g) for g in (self.DEFAULT_GRID if grid is None else grid)
        )
        if not points:
            raise ValueError("survival grid must not be empty")
        if any(b <= a for a, b in zip(points, points[1:])):
            raise ValueError("survival grid must be strictly increasing")
        self.grid = points
        self.count = 0
        # _buckets[j]: observations with exactly j grid points below them.
        self._buckets = [0] * (len(points) + 1)

    def update(self, value: float) -> None:
        self.count += 1
        self._buckets[bisect_left(self.grid, float(value))] += 1

    def to_dict(self) -> Dict:
        exceed: List[int] = []
        remaining = self.count
        for bucket in self._buckets[:-1]:
            remaining -= bucket
            exceed.append(remaining)
        return {
            "count": self.count,
            "grid": list(self.grid),
            "exceed": exceed,
            "survival": [
                (e / self.count if self.count else 0.0) for e in exceed
            ],
        }


class _Distribution:
    """Welford + a fixed battery of P² quantiles over one statistic."""

    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self) -> None:
        self.welford = Welford()
        self.quantiles = [P2Quantile(p) for p in self.QUANTILES]

    def update(self, value: float) -> None:
        self.welford.update(value)
        for quantile in self.quantiles:
            quantile.update(value)

    def to_dict(self) -> Dict:
        data = self.welford.to_dict()
        for quantile in self.quantiles:
            data[f"p{int(quantile.p * 100)}"] = quantile.value
        return data


class RecoveryTable:
    """Per-fault-label recovery statistics from record phase timelines.

    Mirrors :meth:`repro.scenarios.engine.ScenarioResult.recovery_pairs`
    on the plain-dict records the ensemble shards store: each fault
    phase pairs with the next run phase; consecutive faults share one
    recovery.  Tracks, per fault label, how often recovery re-silenced
    and the distribution of recovery parallel time.
    """

    def __init__(self) -> None:
        self._rows: Dict[str, Dict] = {}

    def _row(self, label: str) -> Dict:
        if label not in self._rows:
            self._rows[label] = {
                "count": 0,
                "recovered": 0,
                "unrecovered": 0,
                "parallel_time": _Distribution(),
                "survival": SurvivalCurve(),
            }
        return self._rows[label]

    def update(self, phases: Sequence[Dict]) -> None:
        pending: List[Dict] = []
        for phase in phases:
            if phase["kind"] == "fault":
                pending.append(phase)
            elif pending:
                for fault in pending:
                    row = self._row(fault["label"])
                    row["count"] += 1
                    if phase["silent"]:
                        row["recovered"] += 1
                        recovery_time = (
                            phase["interactions"] / phase["num_agents"]
                        )
                        row["parallel_time"].update(recovery_time)
                        row["survival"].update(recovery_time)
                    else:
                        row["unrecovered"] += 1
                pending = []
        for fault in pending:
            row = self._row(fault["label"])
            row["count"] += 1
            row["unrecovered"] += 1

    def to_dict(self) -> Dict:
        return {
            label: {
                "count": row["count"],
                "recovered": row["recovered"],
                "unrecovered": row["unrecovered"],
                "parallel_time": row["parallel_time"].to_dict(),
                "survival": row["survival"].to_dict(),
            }
            for label, row in sorted(self._rows.items())
        }


class EnsembleAggregates:
    """The full streaming fold over an ensemble's run records.

    ``update`` consumes one shard record (a plain dict — either a run
    record or a quarantined-job record); ``to_dict`` emits the
    deterministic, wall-clock-free aggregate that ``aggregates.json``
    stores.  Records must be fed in global run order for bit-stable
    output, which the runner guarantees by streaming shards by index.
    """

    def __init__(self) -> None:
        self.runs = 0
        self.failed = 0
        self.recovered_all = 0
        self.events = _Distribution()
        self.interactions = _Distribution()
        self.parallel_time = _Distribution()
        self.recovery = RecoveryTable()

    def update(self, record: Dict) -> None:
        if record.get("failed"):
            self.failed += 1
            return
        self.runs += 1
        if record["recovered_all"]:
            self.recovered_all += 1
        self.events.update(record["total_events"])
        self.interactions.update(record["total_interactions"])
        self.parallel_time.update(record["total_parallel_time"])
        self.recovery.update(record["phases"])

    def to_dict(self) -> Dict:
        completed = self.runs
        return {
            "runs": completed,
            "failed_jobs": self.failed,
            "recovered_all": {
                "count": self.recovered_all,
                "fraction": (
                    self.recovered_all / completed if completed else 0.0
                ),
            },
            "total_events": self.events.to_dict(),
            "total_interactions": self.interactions.to_dict(),
            "parallel_time": self.parallel_time.to_dict(),
            "recovery": self.recovery.to_dict(),
        }
