"""Ensemble manifests and crash-safe JSON persistence.

An ensemble directory is self-describing:

* ``manifest.json`` — the plan: campaign id, scale, root seed, total
  run count, shard size, and one entry per shard (``pending`` or
  ``done``, with the SHA-256 of the finished shard file);
* ``shard-<index>.json`` — one file per shard of run records;
* ``aggregates.json`` — the streamed fold over all shards.

Every file is written atomically (temp file in the same directory,
flush + fsync, ``os.replace``), so a crash — including SIGKILL — can
never leave a half-written file under a valid name: a file either has
its complete content or does not exist.  The manifest is only updated
*after* its shard file is durably in place, so ``done`` + matching
checksum implies the shard is trustworthy; anything else is recomputed
on resume.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from .._io import atomic_write_json
from ..exceptions import ExperimentError

__all__ = [
    "MANIFEST_NAME",
    "atomic_write_json",
    "create_manifest",
    "file_sha256",
    "load_json",
    "load_manifest",
    "save_manifest",
    "shard_path",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def load_json(path: str) -> Dict:
    """Read one JSON file; corrupt content raises ``ValueError``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def file_sha256(path: str) -> str:
    """Hex SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def shard_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, f"shard-{index:05d}.json")


def create_manifest(
    campaign_id: str,
    scale: str,
    seed: int,
    total_runs: int,
    shard_size: int,
    default_max_events: Optional[int],
) -> Dict:
    """Build a fresh manifest dict (all shards pending)."""
    if total_runs < 1:
        raise ExperimentError(f"total_runs must be >= 1, got {total_runs}")
    if shard_size < 1:
        raise ExperimentError(f"shard_size must be >= 1, got {shard_size}")
    shards: List[Dict] = []
    start = 0
    index = 0
    while start < total_runs:
        stop = min(start + shard_size, total_runs)
        shards.append(
            {
                "index": index,
                "start": start,
                "stop": stop,
                "status": "pending",
                "sha256": None,
            }
        )
        start = stop
        index += 1
    return {
        "version": MANIFEST_VERSION,
        "campaign": campaign_id,
        "scale": scale,
        "seed": seed,
        "total_runs": total_runs,
        "shard_size": shard_size,
        "default_max_events": default_max_events,
        "shards": shards,
    }


def save_manifest(out_dir: str, manifest: Dict) -> None:
    atomic_write_json(os.path.join(out_dir, MANIFEST_NAME), manifest)


def load_manifest(out_dir: str) -> Dict:
    """Load and structurally validate an ensemble manifest."""
    path = os.path.join(out_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        raise ExperimentError(
            f"no ensemble manifest at {path} — run without --resume to "
            "start a fresh ensemble"
        )
    try:
        manifest = load_json(path)
    except ValueError as exc:
        raise ExperimentError(
            f"ensemble manifest {path} is corrupt: {exc}"
        ) from exc
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise ExperimentError(
            f"ensemble manifest version {version!r} is not supported "
            f"(expected {MANIFEST_VERSION})"
        )
    required = (
        "campaign", "scale", "seed", "total_runs", "shard_size", "shards",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise ExperimentError(
            f"ensemble manifest {path} is missing fields: {missing}"
        )
    covered = 0
    for position, shard in enumerate(manifest["shards"]):
        if shard.get("index") != position or shard.get("start") != covered:
            raise ExperimentError(
                f"ensemble manifest {path} has an inconsistent shard "
                f"table at position {position}"
            )
        if shard.get("stop", 0) <= shard["start"]:
            raise ExperimentError(
                f"ensemble manifest {path} shard {position} is empty"
            )
        covered = shard["stop"]
    if covered != manifest["total_runs"]:
        raise ExperimentError(
            f"ensemble manifest {path} shards cover {covered} runs, "
            f"expected {manifest['total_runs']}"
        )
    return manifest
