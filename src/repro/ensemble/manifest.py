"""Ensemble manifests and crash-safe JSON persistence.

An ensemble directory is self-describing:

* ``manifest.json`` — the plan: campaign id, scale, root seed, total
  run count, shard size, and one entry per shard (``pending`` or
  ``done``, with the SHA-256 of the finished shard file);
* ``shard-<index>.json`` — one file per shard of run records;
* ``shard-<index>.done`` — the commit marker: the shard file's SHA-256
  (plus, in cooperative mode, the committing worker and its fencing
  token).  Markers are placed with ``O_CREAT|O_EXCL`` *after* the
  shard file is durably in place and checksum-verified, so marker
  presence — not manifest state — is the authoritative commit record;
* ``shard-<index>.lease`` — a live worker's claim on a pending shard
  (:mod:`repro.ensemble.lease`), only meaningful while unexpired;
* ``aggregates.json`` — the streamed fold over all shards.

Every file is written atomically (temp file in the same directory,
flush + fsync, ``os.replace``, directory fsync), so a crash — including
SIGKILL — can never leave a half-written file under a valid name: a
file either has its complete content or does not exist.  Because a
shard is a pure function of ``(seed, index)``, commits are *idempotent
by construction*: any number of workers may compute the same shard and
the bytes are identical, so the first marker wins and every later
commit is a no-op.  The manifest's per-shard statuses are merely a
cached view, rebuilt from the markers by :func:`reconcile_manifest` —
no multi-writer manifest races are possible because cooperative
workers never write it mid-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

from .._io import atomic_write_json, atomic_write_text, fsync_directory
from ..exceptions import ExperimentError

__all__ = [
    "MANIFEST_NAME",
    "atomic_write_json",
    "commit_shard",
    "create_manifest",
    "create_manifest_exclusive",
    "done_marker_path",
    "file_sha256",
    "load_json",
    "load_manifest",
    "read_done_marker",
    "reconcile_manifest",
    "save_manifest",
    "shard_path",
    "write_done_marker",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def load_json(path: str) -> Dict:
    """Read one JSON file; corrupt content raises ``ValueError``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def file_sha256(path: str) -> str:
    """Hex SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def shard_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, f"shard-{index:05d}.json")


def done_marker_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, f"shard-{index:05d}.done")


def read_done_marker(out_dir: str, index: int) -> Optional[Dict]:
    """The shard's commit marker, or ``None`` if absent or unreadable.

    A torn marker (possible only if the committing process died inside
    the exclusive create) reads as ``None`` — the shard is simply
    recomputed, and :func:`reconcile_manifest` clears the debris.
    """
    path = done_marker_path(out_dir, index)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or not payload.get("sha256"):
        return None
    return payload


def write_done_marker(
    out_dir: str,
    index: int,
    sha256: str,
    owner: Optional[str] = None,
    token: Optional[int] = None,
) -> bool:
    """Place the commit marker exclusively; ``False`` if already placed.

    ``O_CREAT|O_EXCL`` makes the *first* committer win even across
    machines on a shared filesystem; a loser's shard bytes are
    identical anyway (shards are pure functions of ``(seed, index)``),
    so losing is not an error.  An unreadable leftover marker is
    cleared and the create retried once.
    """
    payload: Dict = {"index": index, "sha256": sha256}
    if owner is not None:
        payload["owner"] = owner
    if token is not None:
        payload["token"] = token
    text = json.dumps(payload, sort_keys=True) + "\n"
    path = done_marker_path(out_dir, index)
    for attempt in (0, 1):
        try:
            descriptor = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            if attempt == 0 and read_done_marker(out_dir, index) is None:
                # Torn marker from a killed committer: clear and retry.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(os.path.dirname(os.path.abspath(path)))
        return True
    return False


def commit_shard(
    out_dir: str,
    index: int,
    payload: Dict,
    owner: Optional[str] = None,
    token: Optional[int] = None,
) -> Tuple[str, bool]:
    """Idempotent, fenced shard commit; returns ``(sha256, placed)``.

    The payload is serialised exactly as :func:`atomic_write_json`
    would (sorted keys, indent 1, trailing newline) and its SHA-256
    computed *before* touching disk.  If a commit marker already
    exists, its digest must match — two workers computing the same
    shard must produce the same bytes, anything else is a determinism
    bug worth failing loudly on.  Otherwise the shard file is written
    atomically, re-hashed from disk (the checksum-before-marker
    verification), and the marker placed exclusively.  ``placed`` is
    ``False`` when another worker committed first.
    """
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _check(marker: Dict) -> None:
        if marker["sha256"] != digest:
            raise ExperimentError(
                f"shard {index} was already committed with sha256 "
                f"{marker['sha256'][:12]}… but this worker computed "
                f"{digest[:12]}… — shards must be pure functions of "
                "(seed, index); refusing to overwrite"
            )

    existing = read_done_marker(out_dir, index)
    if existing is not None:
        _check(existing)
        return digest, False
    path = shard_path(out_dir, index)
    atomic_write_text(path, text, suffix=".json")
    if file_sha256(path) != digest:
        raise ExperimentError(
            f"shard {index} file {path} did not read back with the "
            "checksum just written — refusing to mark it done"
        )
    if write_done_marker(out_dir, index, digest, owner=owner, token=token):
        return digest, True
    late = read_done_marker(out_dir, index)
    if late is not None:
        _check(late)
    return digest, False


def reconcile_manifest(
    out_dir: str,
    manifest: Dict,
    repair: bool = True,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Rebuild per-shard statuses from commit markers; returns demotions.

    Markers are the commit authority; the manifest's statuses are a
    cache that may be stale (cooperative workers never write the
    manifest mid-run) or wrong (a crash between shard write and
    manifest save).  For every shard: the expected checksum comes from
    its marker, falling back to the manifest entry for pre-marker
    directories; a shard whose file is missing or (with ``verify``)
    fails its checksum goes back to ``pending``.

    ``repair=True`` additionally mutates the directory: corrupt shard
    files are renamed to ``*.corrupt`` (kept for post-mortems), their
    stale markers removed, and markers are backfilled for legacy
    ``done`` entries that predate markers.  ``repair=False`` (the
    ``status`` view) touches nothing on disk.
    """
    demoted = 0
    for shard in manifest["shards"]:
        index = shard["index"]
        marker = read_done_marker(out_dir, index)
        if marker is not None:
            expected = marker["sha256"]
        elif shard["status"] == "done" and shard["sha256"]:
            expected = shard["sha256"]
        else:
            if repair and os.path.exists(done_marker_path(out_dir, index)):
                # Torn marker with no other evidence: clear the debris.
                try:
                    os.unlink(done_marker_path(out_dir, index))
                except OSError:
                    pass
            shard["status"] = "pending"
            shard["sha256"] = None
            continue
        path = shard_path(out_dir, index)
        reason = None
        if not os.path.exists(path):
            reason = "file missing"
        elif verify and file_sha256(path) != expected:
            reason = "checksum mismatch"
        if reason is None:
            shard["status"] = "done"
            shard["sha256"] = expected
            if repair and marker is None:
                write_done_marker(out_dir, index, expected)
            continue
        demoted += 1
        if repair:
            if os.path.exists(path):
                os.replace(path, path + ".corrupt")
            try:
                os.unlink(done_marker_path(out_dir, index))
            except OSError:
                pass
        shard["status"] = "pending"
        shard["sha256"] = None
        if progress:
            progress(
                f"shard {index} is corrupt ({reason}); "
                "quarantined and queued for recompute"
            )
    return demoted


def create_manifest_exclusive(out_dir: str, manifest: Dict) -> bool:
    """Create ``manifest.json`` only if absent; ``False`` when it exists.

    The first of N concurrently launched joiners wins the creation race
    atomically: the manifest is written to a temp file (full content,
    fsynced) and *linked* into place — ``os.link`` fails with
    ``FileExistsError`` if any other joiner got there first, and a
    reader can never observe a torn manifest.  Filesystems without hard
    links fall back to an exclusive create of the complete bytes.
    """
    path = os.path.join(out_dir, MANIFEST_NAME)
    text = json.dumps(manifest, sort_keys=True, indent=1) + "\n"
    descriptor, temp_path = tempfile.mkstemp(
        dir=out_dir, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(temp_path, path)
        except FileExistsError:
            return False
        except OSError:
            # No hard links here (some network/FAT mounts): exclusive
            # create of the full bytes is the best available fallback.
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
        fsync_directory(os.path.abspath(out_dir))
        return True
    finally:
        try:
            os.unlink(temp_path)
        except OSError:
            pass


def create_manifest(
    campaign_id: str,
    scale: str,
    seed: int,
    total_runs: int,
    shard_size: int,
    default_max_events: Optional[int],
    jobspec_digest: Optional[str] = None,
) -> Dict:
    """Build a fresh manifest dict (all shards pending).

    ``jobspec_digest`` pins the submitting request: the sha256 of the
    canonical :class:`~repro.jobspec.JobSpec` this ensemble computes.
    ``ensemble status`` surfaces it, and resume/join recompute it from
    the manifest parameters and refuse to continue when the campaign's
    current definition no longer hashes to the recorded value — a
    silently drifted spec can then never masquerade as a resume.
    """
    if total_runs < 1:
        raise ExperimentError(f"total_runs must be >= 1, got {total_runs}")
    if shard_size < 1:
        raise ExperimentError(f"shard_size must be >= 1, got {shard_size}")
    shards: List[Dict] = []
    start = 0
    index = 0
    while start < total_runs:
        stop = min(start + shard_size, total_runs)
        shards.append(
            {
                "index": index,
                "start": start,
                "stop": stop,
                "status": "pending",
                "sha256": None,
            }
        )
        start = stop
        index += 1
    return {
        "version": MANIFEST_VERSION,
        "campaign": campaign_id,
        "scale": scale,
        "seed": seed,
        "total_runs": total_runs,
        "shard_size": shard_size,
        "default_max_events": default_max_events,
        "jobspec_digest": jobspec_digest,
        "shards": shards,
    }


def save_manifest(out_dir: str, manifest: Dict) -> None:
    atomic_write_json(os.path.join(out_dir, MANIFEST_NAME), manifest)


def load_manifest(out_dir: str) -> Dict:
    """Load and structurally validate an ensemble manifest."""
    path = os.path.join(out_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        raise ExperimentError(
            f"no ensemble manifest at {path} — run without --resume to "
            "start a fresh ensemble"
        )
    try:
        manifest = load_json(path)
    except ValueError as exc:
        raise ExperimentError(
            f"ensemble manifest {path} is corrupt: {exc}"
        ) from exc
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise ExperimentError(
            f"ensemble manifest version {version!r} is not supported "
            f"(expected {MANIFEST_VERSION})"
        )
    required = (
        "campaign", "scale", "seed", "total_runs", "shard_size", "shards",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise ExperimentError(
            f"ensemble manifest {path} is missing fields: {missing}"
        )
    covered = 0
    for position, shard in enumerate(manifest["shards"]):
        if shard.get("index") != position or shard.get("start") != covered:
            raise ExperimentError(
                f"ensemble manifest {path} has an inconsistent shard "
                f"table at position {position}"
            )
        if shard.get("stop", 0) <= shard["start"]:
            raise ExperimentError(
                f"ensemble manifest {path} shard {position} is empty"
            )
        covered = shard["stop"]
    if covered != manifest["total_runs"]:
        raise ExperimentError(
            f"ensemble manifest {path} shards cover {covered} runs, "
            f"expected {manifest['total_runs']}"
        )
    return manifest
