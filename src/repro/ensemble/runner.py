"""Resumable sharded ensemble runner, single-process and cooperative.

Runs ``total_runs`` independently seeded instances of one catalogued
campaign scenario, sharded so that arbitrarily large ensembles (10⁵+
runs) complete with bounded peak memory and survive being killed at any
instant:

* Seeds follow the repo-wide discipline — one root ``SeedSequence``
  spawned into one child per run *before* any dispatch — so every run
  is a pure function of ``(seed, run_index)`` and the ensemble is
  bit-identical at any worker count, across resumes, across shard
  boundaries, and across any number of cooperating processes.
* Each shard's jobs go through the supervised executor
  (:func:`repro.analysis.supervision.supervised_map`) with
  ``fail_fast=False``: a crashed/hung/poison run becomes a quarantine
  record in the shard, never a lost ensemble.
* Shards commit through the idempotent, fenced path
  (:func:`repro.ensemble.manifest.commit_shard`): atomic write,
  checksum verification, then an exclusive ``shard-<i>.done`` marker.
  The manifest's statuses are a cached view rebuilt from the markers
  (:func:`~repro.ensemble.manifest.reconcile_manifest`), which is what
  lets many writers share one directory without manifest races.
* ``resume=True`` reconciles and checksum-verifies every committed
  shard, renames corrupt files to ``*.corrupt`` and recomputes exactly
  the gap.
* **Cooperative mode** (:class:`CooperativeWorker` /
  :func:`join_ensemble`, CLI ``repro ensemble join``): N processes on a
  shared filesystem claim pending shards via crash-tolerant leases
  (:mod:`repro.ensemble.lease`), heartbeat while computing, and commit
  idempotently — kill any subset of workers at any instant and the
  survivors (or a fresh join) converge to aggregates byte-identical to
  an uninterrupted serial run.
* Aggregates are **always** recomputed by streaming the shard files in
  index order through the online reducers
  (:mod:`repro.ensemble.reducers`) — never incrementally carried in
  memory across shards — so a resumed or cooperatively computed
  ensemble's ``aggregates.json`` is byte-identical to an uninterrupted
  one's (records and aggregates carry no wall-clock fields).
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Dict, List, Optional

from repro._deps import np

from ..analysis.supervision import SupervisionPolicy, supervised_map
from ..exceptions import ExperimentError
from ..scenarios.catalog import get_campaign
from ..scenarios.engine import ScenarioResult, run_scenario
from .lease import LeaseHeartbeat, LeaseManager, list_leases
from .manifest import (
    MANIFEST_NAME,
    atomic_write_json,
    commit_shard,
    create_manifest,
    create_manifest_exclusive,
    load_json,
    load_manifest,
    read_done_marker,
    reconcile_manifest,
    save_manifest,
    shard_path,
)
from .reducers import EnsembleAggregates

__all__ = [
    "AGGREGATES_NAME",
    "CooperativeWorker",
    "ensemble_status",
    "join_ensemble",
    "run_ensemble",
    "run_record",
]

AGGREGATES_NAME = "aggregates.json"

Progress = Optional[Callable[[str], None]]

#: Optional supervision/lifecycle event sink: ``observer(kind, fields)``
#: with the operational-record vocabulary of :mod:`repro.obs.trace`
#: (``shard_start``/``shard_done``/``shard_commit`` here, lease
#: lifecycle events from :mod:`repro.ensemble.lease`, and ``retry``/
#: ``quarantine``/``pool_rebuild`` forwarded from the supervised
#: executor).
Observer = Optional[Callable[[str, Dict], None]]


def _observe(observer: Observer, kind: str, **fields) -> None:
    """Best-effort event report; observer errors never break the run."""
    if observer is None:
        return
    try:
        observer(kind, fields)
    except Exception:
        pass


def run_record(result: ScenarioResult, run_index: int) -> Dict:
    """Flatten one scenario result into a plain shard record.

    Deliberately excludes every wall-clock field — records must be a
    pure function of ``(seed, run_index)`` for resumed ensembles to
    reproduce uninterrupted ones byte-for-byte.
    """
    return {
        "run": run_index,
        "scenario": result.scenario_name,
        "protocol": result.protocol_name,
        "recovered_all": result.recovered_all,
        "total_events": result.total_events,
        "total_interactions": result.total_interactions,
        "total_parallel_time": result.total_parallel_time,
        "phases": [
            {
                "index": log.index,
                "kind": log.kind,
                "label": log.label,
                "num_agents": log.num_agents,
                "interactions": log.interactions,
                "events": log.events,
                "silent": log.silent,
                "stop_reason": log.stop_reason,
                "distance": log.distance,
                "scheduler": log.scheduler,
            }
            for log in result.phase_logs
        ],
    }


def _ensemble_job(job: tuple) -> Dict:
    """One ensemble run, self-contained for worker processes."""
    scenario, child, default_max_events, run_index = job
    result = run_scenario(
        scenario, seed=child, default_max_events=default_max_events
    )
    return run_record(result, run_index)


def _manifest_jobspec_digest(manifest: Dict) -> str:
    """Digest of the JobSpec the manifest's parameters resolve to *now*.

    Recomputed — not read — so a resume can detect that the campaign's
    current definition (the scenario the catalog builds today) no
    longer matches the spec that created the ensemble.
    """
    from ..jobspec import JobSpec

    return JobSpec.from_campaign(
        manifest["campaign"],
        scale=manifest["scale"],
        seed=manifest["seed"],
        repetitions=manifest["total_runs"],
        max_events=manifest.get("default_max_events"),
    ).digest()


def _check_manifest_digest(manifest: Dict, out_dir: str, verb: str) -> None:
    """Refuse to continue an ensemble whose spec has drifted."""
    recorded = manifest.get("jobspec_digest")
    if recorded is None:
        return  # pre-digest manifest: nothing to verify against
    expected = _manifest_jobspec_digest(manifest)
    if recorded != expected:
        raise ExperimentError(
            f"{verb} found jobspec digest {recorded[:12]}… recorded in "
            f"{out_dir}, but the campaign as currently defined resolves "
            f"to {expected[:12]}… — the spec changed since this ensemble "
            "was created; start a fresh directory instead"
        )


def _default_policy(policy: Optional[SupervisionPolicy]) -> SupervisionPolicy:
    """Ensemble runs quarantine rather than die: force fail_fast off."""
    if policy is None:
        return SupervisionPolicy(fail_fast=False)
    if policy.fail_fast:
        return SupervisionPolicy(
            timeout=policy.timeout,
            max_attempts=policy.max_attempts,
            backoff_base=policy.backoff_base,
            backoff_cap=policy.backoff_cap,
            jitter=policy.jitter,
            max_pool_rebuilds=policy.max_pool_rebuilds,
            fail_fast=False,
        )
    return policy


class _EnsemblePlan:
    """The shared compute context both execution modes run shards from.

    Everything derived from the manifest alone: the built scenario, the
    full pre-spawned seed list, and the supervision policy — one shard
    computation is then a pure function of its index.
    """

    def __init__(
        self,
        manifest: Dict,
        workers: Optional[int],
        policy: Optional[SupervisionPolicy],
    ) -> None:
        self.manifest = manifest
        campaign = get_campaign(manifest["campaign"])
        self.scenario = campaign.build(manifest["scale"])
        self.max_events = manifest.get("default_max_events")
        self.workers = workers
        self.policy = _default_policy(policy)
        # One upfront spawn; shards slice it, so a run's seed never
        # depends on which shards already finished or who computes it.
        self.children = np.random.SeedSequence(manifest["seed"]).spawn(
            manifest["total_runs"]
        )

    def compute_shard(self, shard: Dict, observer: Observer) -> Dict:
        """Compute one shard's payload (records merged with failures)."""
        jobs = [
            (self.scenario, self.children[i], self.max_events, i)
            for i in range(shard["start"], shard["stop"])
        ]
        records, failures = supervised_map(
            _ensemble_job, jobs, workers=self.workers, policy=self.policy,
            observer=observer,
        )
        merged: List[Dict] = []
        by_index = {failure.index: failure for failure in failures}
        for offset, record in enumerate(records):
            if record is not None:
                merged.append(record)
            else:
                failure = by_index[offset]
                merged.append(
                    {
                        "run": shard["start"] + offset,
                        "failed": True,
                        "kind": failure.kind,
                        "error": failure.error,
                        "message": failure.message,
                        "attempts": failure.attempts,
                    }
                )
        return {
            "index": shard["index"],
            "start": shard["start"],
            "stop": shard["stop"],
            "records": merged,
            "quarantined": len(failures),
        }


def _shard_payload(computed: Dict) -> Dict:
    """The exact on-disk shard content (no operational fields)."""
    return {
        "index": computed["index"],
        "start": computed["start"],
        "stop": computed["stop"],
        "records": computed["records"],
    }


def _aggregate(out_dir: str, manifest: Dict) -> Dict:
    """Stream every shard file, in index order, through the reducers."""
    aggregates = EnsembleAggregates()
    for shard in manifest["shards"]:
        path = shard_path(out_dir, shard["index"])
        try:
            payload = load_json(path)
        except (OSError, ValueError) as exc:
            raise ExperimentError(
                f"shard {shard['index']} ({path}) vanished or went "
                f"corrupt between verification and aggregation: {exc} — "
                "re-run with --resume (or rejoin) to verify checksums "
                "and recompute the damaged shard"
            ) from exc
        for record in payload["records"]:
            aggregates.update(record)
    return {
        "campaign": manifest["campaign"],
        "scale": manifest["scale"],
        "seed": manifest["seed"],
        "total_runs": manifest["total_runs"],
        "aggregates": aggregates.to_dict(),
    }


def _write_aggregates(out_dir: str, manifest: Dict, progress: Progress) -> Dict:
    aggregate = _aggregate(out_dir, manifest)
    atomic_write_json(os.path.join(out_dir, AGGREGATES_NAME), aggregate)
    if progress:
        summary = aggregate["aggregates"]
        progress(
            f"aggregated {summary['runs']} runs "
            f"({summary['failed_jobs']} failed jobs) -> "
            f"{os.path.join(out_dir, AGGREGATES_NAME)}"
        )
    return aggregate


def run_ensemble(
    out_dir: str,
    campaign_id: Optional[str] = None,
    scale: str = "smoke",
    total_runs: Optional[int] = None,
    shard_size: int = 1000,
    seed: int = 0,
    workers: Optional[int] = None,
    default_max_events: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    resume: bool = False,
    progress: Progress = None,
    observer: Observer = None,
) -> Dict:
    """Run (or resume) one sharded ensemble; returns the aggregate dict.

    Fresh runs need ``campaign_id`` (and optionally ``total_runs``,
    defaulting to the campaign's repetition count for ``scale``);
    resumed runs read every parameter from the on-disk manifest and
    reject contradicting arguments, so a resume can never silently
    compute a different ensemble.

    ``observer`` receives operational lifecycle events
    (``shard_start``/``shard_commit``/``shard_done`` plus the
    supervised executor's ``retry``/``quarantine``/``pool_rebuild``) —
    the live ``--progress`` dashboard and operational traces hang off
    this seam.  Observation never changes the records or aggregates,
    which stay a pure function of the manifest.
    """
    if resume:
        manifest = load_manifest(out_dir)
        if campaign_id is not None and campaign_id != manifest["campaign"]:
            raise ExperimentError(
                f"--resume found campaign {manifest['campaign']!r} in "
                f"{out_dir}, not {campaign_id!r}"
            )
        if total_runs is not None and total_runs != manifest["total_runs"]:
            raise ExperimentError(
                f"--resume found {manifest['total_runs']} runs in "
                f"{out_dir}, not {total_runs}"
            )
        _check_manifest_digest(manifest, out_dir, "--resume")
        reconcile_manifest(
            out_dir, manifest, repair=True, verify=True, progress=progress
        )
        save_manifest(out_dir, manifest)
    else:
        if campaign_id is None:
            raise ExperimentError(
                "a fresh ensemble needs a campaign id"
            )
        if os.path.exists(os.path.join(out_dir, MANIFEST_NAME)):
            raise ExperimentError(
                f"{out_dir} already holds an ensemble manifest; pass "
                "resume/--resume to continue it or choose a fresh "
                "directory"
            )
        campaign = get_campaign(campaign_id)
        if total_runs is None:
            total_runs = campaign.repetitions_for(scale)
        manifest = create_manifest(
            campaign_id=campaign_id,
            scale=scale,
            seed=seed,
            total_runs=total_runs,
            shard_size=shard_size,
            default_max_events=default_max_events,
        )
        manifest["jobspec_digest"] = _manifest_jobspec_digest(manifest)
        os.makedirs(out_dir, exist_ok=True)
        save_manifest(out_dir, manifest)

    plan = _EnsemblePlan(manifest, workers, policy)

    pending = [s for s in manifest["shards"] if s["status"] != "done"]
    if progress:
        done = len(manifest["shards"]) - len(pending)
        progress(
            f"ensemble {manifest['campaign']}@{manifest['scale']}: "
            f"{manifest['total_runs']} runs in {len(manifest['shards'])} "
            f"shards ({done} already done)"
        )
    for shard in pending:
        _observe(
            observer, "shard_start",
            shard=shard["index"], start=shard["start"], stop=shard["stop"],
        )
        computed = plan.compute_shard(shard, observer)
        digest, placed = commit_shard(
            out_dir, shard["index"], _shard_payload(computed)
        )
        if placed:
            _observe(
                observer, "shard_commit",
                shard=shard["index"], sha256=digest,
            )
        shard["status"] = "done"
        shard["sha256"] = digest
        save_manifest(out_dir, manifest)
        _observe(
            observer, "shard_done",
            shard=shard["index"], start=shard["start"], stop=shard["stop"],
            quarantined=computed["quarantined"],
        )
        if progress:
            quarantined = computed["quarantined"]
            note = f" ({quarantined} quarantined)" if quarantined else ""
            progress(
                f"shard {shard['index']} done "
                f"[{shard['stop']}/{manifest['total_runs']} runs]{note}"
            )

    return _write_aggregates(out_dir, manifest, progress)


class CooperativeWorker:
    """One cooperative joiner draining a shared ensemble directory.

    The loop is claim → compute → commit → reconcile: pick the lowest
    pending shard without a live lease, claim it through the
    crash-tolerant lease protocol, compute it under supervision while a
    heartbeat thread renews the lease, then commit idempotently.  A
    worker that loses its lease (heartbeat stolen after TTL expiry)
    abandons the shard gracefully — the thief commits byte-identical
    content.  ``clock``/``sleep``/``heartbeat`` are injectable so tests
    can drive two workers through a deterministic lease-steal schedule.

    :meth:`step` performs exactly one such attempt and reports what
    happened (``"committed"``, ``"duplicate"``, ``"abandoned"``,
    ``"contended"``, or ``"complete"``); :meth:`run` loops with
    jittered exponential backoff on contention until the ensemble is
    complete (finalising the manifest and aggregates) or a shutdown is
    requested.
    """

    def __init__(
        self,
        out_dir: str,
        worker: Optional[str] = None,
        ttl: float = 30.0,
        workers: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        heartbeat: bool = True,
        backoff_base: float = 0.1,
        backoff_cap: Optional[float] = None,
        progress: Progress = None,
        observer: Observer = None,
    ) -> None:
        self.out_dir = out_dir
        self.manifest = load_manifest(out_dir)
        self.plan = _EnsemblePlan(self.manifest, workers, policy)
        self.manager = LeaseManager(
            out_dir, owner=worker, ttl=ttl, clock=clock, observer=observer,
        )
        self.sleep = sleep
        self.heartbeat = heartbeat
        self.backoff_base = backoff_base
        self.backoff_cap = (
            backoff_cap if backoff_cap is not None else min(2.0, ttl / 2.0)
        )
        self.progress = progress
        self.observer = observer

    @property
    def owner(self) -> str:
        return self.manager.owner

    def _pending(self) -> List[Dict]:
        """Shards without a commit marker, in index order."""
        return [
            shard
            for shard in self.manifest["shards"]
            if read_done_marker(self.out_dir, shard["index"]) is None
        ]

    def step(self) -> str:
        """One claim → compute → commit attempt.

        Returns ``"complete"`` (nothing left to claim or compute),
        ``"contended"`` (every pending shard is under a live foreign
        lease — back off), ``"committed"`` (this worker placed the
        shard's commit marker), ``"duplicate"`` (computed but another
        worker committed first — byte-identical by construction), or
        ``"abandoned"`` (the lease was lost mid-compute and the shard
        was dropped without committing).
        """
        pending = self._pending()
        if not pending:
            return "complete"
        lease = None
        for shard in pending:
            lease = self.manager.claim(shard["index"])
            if lease is not None:
                claimed = shard
                break
        if lease is None:
            return "contended"
        if self.progress:
            self.progress(
                f"worker {self.owner} claimed shard {claimed['index']} "
                f"(token {lease.token})"
            )
        _observe(
            self.observer, "shard_start",
            shard=claimed["index"],
            start=claimed["start"], stop=claimed["stop"],
        )
        beat = (
            LeaseHeartbeat(self.manager, lease).start()
            if self.heartbeat
            else None
        )
        try:
            computed = self.plan.compute_shard(claimed, self.observer)
        finally:
            if beat is not None:
                beat.stop()
        lost = beat is not None and beat.lost.is_set()
        if not lost:
            # Fencing check: commit only under a lease that is still
            # ours *now* (covers the no-heartbeat test mode and the
            # window since the last renewal).
            lost = not self.manager.renew(lease)
        if lost:
            if self.progress:
                self.progress(
                    f"worker {self.owner} lost its lease on shard "
                    f"{claimed['index']} — abandoning (the new owner "
                    "commits identical bytes)"
                )
            return "abandoned"
        try:
            digest, placed = commit_shard(
                self.out_dir, claimed["index"], _shard_payload(computed),
                owner=self.owner, token=lease.token,
            )
        finally:
            self.manager.release(lease)
        if placed:
            _observe(
                self.observer, "shard_commit",
                shard=claimed["index"], sha256=digest,
                owner=self.owner, token=lease.token,
            )
            _observe(
                self.observer, "shard_done",
                shard=claimed["index"],
                start=claimed["start"], stop=claimed["stop"],
                quarantined=computed["quarantined"],
            )
            if self.progress:
                self.progress(
                    f"worker {self.owner} committed shard "
                    f"{claimed['index']} "
                    f"[runs {claimed['start']}..{claimed['stop']})"
                )
            return "committed"
        return "duplicate"

    def _finalize(self) -> Dict:
        """Verify, persist the reconciled manifest, write aggregates.

        Every worker that observes completion runs this; all of them
        write byte-identical manifest and aggregate files (atomic
        replaces of equal content), so concurrent finalisation is
        harmless.
        """
        save_manifest(self.out_dir, self.manifest)
        return _write_aggregates(self.out_dir, self.manifest, self.progress)

    def run(self, shutdown=None) -> Optional[Dict]:
        """Drain the directory; returns the aggregate, or ``None`` on
        shutdown before completion.

        ``shutdown`` is any object with a truthy ``requested`` once the
        worker should stop (e.g.
        :class:`repro.analysis.supervision.ShutdownLatch`): the current
        shard is finished and committed, leases are released, and the
        method returns ``None`` — a later ``join`` continues exactly
        where the fleet left off.
        """
        contended = 0
        while True:
            if shutdown is not None and shutdown.requested:
                if self.progress:
                    self.progress(
                        f"worker {self.owner} shutting down — leases "
                        "released; rejoin to continue"
                    )
                return None
            outcome = self.step()
            if outcome == "complete":
                demoted = reconcile_manifest(
                    self.out_dir, self.manifest,
                    repair=True, verify=True, progress=self.progress,
                )
                if demoted == 0 and not self._pending():
                    return self._finalize()
                continue  # verification reopened work — keep draining
            if outcome == "contended":
                contended += 1
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * 2.0 ** min(contended - 1, 8),
                )
                self.sleep(delay * (1.0 + 0.25 * random.random()))
            else:
                contended = 0


def join_ensemble(
    out_dir: str,
    campaign_id: Optional[str] = None,
    scale: str = "smoke",
    total_runs: Optional[int] = None,
    shard_size: int = 1000,
    seed: int = 0,
    default_max_events: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    ttl: float = 30.0,
    worker: Optional[str] = None,
    shutdown=None,
    progress: Progress = None,
    observer: Observer = None,
) -> Optional[Dict]:
    """Join (or bootstrap) a cooperative ensemble in ``out_dir``.

    If the directory has no manifest yet, the first joiner to arrive
    creates it atomically-and-exclusively from the campaign parameters;
    every other joiner (racing or late) loads the winner's manifest and
    — exactly like ``--resume`` — rejects contradicting arguments.
    Returns the aggregate dict once the whole ensemble is complete, or
    ``None`` if ``shutdown`` was requested first.
    """
    os.makedirs(out_dir, exist_ok=True)
    if not os.path.exists(os.path.join(out_dir, MANIFEST_NAME)):
        if campaign_id is None:
            raise ExperimentError(
                "joining an empty directory needs a campaign id to "
                "bootstrap the manifest"
            )
        campaign = get_campaign(campaign_id)
        runs = (
            total_runs
            if total_runs is not None
            else campaign.repetitions_for(scale)
        )
        manifest = create_manifest(
            campaign_id=campaign_id,
            scale=scale,
            seed=seed,
            total_runs=runs,
            shard_size=shard_size,
            default_max_events=default_max_events,
        )
        manifest["jobspec_digest"] = _manifest_jobspec_digest(manifest)
        if create_manifest_exclusive(out_dir, manifest) and progress:
            progress(
                f"bootstrapped ensemble {campaign_id}@{scale}: {runs} "
                f"runs in {len(manifest['shards'])} shards"
            )
    manifest = load_manifest(out_dir)
    if campaign_id is not None and campaign_id != manifest["campaign"]:
        raise ExperimentError(
            f"join found campaign {manifest['campaign']!r} in {out_dir}, "
            f"not {campaign_id!r}"
        )
    if total_runs is not None and total_runs != manifest["total_runs"]:
        raise ExperimentError(
            f"join found {manifest['total_runs']} runs in {out_dir}, "
            f"not {total_runs}"
        )
    _check_manifest_digest(manifest, out_dir, "join")
    joiner = CooperativeWorker(
        out_dir,
        worker=worker,
        ttl=ttl,
        workers=workers,
        policy=policy,
        progress=progress,
        observer=observer,
    )
    return joiner.run(shutdown=shutdown)


def ensemble_status(out_dir: str) -> Dict:
    """Summarise an ensemble directory without running anything.

    Completion is derived from the commit markers (reconciled in
    memory, nothing on disk is touched or checksummed — this is the
    cheap live view cooperative workers and dashboards poll).  Beyond
    the completion counters this estimates progress rates from the
    ``done`` shard files' modification times (the only wall-clock
    signal the runner leaves behind — records themselves stay
    wall-clock-free): each shard after the first completed one gets a
    ``throughput_runs_per_s`` over the interval since its predecessor,
    and the remaining runs get an ``eta_s`` at the overall observed
    rate.  Both are ``None`` until two shards have finished (or once
    the ensemble is complete, for the ETA).  ``workers`` lists the
    live lease holders (owner, shard, fencing token, seconds until
    their heartbeat deadline) plus any expired claims awaiting
    reclaim.
    """
    manifest = load_manifest(out_dir)
    reconcile_manifest(out_dir, manifest, repair=False, verify=False)
    done = [s for s in manifest["shards"] if s["status"] == "done"]
    runs_done = sum(s["stop"] - s["start"] for s in done)
    aggregates_path = os.path.join(out_dir, AGGREGATES_NAME)

    timed = []  # (mtime, shard) for done shards whose file survives
    for shard in done:
        path = shard_path(out_dir, shard["index"])
        if os.path.exists(path):
            timed.append((os.path.getmtime(path), shard))
    timed.sort(key=lambda pair: pair[0])

    shard_rows: List[Dict] = []
    previous_mtime: Optional[float] = None
    for mtime, shard in timed:
        runs = shard["stop"] - shard["start"]
        rate = None
        if previous_mtime is not None and mtime > previous_mtime:
            rate = runs / (mtime - previous_mtime)
        shard_rows.append(
            {
                "index": shard["index"],
                "runs": runs,
                "throughput_runs_per_s": rate,
            }
        )
        previous_mtime = mtime

    throughput = None
    if len(timed) >= 2:
        span = timed[-1][0] - timed[0][0]
        covered = sum(
            shard["stop"] - shard["start"] for _, shard in timed[1:]
        )
        if span > 0:
            throughput = covered / span
    complete = len(done) == len(manifest["shards"])
    runs_remaining = manifest["total_runs"] - runs_done
    eta_s = (
        runs_remaining / throughput
        if throughput and not complete
        else None
    )

    status = {
        "campaign": manifest["campaign"],
        "scale": manifest["scale"],
        "seed": manifest["seed"],
        "jobspec_digest": manifest.get("jobspec_digest"),
        "total_runs": manifest["total_runs"],
        "shard_size": manifest["shard_size"],
        "shards_total": len(manifest["shards"]),
        "shards_done": len(done),
        "runs_done": runs_done,
        "complete": complete,
        "has_aggregates": os.path.exists(aggregates_path),
        "shards": shard_rows,
        "throughput_runs_per_s": throughput,
        "eta_s": eta_s,
        "workers": list_leases(out_dir),
    }
    return status
