"""Resumable sharded ensemble runner.

Runs ``total_runs`` independently seeded instances of one catalogued
campaign scenario, sharded so that arbitrarily large ensembles (10⁵+
runs) complete with bounded peak memory and survive being killed at any
instant:

* Seeds follow the repo-wide discipline — one root ``SeedSequence``
  spawned into one child per run *before* any dispatch — so every run
  is a pure function of ``(seed, run_index)`` and the ensemble is
  bit-identical at any worker count, across resumes, and across shard
  boundaries.
* Each shard's jobs go through the supervised executor
  (:func:`repro.analysis.supervision.supervised_map`) with
  ``fail_fast=False``: a crashed/hung/poison run becomes a quarantine
  record in the shard, never a lost ensemble.
* Shard files and the manifest are written atomically
  (:mod:`repro.ensemble.manifest`); the manifest marks a shard ``done``
  only after its file is durably renamed, with its SHA-256.
* ``resume=True`` verifies every ``done`` shard's checksum, renames
  corrupt files to ``*.corrupt`` and recomputes exactly the gap.
* Aggregates are **always** recomputed by streaming the shard files in
  index order through the online reducers
  (:mod:`repro.ensemble.reducers`) — never incrementally carried in
  memory across shards — so a resumed ensemble's ``aggregates.json``
  is byte-identical to an uninterrupted one's (records and aggregates
  carry no wall-clock fields).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

import numpy as np

from ..analysis.supervision import SupervisionPolicy, supervised_map
from ..exceptions import ExperimentError
from ..scenarios.catalog import get_campaign
from ..scenarios.engine import ScenarioResult, run_scenario
from .manifest import (
    MANIFEST_NAME,
    atomic_write_json,
    create_manifest,
    file_sha256,
    load_json,
    load_manifest,
    save_manifest,
    shard_path,
)
from .reducers import EnsembleAggregates

__all__ = [
    "AGGREGATES_NAME",
    "ensemble_status",
    "run_ensemble",
    "run_record",
]

AGGREGATES_NAME = "aggregates.json"

Progress = Optional[Callable[[str], None]]

#: Optional supervision/lifecycle event sink: ``observer(kind, fields)``
#: with the operational-record vocabulary of :mod:`repro.obs.trace`
#: (``shard_start``/``shard_done`` here, ``retry``/``quarantine``/
#: ``pool_rebuild`` forwarded from the supervised executor).
Observer = Optional[Callable[[str, Dict], None]]


def _observe(observer: Observer, kind: str, **fields) -> None:
    """Best-effort event report; observer errors never break the run."""
    if observer is None:
        return
    try:
        observer(kind, fields)
    except Exception:
        pass


def run_record(result: ScenarioResult, run_index: int) -> Dict:
    """Flatten one scenario result into a plain shard record.

    Deliberately excludes every wall-clock field — records must be a
    pure function of ``(seed, run_index)`` for resumed ensembles to
    reproduce uninterrupted ones byte-for-byte.
    """
    return {
        "run": run_index,
        "scenario": result.scenario_name,
        "protocol": result.protocol_name,
        "recovered_all": result.recovered_all,
        "total_events": result.total_events,
        "total_interactions": result.total_interactions,
        "total_parallel_time": result.total_parallel_time,
        "phases": [
            {
                "index": log.index,
                "kind": log.kind,
                "label": log.label,
                "num_agents": log.num_agents,
                "interactions": log.interactions,
                "events": log.events,
                "silent": log.silent,
                "stop_reason": log.stop_reason,
                "distance": log.distance,
                "scheduler": log.scheduler,
            }
            for log in result.phase_logs
        ],
    }


def _ensemble_job(job: tuple) -> Dict:
    """One ensemble run, self-contained for worker processes."""
    scenario, child, default_max_events, run_index = job
    result = run_scenario(
        scenario, seed=child, default_max_events=default_max_events
    )
    return run_record(result, run_index)


def _default_policy(policy: Optional[SupervisionPolicy]) -> SupervisionPolicy:
    """Ensemble runs quarantine rather than die: force fail_fast off."""
    if policy is None:
        return SupervisionPolicy(fail_fast=False)
    if policy.fail_fast:
        return SupervisionPolicy(
            timeout=policy.timeout,
            max_attempts=policy.max_attempts,
            backoff_base=policy.backoff_base,
            backoff_cap=policy.backoff_cap,
            jitter=policy.jitter,
            max_pool_rebuilds=policy.max_pool_rebuilds,
            fail_fast=False,
        )
    return policy


def _verify_done_shards(out_dir: str, manifest: Dict, progress: Progress) -> int:
    """Re-check every ``done`` shard; corrupt ones go back to pending.

    Returns the number of shards demoted.  A corrupt file is renamed to
    ``<shard>.corrupt`` (kept for post-mortems, replaced on repeat
    corruption) rather than deleted.
    """
    demoted = 0
    for shard in manifest["shards"]:
        if shard["status"] != "done":
            continue
        path = shard_path(out_dir, shard["index"])
        reason = None
        if not os.path.exists(path):
            reason = "file missing"
        elif file_sha256(path) != shard["sha256"]:
            reason = "checksum mismatch"
        if reason is None:
            continue
        if os.path.exists(path):
            os.replace(path, path + ".corrupt")
        shard["status"] = "pending"
        shard["sha256"] = None
        demoted += 1
        if progress:
            progress(
                f"shard {shard['index']} is corrupt ({reason}); "
                "quarantined and queued for recompute"
            )
    return demoted


def _aggregate(out_dir: str, manifest: Dict) -> Dict:
    """Stream every shard file, in index order, through the reducers."""
    aggregates = EnsembleAggregates()
    for shard in manifest["shards"]:
        payload = load_json(shard_path(out_dir, shard["index"]))
        for record in payload["records"]:
            aggregates.update(record)
    return {
        "campaign": manifest["campaign"],
        "scale": manifest["scale"],
        "seed": manifest["seed"],
        "total_runs": manifest["total_runs"],
        "aggregates": aggregates.to_dict(),
    }


def run_ensemble(
    out_dir: str,
    campaign_id: Optional[str] = None,
    scale: str = "smoke",
    total_runs: Optional[int] = None,
    shard_size: int = 1000,
    seed: int = 0,
    workers: Optional[int] = None,
    default_max_events: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    resume: bool = False,
    progress: Progress = None,
    observer: Observer = None,
) -> Dict:
    """Run (or resume) one sharded ensemble; returns the aggregate dict.

    Fresh runs need ``campaign_id`` (and optionally ``total_runs``,
    defaulting to the campaign's repetition count for ``scale``);
    resumed runs read every parameter from the on-disk manifest and
    reject contradicting arguments, so a resume can never silently
    compute a different ensemble.

    ``observer`` receives operational lifecycle events
    (``shard_start``/``shard_done`` plus the supervised executor's
    ``retry``/``quarantine``/``pool_rebuild``) — the live ``--progress``
    dashboard and operational traces hang off this seam.  Observation
    never changes the records or aggregates, which stay a pure function
    of the manifest.
    """
    if resume:
        manifest = load_manifest(out_dir)
        if campaign_id is not None and campaign_id != manifest["campaign"]:
            raise ExperimentError(
                f"--resume found campaign {manifest['campaign']!r} in "
                f"{out_dir}, not {campaign_id!r}"
            )
        if total_runs is not None and total_runs != manifest["total_runs"]:
            raise ExperimentError(
                f"--resume found {manifest['total_runs']} runs in "
                f"{out_dir}, not {total_runs}"
            )
        _verify_done_shards(out_dir, manifest, progress)
        save_manifest(out_dir, manifest)
    else:
        if campaign_id is None:
            raise ExperimentError(
                "a fresh ensemble needs a campaign id"
            )
        if os.path.exists(os.path.join(out_dir, MANIFEST_NAME)):
            raise ExperimentError(
                f"{out_dir} already holds an ensemble manifest; pass "
                "resume/--resume to continue it or choose a fresh "
                "directory"
            )
        campaign = get_campaign(campaign_id)
        if total_runs is None:
            total_runs = campaign.repetitions_for(scale)
        manifest = create_manifest(
            campaign_id=campaign_id,
            scale=scale,
            seed=seed,
            total_runs=total_runs,
            shard_size=shard_size,
            default_max_events=default_max_events,
        )
        os.makedirs(out_dir, exist_ok=True)
        save_manifest(out_dir, manifest)

    campaign = get_campaign(manifest["campaign"])
    scenario = campaign.build(manifest["scale"])
    effective_policy = _default_policy(policy)
    # One upfront spawn; shards slice it, so a run's seed never depends
    # on which shards already finished.
    children = np.random.SeedSequence(manifest["seed"]).spawn(
        manifest["total_runs"]
    )
    max_events = manifest.get("default_max_events")

    pending = [s for s in manifest["shards"] if s["status"] != "done"]
    if progress:
        done = len(manifest["shards"]) - len(pending)
        progress(
            f"ensemble {manifest['campaign']}@{manifest['scale']}: "
            f"{manifest['total_runs']} runs in {len(manifest['shards'])} "
            f"shards ({done} already done)"
        )
    for shard in pending:
        _observe(
            observer, "shard_start",
            shard=shard["index"], start=shard["start"], stop=shard["stop"],
        )
        jobs = [
            (scenario, children[i], max_events, i)
            for i in range(shard["start"], shard["stop"])
        ]
        records, failures = supervised_map(
            _ensemble_job, jobs, workers=workers, policy=effective_policy,
            observer=observer,
        )
        merged: List[Dict] = []
        by_index = {failure.index: failure for failure in failures}
        for offset, record in enumerate(records):
            if record is not None:
                merged.append(record)
            else:
                failure = by_index[offset]
                merged.append(
                    {
                        "run": shard["start"] + offset,
                        "failed": True,
                        "kind": failure.kind,
                        "error": failure.error,
                        "message": failure.message,
                        "attempts": failure.attempts,
                    }
                )
        path = shard_path(out_dir, shard["index"])
        atomic_write_json(
            path,
            {
                "index": shard["index"],
                "start": shard["start"],
                "stop": shard["stop"],
                "records": merged,
            },
        )
        shard["status"] = "done"
        shard["sha256"] = file_sha256(path)
        save_manifest(out_dir, manifest)
        _observe(
            observer, "shard_done",
            shard=shard["index"], start=shard["start"], stop=shard["stop"],
            quarantined=len(failures),
        )
        if progress:
            note = f" ({len(failures)} quarantined)" if failures else ""
            progress(
                f"shard {shard['index']} done "
                f"[{shard['stop']}/{manifest['total_runs']} runs]{note}"
            )

    aggregate = _aggregate(out_dir, manifest)
    atomic_write_json(os.path.join(out_dir, AGGREGATES_NAME), aggregate)
    if progress:
        summary = aggregate["aggregates"]
        progress(
            f"aggregated {summary['runs']} runs "
            f"({summary['failed_jobs']} failed jobs) -> "
            f"{os.path.join(out_dir, AGGREGATES_NAME)}"
        )
    return aggregate


def ensemble_status(out_dir: str) -> Dict:
    """Summarise an ensemble directory without running anything.

    Beyond the completion counters this estimates progress rates from
    the ``done`` shard files' modification times (the only wall-clock
    signal the runner leaves behind — records themselves stay
    wall-clock-free): each shard after the first completed one gets a
    ``throughput_runs_per_s`` over the interval since its predecessor,
    and the remaining runs get an ``eta_s`` at the overall observed
    rate.  Both are ``None`` until two shards have finished (or once
    the ensemble is complete, for the ETA).
    """
    manifest = load_manifest(out_dir)
    done = [s for s in manifest["shards"] if s["status"] == "done"]
    runs_done = sum(s["stop"] - s["start"] for s in done)
    aggregates_path = os.path.join(out_dir, AGGREGATES_NAME)

    timed = []  # (mtime, shard) for done shards whose file survives
    for shard in done:
        path = shard_path(out_dir, shard["index"])
        if os.path.exists(path):
            timed.append((os.path.getmtime(path), shard))
    timed.sort(key=lambda pair: pair[0])

    shard_rows: List[Dict] = []
    previous_mtime: Optional[float] = None
    for mtime, shard in timed:
        runs = shard["stop"] - shard["start"]
        rate = None
        if previous_mtime is not None and mtime > previous_mtime:
            rate = runs / (mtime - previous_mtime)
        shard_rows.append(
            {
                "index": shard["index"],
                "runs": runs,
                "throughput_runs_per_s": rate,
            }
        )
        previous_mtime = mtime

    throughput = None
    if len(timed) >= 2:
        span = timed[-1][0] - timed[0][0]
        covered = sum(
            shard["stop"] - shard["start"] for _, shard in timed[1:]
        )
        if span > 0:
            throughput = covered / span
    complete = len(done) == len(manifest["shards"])
    runs_remaining = manifest["total_runs"] - runs_done
    eta_s = (
        runs_remaining / throughput
        if throughput and not complete
        else None
    )

    status = {
        "campaign": manifest["campaign"],
        "scale": manifest["scale"],
        "seed": manifest["seed"],
        "total_runs": manifest["total_runs"],
        "shard_size": manifest["shard_size"],
        "shards_total": len(manifest["shards"]),
        "shards_done": len(done),
        "runs_done": runs_done,
        "complete": complete,
        "has_aggregates": os.path.exists(aggregates_path),
        "shards": shard_rows,
        "throughput_runs_per_s": throughput,
        "eta_s": eta_s,
    }
    return status
