"""The cubic routing graph ``G`` over lines of traps (paper §4.2, Figure 1).

Agents released to the extra state ``X`` must be spread roughly evenly
over the entrance gates of all ``m²`` lines.  The paper equips every
line with a "routing table" of three neighbour lines given by a cubic
graph ``G`` of diameter ``4⌈log m⌉`` built as follows:

1. start from ``G′``, a balanced binary tree with ``m² + 1`` vertices in
   which every parent has two children (so ``m²/2 + 1`` leaves, root of
   degree 2);
2. merge the root with one of the leaves into a single vertex;
3. add a cycle through all remaining leaves.

We realise ``G′`` as the standard heap-ordered complete binary tree on
vertices ``1..m²+1`` (children of ``i`` are ``2i`` and ``2i+1``); since
``m²+1`` is odd for even ``m``, every internal node has exactly two
children, matching the paper.  The merged leaf is the last one
(``m²+1``), folded into vertex 1.  With this layout the worked example
under Figure 1 is reproduced verbatim: for ``m² = 16``, line 1 has
neighbours ``l0 = 2``, ``l1 = 3``, ``l2 = 8``.

For ``num_vertices = 4`` (``m = 2``) the construction degenerates (only
two leaves remain for the "cycle"), so we substitute ``K₄`` — still
3-regular, connected, and of constant diameter, which is all the proofs
use.  This deviation is recorded in DESIGN.md.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from ..exceptions import ProtocolError

__all__ = ["RoutingGraph", "build_routing_graph"]


class RoutingGraph:
    """An (undirected, loop-free) 3-regular routing graph on ``1..V``.

    Vertices are 1-based to match the paper's line numbering.  Each
    vertex exposes exactly three neighbours ``l0 <= l1 <= l2`` (the
    routing table used by the §4 protocol).
    """

    def __init__(self, neighbours: Dict[int, Tuple[int, int, int]]) -> None:
        self._neighbours = dict(neighbours)
        self._num_vertices = len(neighbours)

    @property
    def num_vertices(self) -> int:
        """Number of vertices (lines)."""
        return self._num_vertices

    @property
    def vertices(self) -> range:
        """Vertices ``1..V`` (paper numbering)."""
        return range(1, self._num_vertices + 1)

    def neighbours(self, vertex: int) -> Tuple[int, int, int]:
        """The routing triple ``(l0, l1, l2)`` of ``vertex``."""
        return self._neighbours[vertex]

    def edges(self) -> Set[Tuple[int, int]]:
        """Undirected edge set as sorted pairs."""
        result: Set[Tuple[int, int]] = set()
        for vertex, nbrs in self._neighbours.items():
            for other in nbrs:
                result.add((min(vertex, other), max(vertex, other)))
        return result

    def is_cubic(self) -> bool:
        """True iff every vertex has three distinct neighbours."""
        return all(
            len(set(nbrs)) == 3 and vertex not in nbrs
            for vertex, nbrs in self._neighbours.items()
        )

    def is_connected(self) -> bool:
        """Breadth-first connectivity check."""
        return len(self._bfs_distances(1)) == self._num_vertices

    def diameter(self) -> int:
        """Exact diameter via BFS from every vertex (small graphs only)."""
        best = 0
        for vertex in self.vertices:
            distances = self._bfs_distances(vertex)
            if len(distances) != self._num_vertices:
                raise ProtocolError("routing graph is disconnected")
            best = max(best, max(distances.values()))
        return best

    def _bfs_distances(self, source: int) -> Dict[int, int]:
        distances = {source: 0}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            for other in self._neighbours[vertex]:
                if other not in distances:
                    distances[other] = distances[vertex] + 1
                    queue.append(other)
        return distances

    def __repr__(self) -> str:
        return f"RoutingGraph(vertices={self._num_vertices})"


def build_routing_graph(num_vertices: int) -> RoutingGraph:
    """Build the paper's graph ``G`` on ``num_vertices`` lines.

    ``num_vertices`` must be even (the construction needs ``V + 1`` odd)
    and at least 4.  ``V = 4`` yields ``K₄`` (see module docstring).
    """
    if num_vertices < 4:
        raise ProtocolError(
            f"routing graph needs at least 4 vertices, got {num_vertices}"
        )
    if num_vertices % 2 != 0:
        raise ProtocolError(
            f"routing graph construction needs an even vertex count, "
            f"got {num_vertices}"
        )
    if num_vertices == 4:
        neighbours = {
            1: (2, 3, 4),
            2: (1, 3, 4),
            3: (1, 2, 4),
            4: (1, 2, 3),
        }
        return RoutingGraph(neighbours)

    total = num_vertices + 1  # tree G' vertex count (odd)
    first_leaf = total // 2 + 1  # heap index of the first leaf
    merged_leaf = total  # folded into vertex 1

    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, num_vertices + 1)}

    def add_edge(u: int, v: int) -> None:
        adjacency[u].append(v)
        adjacency[v].append(u)

    # Tree edges, with the merged leaf redirected to vertex 1.
    for parent in range(1, first_leaf):
        for child in (2 * parent, 2 * parent + 1):
            target = 1 if child == merged_leaf else child
            add_edge(parent, target)

    # Cycle through the remaining leaves (first_leaf .. num_vertices).
    cycle = list(range(first_leaf, num_vertices + 1))
    for i, vertex in enumerate(cycle):
        add_edge(vertex, cycle[(i + 1) % len(cycle)])

    neighbours: Dict[int, Tuple[int, int, int]] = {}
    for vertex, nbrs in adjacency.items():
        if len(nbrs) != 3 or len(set(nbrs)) != 3 or vertex in nbrs:
            # Only V = 6 triggers this (parent of the merged leaf is a
            # child of the root); V = m² for even m never hits it.
            raise ProtocolError(
                f"construction degenerates at {num_vertices} vertices "
                f"(vertex {vertex} neighbours {sorted(nbrs)}); "
                "use an even square vertex count"
            )
        ordered = tuple(sorted(nbrs))
        neighbours[vertex] = ordered  # type: ignore[assignment]
    return RoutingGraph(neighbours)
