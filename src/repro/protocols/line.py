"""Ranking with one extra state via lines of traps (paper §4, Theorem 2).

The ``n = 3m³(m+1)`` rank states (``m`` even) are partitioned into
``m²`` *lines of traps*; each line is a chain of ``3m`` traps of size
``m + 1`` indexed ``a = 3m`` (entrance) down to ``a = 1`` (exit).  One
extra non-rank state ``X`` collects agents released by exit gates.
Rules (states written ``(l, a, b)`` as in the paper, ``l ∈ [1, m²]``,
``a ∈ [1, 3m]``, ``b ∈ [0, m]``):

* inner:   ``(l,a,b) + (l,a,b) → (l,a,b) + (l,a,b−1)`` for ``b > 0``;
* gate:    ``(l,a,0) + (l,a,0) → (l,a,m) + (l,a−1,0)`` for ``a > 1``;
* exit:    ``(l,1,0) + (l,1,0) → (l,1,m) + X``;
* X route: ``X + X → X + (1, 3m, 0)``;
* routing: ``(l,a,b) + X → (l,a,b) + (l_i, 3m, 0)`` where
  ``i = ⌈a/m⌉ − 1 ∈ {0,1,2}`` and ``l_0, l_1, l_2`` are the neighbours
  of line ``l`` in the cubic routing graph ``G`` (Figure 1) — every
  trap *points to* one neighbouring line.

Theorem 2: this is a stable, silent, self-stabilising ranking (and
leader election) protocol with ``x = 1`` extra state and stabilisation
time ``O(n^{7/4} log² n) = o(n²)`` whp from arbitrary configurations.

For ``n`` strictly between lattice sizes, the paper scatters the
remainder by adding up to two states to each trap; the constructor
implements that (see :func:`line_parameter_for`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro._deps import np

from ..exceptions import ProtocolError
from ..core.families import Family, OrderedProduct, SameStatePairs
from ..core.protocol import PopulationProtocol, RankingProtocol, Transition
from .routing import RoutingGraph, build_routing_graph
from .trap import TrapLayout

__all__ = [
    "LineOfTrapsProtocol",
    "IsolatedLineProtocol",
    "line_parameter_for",
    "line_lattice_size",
]


def line_lattice_size(m: int) -> int:
    """The exact population size ``3m³(m+1)`` of the parameter-``m`` lattice."""
    return 3 * m**3 * (m + 1)


def line_parameter_for(num_agents: int) -> int:
    """Largest even ``m`` whose (possibly expanded) lattice covers ``n``.

    A parameter-``m`` lattice has ``3m³`` traps and can absorb up to two
    extra states per trap, i.e. it covers ``3m³(m+1) <= n <= 3m³(m+3)``.
    Raises for ``n`` in a gap between lattices (the paper's asymptotic
    scatter argument hides these; exact sizes are recommended).
    """
    if num_agents < line_lattice_size(2):
        raise ProtocolError(
            f"line protocol needs at least {line_lattice_size(2)} agents "
            f"(m = 2 lattice), got {num_agents}"
        )
    m = 2
    while line_lattice_size(m + 2) <= num_agents:
        m += 2
    if num_agents > 3 * m**3 * (m + 3):
        raise ProtocolError(
            f"population {num_agents} falls between the m={m} lattice "
            f"(max {3 * m**3 * (m + 3)}) and the m={m + 2} lattice "
            f"(min {line_lattice_size(m + 2)}); "
            "use one of the exact sizes"
        )
    return m


class LineOfTrapsProtocol(RankingProtocol):
    """Self-stabilising ranking with a single extra state (Theorem 2)."""

    def __init__(
        self, num_agents: Optional[int] = None, m: Optional[int] = None
    ) -> None:
        if num_agents is None and m is None:
            raise ProtocolError("provide num_agents and/or m")
        if m is None:
            m = line_parameter_for(num_agents)
        if m < 2 or m % 2 != 0:
            raise ProtocolError(f"lattice parameter m must be even >= 2, got {m}")
        if num_agents is None:
            num_agents = line_lattice_size(m)

        num_traps = 3 * m**3
        extra = num_agents - line_lattice_size(m)
        if not 0 <= extra <= 2 * num_traps:
            raise ProtocolError(
                f"population {num_agents} not representable with m={m} "
                f"(lattice {line_lattice_size(m)}, max +{2 * num_traps})"
            )
        super().__init__(num_agents, num_extra_states=1)
        self._m = m
        self._num_lines = m * m
        self._traps_per_line = 3 * m
        self._graph = build_routing_graph(self._num_lines)

        # Scatter the remainder: +1 state to every trap first, then +1
        # more to the first few, exactly covering `extra`.
        bonus_all, bonus_first = divmod(extra, num_traps) if extra else (0, 0)
        sizes = [
            m + 1 + bonus_all + (1 if t < bonus_first else 0)
            for t in range(num_traps)
        ]

        self._traps: List[TrapLayout] = []
        base = 0
        for size in sizes:
            self._traps.append(TrapLayout(base=base, size=size))
            base += size
        assert base == num_agents

        # Plain list so hot-path lookups return unboxed Python ints.
        trap_of_state = np.empty(num_agents, dtype=np.int32)
        for index, layout in enumerate(self._traps):
            trap_of_state[layout.base : layout.base + layout.size] = index
        self._trap_of_state = trap_of_state.tolist()
        self._base = [t.base for t in self._traps]
        self._top = [t.top for t in self._traps]

        # Per-line bookkeeping: traps of line l are the contiguous global
        # ids l*3m .. l*3m + 3m−1 in order a = 1..3m.
        self._line_first_state = [
            self._traps[l * self._traps_per_line].base
            for l in range(self._num_lines)
        ]
        self._line_first_state.append(num_agents)  # sentinel

        # Routing tables, 0-based: trap (l, a) points to line
        # neighbours(l+1)[(a−1)//m] − 1.
        self._neighbours = [
            tuple(v - 1 for v in self._graph.neighbours(l + 1))
            for l in range(self._num_lines)
        ]

        # Structural family membership, built once (see build_families).
        self._rank_state_list = list(range(self.num_ranks))
        self._all_state_list = list(range(self.num_states))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Lattice parameter (even)."""
        return self._m

    @property
    def num_lines(self) -> int:
        """Number of lines of traps, ``m²``."""
        return self._num_lines

    @property
    def traps_per_line(self) -> int:
        """Traps per line, ``3m``."""
        return self._traps_per_line

    @property
    def x_state(self) -> int:
        """Index of the single extra state ``X``."""
        return self.num_ranks

    @property
    def routing_graph(self) -> RoutingGraph:
        """The cubic graph ``G`` over lines (Figure 1)."""
        return self._graph

    def trap(self, line: int, a: int) -> TrapLayout:
        """Layout of trap ``a`` (1-based, paper numbering) of ``line`` (0-based)."""
        if not 1 <= a <= self._traps_per_line:
            raise ProtocolError(f"trap index {a} outside [1, {self._traps_per_line}]")
        return self._traps[line * self._traps_per_line + (a - 1)]

    def line_traps(self, line: int) -> List[TrapLayout]:
        """All traps of ``line`` in order ``a = 1..3m``."""
        start = line * self._traps_per_line
        return self._traps[start : start + self._traps_per_line]

    def line_states(self, line: int) -> range:
        """The contiguous rank states of ``line``."""
        return range(
            self._line_first_state[line], self._line_first_state[line + 1]
        )

    def line_of_state(self, state: int) -> int:
        """0-based line owning a rank state."""
        return self._trap_of_state[state] // self._traps_per_line

    def entrance_gate(self, line: int) -> int:
        """State ``(l, 3m, 0)`` — where routed agents enter the line."""
        return self.trap(line, self._traps_per_line).gate

    def exit_gate(self, line: int) -> int:
        """State ``(l, 1, 0)`` — releases agents to ``X``."""
        return self.trap(line, 1).gate

    def pointed_line(self, line: int, a: int) -> int:
        """Line that trap ``(line, a)`` points to (0-based)."""
        return self._neighbours[line][(a - 1) // self._m]

    # ------------------------------------------------------------------
    # Transition function
    # ------------------------------------------------------------------
    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        x = self.num_ranks
        if initiator == responder:
            if initiator == x:
                # X + X → X + (1, 3m, 0): route to line 1's entrance.
                return x, self.entrance_gate(0)
            trap_index = self._trap_of_state[initiator]
            base = self._base[trap_index]
            if initiator != base:
                # Inner rule: responder descends.
                return initiator, initiator - 1
            a = trap_index % self._traps_per_line + 1
            if a > 1:
                # Gate rule: forward to the previous trap on the line.
                return self._top[trap_index], self._base[trap_index - 1]
            # Exit gate: release to X.
            return self._top[trap_index], x
        if responder == x and initiator < x:
            # Routing rule: the rank agent directs the X agent to the
            # entrance gate of the line its trap points to.
            trap_index = self._trap_of_state[initiator]
            line = trap_index // self._traps_per_line
            a = trap_index % self._traps_per_line + 1
            target = self._neighbours[line][(a - 1) // self._m]
            return initiator, self.entrance_gate(target)
        return None

    def same_state_rule_states(self) -> List[int]:
        return list(range(self.num_states))  # every state, including X

    def build_families(self, counts: Sequence[int]) -> List[Family]:
        """Inner/gate/exit rules plus ``X + X`` as same-state pairs, the
        §4 routing rule ``(rank, X)`` as one ordered product.

        Under the fused weight index the routing family is a single
        product slot, so an ``X``-count change costs one padded-tree
        update instead of a per-family dispatch sweep.  The membership
        lists are cached — ``build_families`` runs on every engine
        construction and fault resync, and the list spans all ``n``
        rank states.
        """
        return [
            SameStatePairs(counts, self._all_state_list),
            OrderedProduct(
                counts,
                initiators=self._rank_state_list,
                responders=[self.x_state],
            ),
        ]

    def state_label(self, state: int) -> str:
        if state == self.x_state:
            return "X"
        trap_index = self._trap_of_state[state]
        line = trap_index // self._traps_per_line
        a = trap_index % self._traps_per_line + 1
        b = state - self._base[trap_index]
        return f"({line + 1},{a},{b})"

    @property
    def name(self) -> str:
        return f"LineOfTraps(m={self._m})"


class IsolatedLineProtocol(PopulationProtocol):
    """One line of traps with an absorbing release state (§4.1 testbed).

    States: traps ``a = 1..num_traps`` laid out exit-first (trap 1 at
    base 0), each ``inner_cap + 1`` states (gate + inner), plus a final
    absorbing state standing in for ``X``.  No routing back into the
    line, so runs model exactly the "no agents arrive at the entrance
    gate" premise of Lemma 5 — the released-agent count must match the
    closed form in :func:`repro.analysis.potentials.stabilise_line`.

    ``num_agents`` is free, so arbitrary ``(β, γ)`` starts can be built.
    """

    def __init__(
        self, num_traps: int, inner_cap: int, num_agents: int
    ) -> None:
        if num_traps < 1:
            raise ProtocolError(f"need at least one trap, got {num_traps}")
        if inner_cap < 0:
            raise ProtocolError(f"inner_cap must be >= 0, got {inner_cap}")
        size = inner_cap + 1
        super().__init__(
            num_states=num_traps * size + 1, num_agents=num_agents
        )
        self._num_traps = num_traps
        self._size = size
        self._traps = [
            TrapLayout(base=a * size, size=size) for a in range(num_traps)
        ]

    @property
    def num_traps(self) -> int:
        """Traps on the line (paper's ``3m`` for full lines)."""
        return self._num_traps

    @property
    def release_state(self) -> int:
        """Absorbing stand-in for ``X``."""
        return self._num_traps * self._size

    def trap(self, a: int) -> TrapLayout:
        """Trap ``a`` (1-based; trap 1 is the exit trap)."""
        if not 1 <= a <= self._num_traps:
            raise ProtocolError(f"trap index {a} outside [1, {self._num_traps}]")
        return self._traps[a - 1]

    @property
    def entrance_gate(self) -> int:
        """Gate of the highest-numbered trap."""
        return self._traps[-1].gate

    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        if initiator != responder or initiator == self.release_state:
            return None
        trap_index, offset = divmod(initiator, self._size)
        if offset > 0:
            return initiator, initiator - 1
        top = self._traps[trap_index].top
        if trap_index > 0:
            return top, self._traps[trap_index - 1].gate
        return top, self.release_state

    def same_state_rule_states(self) -> List[int]:
        return list(range(self.release_state))

    def released(self, counts: Sequence[int]) -> int:
        """Agents released from the line so far."""
        return counts[self.release_state]

    def configuration_from_vectors(
        self, beta: Sequence[int], gamma: Sequence[int]
    ) -> "Configuration":
        """Build a (tidy) configuration with the given per-trap loads.

        Inner agents are packed bottom-up: inner states ``1..`` get one
        agent each, remaining agents pile on the top inner state — a
        tidy arrangement, as §4.1 assumes.
        """
        from ..core.configuration import Configuration

        if len(beta) != self._num_traps or len(gamma) != self._num_traps:
            raise ProtocolError(
                f"need exactly {self._num_traps} beta/gamma entries"
            )
        counts = [0] * self.num_states
        for index, (b, g) in enumerate(zip(beta, gamma)):
            trap = self._traps[index]
            counts[trap.gate] = g
            inner = list(trap.inner_states)
            if not inner and b:
                raise ProtocolError("degenerate trap cannot hold inner agents")
            remaining = b
            for state in inner:
                if remaining == 0:
                    break
                counts[state] = 1
                remaining -= 1
            if remaining:
                counts[inner[-1]] += remaining
        total = sum(counts)
        if total != self.num_agents:
            raise ProtocolError(
                f"vectors hold {total} agents, protocol expects "
                f"{self.num_agents}"
            )
        return Configuration(counts)

    @property
    def name(self) -> str:
        return f"IsolatedLine(traps={self._num_traps}, m={self._size - 1})"
