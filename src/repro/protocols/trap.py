"""The agent trap — the paper's core combinatorial gadget (§2.1).

A trap of size ``m + 1`` consists of states ``0..m``: state 0 is the
*gate*, states ``1..m`` are *inner* states.  Its rules:

* ``R_i : (i, i) → (i, i−1)`` for inner states ``i = 1..m`` — excess
  agents descend toward the gate;
* ``R_g : (0, 0) → (m, Y)`` — the gate keeps one agent (sent to the top
  inner state ``m``) and *releases* the other to a state ``Y`` outside
  the trap (the next trap's gate in the ring/line protocols).

An unoccupied inner state is a *gap*; a trap with no gaps is
*saturated*; a saturated trap holding at least ``m + 1`` agents is
*full*.  Facts 1–3 of the paper (gaps stay filled, 2d arrivals saturate
d gaps, fullness is absorbing) and Lemma 1 (drain rates) are about this
object and are exercised in tests/benchmarks through the standalone
protocol below.

:class:`TrapLayout` is the shared description reused by the ring (§3)
and line (§4) protocols; :class:`SingleTrapProtocol` embeds one trap
with an absorbing exit state so Lemma 1 can be measured in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exceptions import ProtocolError
from ..core.configuration import Configuration
from ..core.protocol import PopulationProtocol, Transition

__all__ = [
    "TrapLayout",
    "SingleTrapProtocol",
    "trap_gaps",
    "trap_surplus",
    "trap_is_saturated",
    "trap_is_full",
    "trap_is_flat",
    "trap_is_tidy",
]


@dataclass(frozen=True)
class TrapLayout:
    """Position of one trap inside a larger state space.

    States ``base .. base + size − 1``; ``base`` is the gate and
    ``base + b`` is inner state ``b``.  ``size == 1`` is the degenerate
    single-state trap the paper mentions (``m = 0``): its "top inner
    state" is the gate itself.
    """

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ProtocolError(f"trap size must be >= 1, got {self.size}")

    @property
    def gate(self) -> int:
        """Index of the gate state."""
        return self.base

    @property
    def top(self) -> int:
        """Index of the highest state (inner state ``m``; gate if size 1)."""
        return self.base + self.size - 1

    @property
    def inner_states(self) -> range:
        """Inner states (possibly empty for the degenerate trap)."""
        return range(self.base + 1, self.base + self.size)

    @property
    def states(self) -> range:
        """All states of the trap, gate first."""
        return range(self.base, self.base + self.size)

    def contains(self, state: int) -> bool:
        """True iff ``state`` belongs to this trap."""
        return self.base <= state < self.base + self.size

    def inner_index(self, state: int) -> int:
        """Offset ``b`` of a state within the trap (0 = gate)."""
        if not self.contains(state):
            raise ProtocolError(f"state {state} not in trap at base {self.base}")
        return state - self.base


# ----------------------------------------------------------------------
# Trap predicates over raw counts (shared by §3 and §4 analyses)
# ----------------------------------------------------------------------
def trap_gaps(counts: Sequence[int], trap: TrapLayout) -> int:
    """Number of unoccupied inner states."""
    return sum(1 for s in trap.inner_states if counts[s] == 0)


def trap_surplus(counts: Sequence[int], trap: TrapLayout) -> int:
    """``l`` such that ``m + l + 1`` agents occupy the trap (may be < 0)."""
    occupancy = sum(counts[s] for s in trap.states)
    return occupancy - trap.size


def trap_is_saturated(counts: Sequence[int], trap: TrapLayout) -> bool:
    """True iff the trap has no gaps."""
    return trap_gaps(counts, trap) == 0


def trap_is_full(counts: Sequence[int], trap: TrapLayout) -> bool:
    """True iff saturated and holding at least ``size`` agents."""
    return (
        trap_is_saturated(counts, trap)
        and sum(counts[s] for s in trap.states) >= trap.size
    )


def trap_is_flat(counts: Sequence[int], trap: TrapLayout) -> bool:
    """True iff no inner state holds two or more agents (Lemma 3)."""
    return all(counts[s] <= 1 for s in trap.inner_states)


def trap_is_tidy(counts: Sequence[int], trap: TrapLayout) -> bool:
    """True iff every overloaded inner state sits above every gap (§2.2)."""
    highest_gap = -1
    lowest_overload = trap.size + 1
    for state in trap.inner_states:
        b = state - trap.base
        if counts[state] == 0:
            highest_gap = max(highest_gap, b)
        elif counts[state] >= 2:
            lowest_overload = min(lowest_overload, b)
    return lowest_overload > highest_gap


class SingleTrapProtocol(PopulationProtocol):
    """One agent trap plus an absorbing *exit* state.

    States: ``0`` gate, ``1..m`` inner, ``m+1`` exit (the paper's ``Y``).
    The exit state has no rules, so released agents accumulate there and
    the run goes silent once the trap itself has settled.  Used by the
    Lemma 1 micro-benchmarks and the trap property tests.

    ``num_agents`` is free (the trap may start with any surplus or
    deficit), unlike the ranking protocols where it is tied to the state
    count.
    """

    def __init__(self, inner_size: int, num_agents: int) -> None:
        if inner_size < 0:
            raise ProtocolError(f"inner_size must be >= 0, got {inner_size}")
        self._m = inner_size
        super().__init__(num_states=inner_size + 2, num_agents=num_agents)
        self._trap = TrapLayout(base=0, size=inner_size + 1)

    @property
    def trap(self) -> TrapLayout:
        """Layout of the embedded trap (states ``0..m``)."""
        return self._trap

    @property
    def exit_state(self) -> int:
        """The absorbing state ``Y`` that collects released agents."""
        return self._m + 1

    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        if initiator != responder:
            return None
        state = initiator
        if state == self._trap.gate:
            # R_g: keep one agent (to the top inner state), release one.
            return self._trap.top, self.exit_state
        if self._trap.contains(state):
            # R_i: the responder descends one step.
            return state, state - 1
        return None  # exit state is absorbing

    def same_state_rule_states(self) -> List[int]:
        return list(self._trap.states)

    def released(self, configuration: Configuration) -> int:
        """Agents the trap has released so far."""
        return configuration.count(self.exit_state)

    def state_label(self, state: int) -> str:
        if state == self._trap.gate:
            return "gate"
        if state == self.exit_state:
            return "exit"
        return f"inner{state}"

    @property
    def name(self) -> str:
        return f"SingleTrap(m={self._m})"
