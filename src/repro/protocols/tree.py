"""Perfectly balanced binary trees over ``n`` rank states (paper §5).

The §5 protocol spans the ``n`` rank states over a *perfectly balanced*
binary tree defined recursively for any integer size:

* a subtree of odd size ``k = 2l + 1`` has a **branching** root with two
  children that root two *identical* subtrees of size ``l`` (size 1 is
  the degenerate odd case: a **leaf**);
* a subtree of even size ``k`` has a **non-branching** root with a
  single child rooting a subtree of size ``k − 1``.

Nodes are identified with rank states through *pre-order* numbering:
the root is state 0, the lone child of ``p`` is ``p + 1``, and the
children of a branching ``p`` (subtree sizes ``l``) are ``p + 1`` and
``p + l + 1``.  Figure 2 of the paper shows the ``n = 9`` instance;
:mod:`tests` check this module reproduces it exactly.

Structural properties proved in the paper and validated in tests:
all nodes at the same level are uniform (same kind, same subtree size),
and the height satisfies ``h <= 2·log2(n)``.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator, List, Tuple

from ..exceptions import ProtocolError

__all__ = ["NodeKind", "PerfectlyBalancedTree"]


class NodeKind(IntEnum):
    """Role of a node in the perfectly balanced tree."""

    LEAF = 0
    NON_BRANCHING = 1
    BRANCHING = 2


class PerfectlyBalancedTree:
    """The size-``n`` perfectly balanced binary tree, pre-order indexed.

    All structure is precomputed into flat arrays at construction, so
    the protocol's transition function is a couple of O(1) lookups.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ProtocolError(f"tree size must be >= 1, got {size}")
        self._size = size
        kind = [NodeKind.LEAF] * size
        left = [-1] * size
        right = [-1] * size
        parent = [-1] * size
        level = [0] * size
        subtree = [0] * size

        # Iterative pre-order construction.
        stack: List[Tuple[int, int, int, int]] = [(0, size, 0, -1)]
        while stack:
            node, k, depth, par = stack.pop()
            subtree[node] = k
            level[node] = depth
            parent[node] = par
            if k == 1:
                kind[node] = NodeKind.LEAF
            elif k % 2 == 1:
                half = (k - 1) // 2
                kind[node] = NodeKind.BRANCHING
                left[node] = node + 1
                right[node] = node + half + 1
                stack.append((node + 1, half, depth + 1, node))
                stack.append((node + half + 1, half, depth + 1, node))
            else:
                kind[node] = NodeKind.NON_BRANCHING
                left[node] = node + 1
                stack.append((node + 1, k - 1, depth + 1, node))

        self._kind = kind
        self._left = left
        self._right = right
        self._parent = parent
        self._level = level
        self._subtree = subtree
        self._height = max(level)
        self._leaves = [p for p in range(size) if kind[p] == NodeKind.LEAF]

    # ------------------------------------------------------------------
    # Node queries (all O(1))
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes (== rank states spanned)."""
        return self._size

    @property
    def height(self) -> int:
        """Maximum node level; the paper proves ``height <= 2·log2(n)``."""
        return self._height

    @property
    def leaves(self) -> List[int]:
        """Pre-order ids of all leaves."""
        return list(self._leaves)

    def kind(self, node: int) -> NodeKind:
        """Whether ``node`` is a leaf, non-branching, or branching."""
        return self._kind[node]

    def is_leaf(self, node: int) -> bool:
        """True iff ``node`` is a leaf."""
        return self._kind[node] == NodeKind.LEAF

    def is_branching(self, node: int) -> bool:
        """True iff ``node`` spawns two children."""
        return self._kind[node] == NodeKind.BRANCHING

    def left_child(self, node: int) -> int:
        """Left (or only) child, or -1 for leaves."""
        return self._left[node]

    def right_child(self, node: int) -> int:
        """Right child, or -1 unless branching."""
        return self._right[node]

    def parent(self, node: int) -> int:
        """Parent, or -1 for the root."""
        return self._parent[node]

    def level(self, node: int) -> int:
        """Distance from the root."""
        return self._level[node]

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the subtree rooted at ``node``."""
        return self._subtree[node]

    def children(self, node: int) -> List[int]:
        """The 0, 1 or 2 children of ``node``."""
        result = []
        if self._left[node] >= 0:
            result.append(self._left[node])
        if self._right[node] >= 0:
            result.append(self._right[node])
        return result

    # ------------------------------------------------------------------
    # Path / traversal helpers used by the Lemma 19–20 analyses
    # ------------------------------------------------------------------
    def root_to_leaf_path(self, leaf: int) -> List[int]:
        """Nodes from the root down to ``leaf`` inclusive."""
        if not self.is_leaf(leaf):
            raise ProtocolError(f"node {leaf} is not a leaf")
        path = [leaf]
        while self._parent[path[-1]] >= 0:
            path.append(self._parent[path[-1]])
        path.reverse()
        return path

    def iter_levels(self) -> Iterator[List[int]]:
        """Yield the node lists of each level, root downward."""
        by_level: List[List[int]] = [[] for _ in range(self._height + 1)]
        for node in range(self._size):
            by_level[self._level[node]].append(node)
        return iter(by_level)

    def __repr__(self) -> str:
        return (
            f"PerfectlyBalancedTree(size={self._size}, "
            f"height={self._height}, leaves={len(self._leaves)})"
        )
