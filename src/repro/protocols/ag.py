"""The generic state-optimal ranking protocol ``AG`` (paper §1–§2).

State space ``{0, ..., n−1}`` (rank states only, ``x = 0``) with the
single rule family

    ``i + i → i + (i + 1 mod n)``

i.e. when two agents share a state, the responder advances to the next
state cyclically.  The paper recalls that this protocol silently
self-stabilises in ``Θ(n²)`` parallel time and uses it as the baseline
every new protocol is measured against.

This is the *only* previously known state-optimal self-stabilising
ranking protocol; the structure of all such protocols (one rule per
state, of the form ``(s, s) → (s', s'')``) is discussed in §2.
"""

from __future__ import annotations

from typing import Optional

from ..core.protocol import RankingProtocol, Transition

__all__ = ["AGProtocol"]


class AGProtocol(RankingProtocol):
    """Baseline cyclic-successor ranking protocol (``Θ(n²)``, ``x = 0``)."""

    def __init__(self, num_agents: int) -> None:
        super().__init__(num_agents, num_extra_states=0)

    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        """``i + i → i + (i+1 mod n)``; all other pairs are null."""
        if initiator != responder:
            return None
        return initiator, (initiator + 1) % self.num_ranks

    def same_state_rule_states(self):
        # Every state carries a rule; avoids n delta() calls at build time.
        return list(range(self.num_ranks))

    def state_label(self, state: int) -> str:
        return f"rank{state}"

    @property
    def name(self) -> str:
        return "AG"
