"""The paper's protocols and their combinatorial substrates.

* :class:`~repro.protocols.ag.AGProtocol` — the ``Θ(n²)`` baseline.
* :class:`~repro.protocols.ring.RingOfTrapsProtocol` — §3, Theorem 1.
* :class:`~repro.protocols.line.LineOfTrapsProtocol` — §4, Theorem 2.
* :class:`~repro.protocols.tree_protocol.TreeRankingProtocol` — §5, Theorem 3.
* Substrates: agent traps, the routing graph ``G`` (Figure 1), and
  perfectly balanced binary trees (Figure 2).
"""

from .ag import AGProtocol
from .leader import LeaderElectionResult, count_leaders, elect_leader
from .line import LineOfTrapsProtocol, line_lattice_size, line_parameter_for
from .modified_tree import ModifiedTreeProtocol
from .ring import RingOfTrapsProtocol, ring_parameter_for
from .routing import RoutingGraph, build_routing_graph
from .trap import (
    SingleTrapProtocol,
    TrapLayout,
    trap_gaps,
    trap_is_flat,
    trap_is_full,
    trap_is_saturated,
    trap_is_tidy,
    trap_surplus,
)
from .tree import NodeKind, PerfectlyBalancedTree
from .tree_protocol import (
    TreeDispersalProtocol,
    TreeRankingProtocol,
    default_line_half_length,
)

__all__ = [
    "AGProtocol",
    "LeaderElectionResult",
    "LineOfTrapsProtocol",
    "ModifiedTreeProtocol",
    "NodeKind",
    "PerfectlyBalancedTree",
    "RingOfTrapsProtocol",
    "RoutingGraph",
    "SingleTrapProtocol",
    "TrapLayout",
    "TreeDispersalProtocol",
    "TreeRankingProtocol",
    "build_routing_graph",
    "count_leaders",
    "default_line_half_length",
    "elect_leader",
    "line_lattice_size",
    "line_parameter_for",
    "ring_parameter_for",
    "trap_gaps",
    "trap_is_flat",
    "trap_is_full",
    "trap_is_saturated",
    "trap_is_tidy",
    "trap_surplus",
]
