"""Leader election via ranking (the paper's framing).

Any self-stabilising ranking protocol immediately solves
self-stabilising leader election: once every agent holds a unique rank,
the (unique) agent in rank 0 is the leader, silently and forever.  The
helpers here wrap a ranking run in leader-election vocabulary and give
the quantities experiments report: whether a unique leader exists, and
the election (== stabilisation) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro._deps import np

from ..core.configuration import Configuration
from ..core.engine import RunResult, run_protocol
from ..core.protocol import RankingProtocol

__all__ = ["LeaderElectionResult", "elect_leader", "count_leaders"]


@dataclass(frozen=True)
class LeaderElectionResult:
    """Outcome of a leader-election run."""

    run: RunResult
    unique_leader: bool

    @property
    def election_parallel_time(self) -> float:
        """Parallel time until the population went silent."""
        return self.run.parallel_time

    @property
    def interactions(self) -> int:
        """Total interactions until silence (or budget)."""
        return self.run.interactions


def count_leaders(
    protocol: RankingProtocol, configuration: Configuration
) -> int:
    """Number of agents currently in the leader state (rank 0)."""
    return configuration.count(protocol.leader_state)


def elect_leader(
    protocol: RankingProtocol,
    configuration: Configuration,
    seed: Union[int, np.random.Generator, None] = None,
    engine: str = "jump",
    max_interactions: Optional[int] = None,
) -> LeaderElectionResult:
    """Run ``protocol`` to silence and report the leader situation.

    A correct, silent run of any of the paper's ranking protocols always
    yields ``unique_leader=True``; a ``False`` with ``run.silent`` set
    would disprove stability (tests assert this never happens), while
    ``False`` with ``run.silent`` unset just means the budget ran out.
    """
    run = run_protocol(
        protocol,
        configuration,
        seed=seed,
        engine=engine,
        max_interactions=max_interactions,
    )
    unique = (
        run.silent
        and count_leaders(protocol, run.final_configuration) == 1
        and protocol.is_ranked(run.final_configuration)
    )
    return LeaderElectionResult(run=run, unique_leader=unique)
