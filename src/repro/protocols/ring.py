"""The state-optimal ring-of-traps ranking protocol (paper §3).

An ``(m, m+1)``-ring-of-traps partitions the ``n = m(m+1)`` rank states
into ``m`` traps of size ``m + 1`` whose gates are chained in a cycle:

* inner rule:  ``(a,b) + (a,b) → (a,b) + (a,b−1)`` for ``b > 0``;
* gate rule:   ``(a,0) + (a,0) → (a,m) + ((a+1) mod m, 0)``.

This is a *state-optimal* protocol (``x = 0``): exactly one rule per
state, all of the mandatory form ``(s,s) → (s',s'')``.  Theorem 1 shows
it self-stabilises silently in ``O(min(k·n^{3/2}, n² log² n))`` time whp
from any ``k``-distant configuration.

For population sizes that are not of the form ``m(m+1)`` the paper notes
some traps can be *reduced* below ``m + 1`` states; the constructor
implements that scatter rule (at most two states removed per trap, so
all asymptotics are preserved).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro._deps import np

from ..exceptions import ProtocolError
from ..core.protocol import RankingProtocol, Transition
from .trap import TrapLayout

__all__ = ["RingOfTrapsProtocol", "ring_parameter_for"]


def ring_parameter_for(num_agents: int) -> int:
    """Smallest ``m`` with ``m(m+1) >= num_agents``."""
    if num_agents < 2:
        raise ProtocolError("ring of traps needs at least 2 agents")
    m = max(1, int(math.isqrt(num_agents)) - 1)
    while m * (m + 1) < num_agents:
        m += 1
    return m


class RingOfTrapsProtocol(RankingProtocol):
    """State-optimal self-stabilising ranking via a ring of traps.

    Parameters
    ----------
    num_agents:
        Population size ``n``.  When ``n = m(m+1)`` for some ``m`` the
        layout is the paper's exact ``(m, m+1)``-ring; otherwise the
        smallest such ``m`` above is used and ``m(m+1) − n`` states are
        removed from the traps round-robin (each trap keeps at least its
        gate).
    m:
        Optionally force the ring parameter; ``num_agents`` then
        defaults to ``m(m+1)``.
    """

    def __init__(
        self, num_agents: Optional[int] = None, m: Optional[int] = None
    ) -> None:
        if num_agents is None and m is None:
            raise ProtocolError("provide num_agents and/or m")
        if m is None:
            m = ring_parameter_for(num_agents)
        if m < 1:
            raise ProtocolError(f"ring parameter m must be >= 1, got {m}")
        if num_agents is None:
            num_agents = m * (m + 1)
        capacity = m * (m + 1)
        excess = capacity - num_agents
        if excess < 0:
            raise ProtocolError(
                f"m={m} provides only {capacity} states for "
                f"{num_agents} agents"
            )
        if excess >= m * (m + 1) - m:  # every trap must keep its gate
            raise ProtocolError(
                f"cannot shrink an m={m} ring down to {num_agents} states"
            )
        super().__init__(num_agents, num_extra_states=0)
        self._m = m

        # Remove `excess` states round-robin, at most (m) per pass.
        sizes = [m + 1] * m
        trap = 0
        while excess > 0:
            if sizes[trap] > 1:
                sizes[trap] -= 1
                excess -= 1
            trap = (trap + 1) % m

        self._traps: List[TrapLayout] = []
        base = 0
        for size in sizes:
            self._traps.append(TrapLayout(base=base, size=size))
            base += size
        assert base == num_agents

        # Per-state decode tables (hot path of delta()); plain lists so
        # lookups return unboxed Python ints.
        trap_of_state = np.empty(num_agents, dtype=np.int32)
        for index, layout in enumerate(self._traps):
            trap_of_state[layout.base : layout.base + layout.size] = index
        self._trap_of_state = trap_of_state.tolist()
        self._gate = [layout.gate for layout in self._traps]
        self._top = [layout.top for layout in self._traps]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Ring parameter: number of traps."""
        return self._m

    @property
    def num_traps(self) -> int:
        """Number of traps (== ``m``)."""
        return self._m

    @property
    def traps(self) -> List[TrapLayout]:
        """Trap layouts in ring order ``a = 0..m−1``."""
        return list(self._traps)

    def trap(self, index: int) -> TrapLayout:
        """Layout of trap ``index``."""
        return self._traps[index]

    def trap_of(self, state: int) -> int:
        """Ring index of the trap containing ``state``."""
        return self._trap_of_state[state]

    # ------------------------------------------------------------------
    # Transition function — exactly n rules, one per state
    # ------------------------------------------------------------------
    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        if initiator != responder:
            return None
        state = initiator
        trap_index = self._trap_of_state[state]
        if state != self._gate[trap_index]:
            # Inner rule R_i: responder descends toward the gate.
            return state, state - 1
        # Gate rule R_g: keep one agent at the top inner state, forward
        # the other to the next trap's gate around the ring.
        next_gate = self._gate[(trap_index + 1) % self._m]
        return self._top[trap_index], next_gate

    def same_state_rule_states(self) -> List[int]:
        return list(range(self.num_ranks))

    def state_label(self, state: int) -> str:
        trap_index = self._trap_of_state[state]
        b = state - self._traps[trap_index].base
        return f"({trap_index},{b})"

    @property
    def name(self) -> str:
        return f"RingOfTraps(m={self._m})"
