"""The near-state-optimal tree ranking protocol (paper §5, rules R1–R5).

Rank states are the nodes of a :class:`~repro.protocols.tree.PerfectlyBalancedTree`
(pre-order numbered); ``x = 2k = O(log n)`` extra states ``X_1..X_{2k}``
form a *reset line*, split into a **red** half ``X_1..X_k`` and a
**green** half ``X_{k+1}..X_{2k}``.  The rules:

* ``R1`` — dispersion down the tree: two agents on a non-branching node
  ``p`` send the responder to ``p+1``; on a branching node both agents
  vacate to the two children ``p+1`` and ``p+l+1``.
* ``R2`` — reset trigger: two agents on a *leaf* both jump to ``X_1``.
* ``R3`` — line progression: ``X_i + X_j → X_{i+1} + X_{i+1}`` whenever
  ``i <= j`` and ``i < 2k``.
* ``R4`` — line/tree interaction: a red ``X_i`` (``i <= k``) meeting a
  rank state resets both to ``X_1``; a green ``X_i`` (``i > k``) drops
  to the root (rank 0), leaving the responder unchanged.
* ``R5`` — line exit: ``X_{2k} + X_{2k} → 0 + 0``.

Theorem 3: the protocol is a stable, silent, self-stabilising ranking
(and hence leader election) protocol running in ``O(n log n)`` time whp.

This module also provides :class:`TreeDispersalProtocol` — rule R1
alone, with no extra states.  It is exactly the object analysed by
Lemmas 19–20 (perfect dispersion from the root, progress along
root-to-leaf paths) and doubles as the natural ablation: *without* the
reset line it reaches silent-but-incorrect configurations from
unbalanced starts, demonstrating why R2–R5 exist.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..exceptions import ProtocolError
from ..core.families import Family, OrderedProduct, SameStatePairs, TriangularLine
from ..core.protocol import RankingProtocol, Transition
from .tree import NodeKind, PerfectlyBalancedTree

__all__ = [
    "TreeRankingProtocol",
    "TreeDispersalProtocol",
    "default_line_half_length",
]


def default_line_half_length(num_agents: int) -> int:
    """Default ``k`` (half the reset line): ``Θ(log n)`` as in the paper.

    The paper requires a constant ``k >= d'`` large enough for the
    Lemma 21 epidemic argument; ``2·ceil(log2 n)`` (minimum 2) is
    comfortable in practice and keeps ``x = O(log n)``.
    """
    return max(2, 2 * math.ceil(math.log2(max(2, num_agents))))


class TreeRankingProtocol(RankingProtocol):
    """Self-stabilising ranking with ``O(log n)`` extra states (Thm 3)."""

    def __init__(self, num_agents: int, k: Optional[int] = None) -> None:
        if k is None:
            k = default_line_half_length(num_agents)
        if k < 1:
            raise ProtocolError(f"reset line half-length k must be >= 1, got {k}")
        super().__init__(num_agents, num_extra_states=2 * k)
        self._k = k
        self._tree = PerfectlyBalancedTree(num_agents)
        # Family membership lists are structural; build them once.
        # ``build_families`` runs per engine construction *and* per
        # fault-injection resync, and the weight-sync cross-checks call
        # it per event.
        self._rank_state_list = list(self.rank_states)
        self._line_state_list = list(self.line_states)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def tree(self) -> PerfectlyBalancedTree:
        """The tree of ranks."""
        return self._tree

    @property
    def k(self) -> int:
        """Half-length of the reset line (red = ``X_1..X_k``)."""
        return self._k

    @property
    def line_states(self) -> range:
        """Extra states ``X_1..X_{2k}`` in line order."""
        return self.extra_states

    def line_state(self, i: int) -> int:
        """State index of ``X_i`` (``i`` is 1-based as in the paper)."""
        if not 1 <= i <= 2 * self._k:
            raise ProtocolError(f"X index {i} outside [1, {2 * self._k}]")
        return self.num_ranks + i - 1

    def line_index(self, state: int) -> int:
        """1-based ``i`` with ``state == X_i``."""
        if state < self.num_ranks or state >= self.num_states:
            raise ProtocolError(f"state {state} is not a line state")
        return state - self.num_ranks + 1

    def is_red(self, state: int) -> bool:
        """True iff ``state`` is a red line state ``X_1..X_k``."""
        return self.num_ranks <= state < self.num_ranks + self._k

    def is_green(self, state: int) -> bool:
        """True iff ``state`` is a green line state ``X_{k+1}..X_{2k}``."""
        return self.num_ranks + self._k <= state < self.num_states

    # ------------------------------------------------------------------
    # Transition function (R1–R5, exactly as written in the paper)
    # ------------------------------------------------------------------
    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        n = self.num_ranks
        if initiator < n:
            if responder != initiator:
                return None  # distinct ranks never interact; (rank, X) is null
            return self._rank_pair_rule(initiator)
        # Initiator is a line state.
        i = initiator - n + 1
        if responder >= n:
            j = responder - n + 1
            if i > j:
                return None
            if i < 2 * self._k:  # R3
                up = self.line_state(i + 1)
                return up, up
            return 0, 0  # R5 (i == j == 2k)
        # R4: line initiator, rank responder.
        if i <= self._k:  # red: propagate the reset
            x1 = self.line_state(1)
            return x1, x1
        return 0, responder  # green: relocate to the root

    def _rank_pair_rule(self, p: int) -> Transition:
        kind = self._tree.kind(p)
        if kind == NodeKind.LEAF:  # R2: reset trigger
            x1 = self.line_state(1)
            return x1, x1
        if kind == NodeKind.BRANCHING:  # R1, branching: both vacate
            return self._tree.left_child(p), self._tree.right_child(p)
        return p, p + 1  # R1, non-branching: responder descends

    # ------------------------------------------------------------------
    # Engine integration: three disjoint weight families
    # ------------------------------------------------------------------
    def build_families(self, counts: Sequence[int]) -> List[Family]:
        """R1/R2 as same-state pairs, R3/R5 as the triangular reset
        line, R4 as the (line × rank) ordered product.

        The jump engine compiles these into one fused weight index
        (:class:`~repro.core.fused.FusedIndex`): the reset line updates
        in O(1) from count moments and R4 collapses to one product
        slot, which is what makes reset storms cheap to simulate.
        """
        line = self._line_state_list
        return [
            SameStatePairs(counts, self._rank_state_list),
            TriangularLine(counts, line),
            OrderedProduct(counts, initiators=line,
                           responders=self._rank_state_list),
        ]

    def state_label(self, state: int) -> str:
        if state < self.num_ranks:
            return f"rank{state}"
        return f"X{self.line_index(state)}"

    @property
    def name(self) -> str:
        return f"TreeRanking(k={self._k})"


class TreeDispersalProtocol(RankingProtocol):
    """Rule R1 alone (no reset line): the Lemma 19–20 dispersal process.

    *Not* self-stabilising: from an unbalanced configuration it goes
    silent with an overloaded leaf and a missing rank.  From the
    all-at-the-root configuration (Lemma 19) it ranks perfectly in
    ``O(n log n)`` time whp (Lemma 20).
    """

    def __init__(self, num_agents: int) -> None:
        super().__init__(num_agents, num_extra_states=0)
        self._tree = PerfectlyBalancedTree(num_agents)

    @property
    def tree(self) -> PerfectlyBalancedTree:
        """The tree of ranks."""
        return self._tree

    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        if initiator != responder:
            return None
        p = initiator
        kind = self._tree.kind(p)
        if kind == NodeKind.LEAF:
            return None  # no R2: overloaded leaves are dead ends
        if kind == NodeKind.BRANCHING:
            return self._tree.left_child(p), self._tree.right_child(p)
        return p, p + 1

    def same_state_rule_states(self) -> List[int]:
        return [
            p for p in range(self.num_ranks) if not self._tree.is_leaf(p)
        ]

    def state_label(self, state: int) -> str:
        return f"rank{state}"

    @property
    def name(self) -> str:
        return "TreeDispersal"
