"""The "modified protocol" from the proof of Theorem 3 (proof device).

The Theorem 3 proof analyses a variant of the tree protocol in which
*all* line states are treated as green: rule R4 always performs
``X_i + j → 0 + j`` (no reset propagation), while R1–R3 and R5 are
unchanged.  Computations of the real protocol coincide with this
variant for as long as no red agent meets a tree agent, which is the
coupling the proof exploits.

**The modified protocol is not self-stabilising on its own** — and that
is the point of keeping it in the library.  Without the red phase an
unbalanced population can cycle forever: excess agents overload a leaf
(R2), travel up the line, drop back onto the root, and R1 washes them
down into the same overloaded subtree again.  The smallest witness is
``n = 3`` with both leaf states doubled-up reachable: the process
visits a finite set of non-silent configurations and the ranked
configuration is unreachable (see
``tests/protocols/test_modified_tree.py::TestNotSelfStabilising``).
The red half of the reset line exists precisely to break this cycle by
pulling *tree* agents into the line and replaying Lemma 19's clean
root dispersal.

From a *balanced* configuration (one where converting every line agent
to the root state leads to a perfect ranking) the modified protocol
does stabilise — that is the half of the coupling the proof uses, and
what the tests assert.
"""

from __future__ import annotations

from typing import Optional

from ..core.protocol import Transition
from .tree_protocol import TreeRankingProtocol

__all__ = ["ModifiedTreeProtocol"]


class ModifiedTreeProtocol(TreeRankingProtocol):
    """Tree protocol with R4 forced to its green branch (Thm 3 proof)."""

    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        n = self.num_ranks
        if initiator >= n and responder < n:
            # R4, always green: relocate the line agent to the root.
            return 0, responder
        return super().delta(initiator, responder)

    @property
    def name(self) -> str:
        return f"ModifiedTree(k={self.k})"
