"""Synchronous stdlib client for ``repro serve``.

Used by the integration tests, the CI ``serve-smoke`` job, and the
README examples: plain ``http.client`` for the JSON endpoints, a raw
socket speaking the shared :mod:`repro.serve.wire` frame grammar for
the WebSocket event stream.  No third-party dependency — the client
exercises exactly the wire format the server emits, so the
byte-identical-replay assertions compare real frames.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReproError
from .wire import OP_CLOSE, OP_TEXT, decode_frame, encode_frame

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one ``repro serve`` instance at ``host:port``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
    ) -> Tuple[int, Dict[str, str], Dict]:
        """One JSON request; returns ``(status, headers, body)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            data = json.loads(raw.decode("utf-8")) if raw.strip() else {}
            return response.status, header_map, data
        finally:
            connection.close()

    def submit(self, spec_dict: Dict) -> Tuple[int, Dict[str, str], Dict]:
        """POST a JobSpec dict to ``/v1/jobs``."""
        return self.request("POST", "/v1/jobs", payload=spec_dict)

    def job(self, job_id: str) -> Dict:
        status, _, data = self.request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise ReproError(
                f"GET /v1/jobs/{job_id} returned {status}: {data}"
            )
        return data

    def health(self) -> Dict:
        status, _, data = self.request("GET", "/v1/health")
        if status != 200:
            raise ReproError(f"health check returned {status}: {data}")
        return data

    def pause(self, job_id: str) -> Tuple[int, Dict]:
        status, _, data = self.request("POST", f"/v1/jobs/{job_id}/pause")
        return status, data

    def resume(self, job_id: str) -> Tuple[int, Dict]:
        status, _, data = self.request("POST", f"/v1/jobs/{job_id}/resume")
        return status, data

    # ------------------------------------------------------------------
    # WebSocket
    # ------------------------------------------------------------------
    def stream_events(
        self, job_id: str, raw: bool = False
    ) -> List:
        """Stream a job's events to completion.

        Connects ``/v1/ws/jobs/<id>``, reads text frames until the
        server's close frame (or EOF), and returns the parsed records —
        or, with ``raw=True``, the exact payload bytes of each frame
        (what the byte-identical-replay test compares).
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            handshake = (
                f"GET /v1/ws/jobs/{job_id} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            )
            sock.sendall(handshake.encode("latin-1"))
            head, leftover = self._read_until(sock, b"\r\n\r\n")
            status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in f"{status_line} ":
                raise ReproError(
                    f"websocket handshake refused: {status_line!r}"
                )
            # Frames may ride in the same TCP segment as the handshake
            # response; ``leftover`` is consumed before the socket is.
            buffered = bytearray(leftover)

            def recv_exact(count: int) -> bytes:
                while len(buffered) < count:
                    chunk = sock.recv(4096)
                    if not chunk:
                        raise ReproError(
                            "websocket connection closed mid-frame"
                        )
                    buffered.extend(chunk)
                taken = bytes(buffered[:count])
                del buffered[:count]
                return taken

            frames: List = []
            while True:
                try:
                    opcode, payload = decode_frame(recv_exact)
                except ReproError:
                    break  # abrupt close after the stream is also fine
                if opcode == OP_CLOSE:
                    try:
                        sock.sendall(
                            encode_frame(b"", opcode=OP_CLOSE, mask=True)
                        )
                    except OSError:
                        pass
                    break
                if opcode != OP_TEXT:
                    continue
                if raw:
                    frames.append(payload)
                else:
                    frames.append(json.loads(payload.decode("utf-8")))
            return frames
        finally:
            sock.close()

    @staticmethod
    def _read_until(
        sock: socket.socket, marker: bytes
    ) -> Tuple[bytes, bytes]:
        """Read up to ``marker``; returns ``(head, bytes-past-marker)``."""
        data = b""
        while marker not in data:
            chunk = sock.recv(4096)
            if not chunk:
                raise ReproError(
                    "connection closed before websocket handshake completed"
                )
            data += chunk
        head, _, rest = data.partition(marker)
        return head, rest
