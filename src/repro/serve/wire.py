"""Wire-level plumbing for ``repro serve``: HTTP parsing and WebSocket frames.

Everything here is stdlib-only and shared between the asyncio server
(:mod:`repro.serve.server`) and the synchronous test/CI client
(:mod:`repro.serve.client`): one frame *encoder* plus two symmetric
decoders — an async one reading from an ``asyncio.StreamReader`` and a
sync one reading through a ``recv_exact(n)`` callable — so both sides
speak bit-identical RFC 6455 frames without a third-party websocket
dependency.

Scope is deliberately small: final (unfragmented) frames, text /
binary / close / ping / pong opcodes, payloads up to 2**63-1 bytes.
That is the full vocabulary the job-event stream needs; anything more
exotic raises :class:`WireError` instead of being half-handled.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Callable, Dict, Tuple

from ..exceptions import ReproError

__all__ = [
    "WS_GUID",
    "WireError",
    "decode_frame",
    "decode_frame_async",
    "encode_frame",
    "http_response",
    "read_http_request",
    "websocket_accept",
]

#: RFC 6455 handshake GUID, concatenated to the client key before SHA-1.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Opcodes this implementation speaks.
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_MAX_HEAD = 64 * 1024  # request-line + headers cap
_MAX_BODY = 16 * 1024 * 1024  # JobSpecs are small; this is generous


class WireError(ReproError):
    """Malformed HTTP request or WebSocket frame."""


def websocket_accept(key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """Encode one final WebSocket frame.

    Servers send unmasked frames (``mask=False``); clients must mask
    (``mask=True``, RFC 6455 §5.3) — the masking key is random, which
    is fine because masking is a transport detail the decoder strips
    before any payload comparison.
    """
    head = bytearray()
    head.append(0x80 | (opcode & 0x0F))  # FIN + opcode
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return bytes(head) + masked
    return bytes(head) + payload


def _parse_head(first: bytes, second: bytes) -> Tuple[int, bool, int, bool]:
    """Shared header interpretation: (opcode, fin, length7, masked)."""
    b0, b1 = first[0], second[0]
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise WireError("websocket frame uses reserved bits")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    return opcode, fin, b1 & 0x7F, masked


def _unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))


def decode_frame(recv_exact: Callable[[int], bytes]) -> Tuple[int, bytes]:
    """Decode one frame synchronously; returns ``(opcode, payload)``.

    ``recv_exact(n)`` must return exactly ``n`` bytes or raise — the
    sync client wraps a socket with such a helper.
    """
    opcode, fin, length, masked = _parse_head(recv_exact(1), recv_exact(1))
    if not fin:
        raise WireError("fragmented websocket frames are not supported")
    if length == 126:
        length = struct.unpack("!H", recv_exact(2))[0]
    elif length == 127:
        length = struct.unpack("!Q", recv_exact(8))[0]
    key = recv_exact(4) if masked else b""
    payload = recv_exact(length) if length else b""
    if masked:
        payload = _unmask(payload, key)
    return opcode, payload


async def decode_frame_async(reader) -> Tuple[int, bytes]:
    """Decode one frame from an ``asyncio.StreamReader``.

    Same grammar as :func:`decode_frame`; the server uses this to read
    client frames (which RFC 6455 requires to be masked — unmasked
    client frames are rejected).
    """
    opcode, fin, length, masked = _parse_head(
        await reader.readexactly(1), await reader.readexactly(1)
    )
    if not fin:
        raise WireError("fragmented websocket frames are not supported")
    if length == 126:
        length = struct.unpack("!H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack("!Q", await reader.readexactly(8))[0]
    if not masked and opcode != OP_CLOSE:
        raise WireError("client websocket frames must be masked")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = _unmask(payload, key)
    return opcode, payload


async def read_http_request(
    reader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``.

    Header names are lower-cased; the body is read to ``Content-Length``
    (chunked encoding is not supported — the server's clients are curl,
    the sync test client, and browsers sending small JSON bodies).
    """
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEAD:
        raise WireError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise WireError(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise WireError(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > _MAX_BODY:
        raise WireError(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


_STATUS_TEXT = {
    101: "Switching Protocols",
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def http_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one HTTP/1.1 response (``Connection: close`` always)."""
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
