"""Job execution for ``repro serve``: one JobSpec in, plain data out.

:func:`execute_jobspec` is the bridge between the asyncio front door
(:mod:`repro.serve.server`) and the synchronous simulation stack.  It
runs inside a worker thread, reports progress through an ``emit``
callback (records in the :mod:`repro.obs.trace` vocabulary, pushed
thread-safely onto the event loop by the server), and honours a
:class:`JobControl` pause request at safe boundaries:

* **simulate** jobs run the engine in bounded event chunks; a pause
  captures an :class:`~repro.core.snapshot.EngineSnapshot` and returns
  a *park* blob — plain data the server holds until ``resume``, when
  :func:`~repro.core.snapshot.resume_engine` continues the trajectory
  bit-for-bit.
* **scenario** jobs pause between repetitions (serial) or between
  dispatch batches (pooled); the park blob is just the next run index
  plus the records already finished — repetition seeds are re-spawned
  deterministically from the spec on resume.

Everything returned — results, park blobs, emitted records — is
wall-clock-free plain data, which is what lets the server cache a
finished job by its spec digest and replay it byte-identically.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict, List, Optional

from repro._deps import HAVE_NUMPY, np

from ..core.configuration import Configuration
from ..core.engine import build_engine
from ..core.snapshot import EngineSnapshot, resume_engine
from ..analysis.supervision import SupervisionPolicy, supervised_map
from ..ensemble.runner import run_record
from ..exceptions import ReproError
from ..jobspec import JobSpec
from ..scenarios.campaign import _campaign_job
from ..scenarios.engine import run_scenario

__all__ = ["JobControl", "execute_jobspec", "spawn_seeds"]

#: Productive events between pause checks / progress records on a
#: simulate job.  Purely an observation granularity — the trajectory is
#: chunk-size-invariant because ``run()`` boundaries are exact.
SIMULATE_CHUNK_EVENTS = 4096


class JobControl:
    """Thread-safe pause flag, polled by the executor at safe points."""

    def __init__(self) -> None:
        self._pause = threading.Event()

    @property
    def pause_requested(self) -> bool:
        return self._pause.is_set()

    def request_pause(self) -> None:
        self._pause.set()

    def clear_pause(self) -> None:
        self._pause.clear()


def spawn_seeds(seed: int, count: int) -> List:
    """Per-repetition seeds, matching campaign seeding discipline.

    With numpy this is exactly :func:`run_campaign`'s spawn — one root
    ``SeedSequence`` split into independent children before dispatch —
    so a scenario JobSpec reproduces ``repro scenario run`` bit for
    bit.  Without numpy (where only simulate-mode jobs can actually
    run) the fallback derives independent integer seeds by hashing.
    """
    if HAVE_NUMPY:
        return list(np.random.SeedSequence(seed).spawn(count))
    return [
        int.from_bytes(
            hashlib.sha256(f"{seed}/{index}".encode("ascii")).digest()[:8],
            "big",
        )
        for index in range(count)
    ]


def _annotate(record: Dict, run: int) -> Dict:
    """Stamp a per-run logical record with its run index (merge order)."""
    out = {"kind": record["kind"], "run": run}
    out.update((k, v) for k, v in record.items() if k != "kind")
    return out


def _emit_safely(emit: Optional[Callable[[Dict], None]], record: Dict) -> None:
    if emit is None:
        return
    try:
        emit(record)
    except Exception:
        pass


def _execute_simulate(
    spec: JobSpec,
    emit: Optional[Callable[[Dict], None]],
    control: Optional[JobControl],
    park: Optional[Dict],
) -> Dict:
    protocol = spec.scenario.protocol.build()
    if park is not None:
        snapshot = EngineSnapshot.from_dict(park["snapshot"])
        driver = resume_engine(protocol, snapshot)
        engine_name = park["engine_name"]
    else:
        configuration = spec.start_configuration(protocol)
        driver, engine_name = build_engine(
            protocol,
            configuration,
            seed=spec.seed,
            engine=spec.engine,
            backend=spec.backend,
        )
    event_cap = spec.max_events
    interaction_cap = spec.max_interactions
    while True:
        if control is not None and control.pause_requested:
            snap = driver.snapshot()
            return {
                "status": "paused",
                "park": {
                    "mode": "simulate",
                    "engine_name": engine_name,
                    "snapshot": snap.to_dict(),
                },
            }
        chunk_cap = driver.events + SIMULATE_CHUNK_EVENTS
        if event_cap is not None:
            chunk_cap = min(chunk_cap, event_cap)
        silent = driver.run(
            max_interactions=interaction_cap, max_events=chunk_cap
        )
        _emit_safely(
            emit,
            {
                "kind": "job_progress",
                "events": driver.events,
                "interactions": driver.interactions,
            },
        )
        if silent:
            reason = "silence"
            break
        if event_cap is not None and driver.events >= event_cap:
            reason = "events"
            break
        if (
            interaction_cap is not None
            and driver.interactions >= interaction_cap
        ):
            reason = "interactions"
            break
    configuration = Configuration(driver.counts)
    return {
        "status": "done",
        "result": {
            "mode": "simulate",
            "protocol": protocol.name,
            "engine": engine_name,
            "num_agents": protocol.num_agents,
            "silent": silent,
            "stop_reason": reason,
            "interactions": driver.interactions,
            "events": driver.events,
            "counts": configuration.counts_list(),
        },
    }


def _scenario_summary(
    spec: JobSpec, run_records: List[Dict], failures: List[str]
) -> Dict:
    recovered = sum(1 for record in run_records if record["recovered_all"])
    return {
        "status": "done",
        "result": {
            "mode": "scenario",
            "scenario": spec.scenario.name,
            "protocol": spec.scenario.protocol.kind,
            "repetitions": len(run_records),
            "recovered_fraction": (
                recovered / len(run_records) if run_records else 0.0
            ),
            "runs": run_records,
            "failures": failures,
        },
    }


def _execute_scenario(
    spec: JobSpec,
    emit: Optional[Callable[[Dict], None]],
    control: Optional[JobControl],
    workers: Optional[int],
    park: Optional[Dict],
) -> Dict:
    scenario = spec.scenario
    seeds = spawn_seeds(spec.seed, spec.repetitions)
    start = int(park["next_run"]) if park is not None else 0
    run_records: List[Dict] = list(park["run_records"]) if park else []
    failures: List[str] = list(park["failures"]) if park else []

    def parked(next_run: int) -> Dict:
        return {
            "status": "paused",
            "park": {
                "mode": "scenario",
                "next_run": next_run,
                "run_records": run_records,
                "failures": failures,
            },
        }

    if workers is None or workers <= 1:
        # Serial: each repetition streams its logical records live
        # through the run_scenario observer seam.
        for index in range(start, spec.repetitions):
            if control is not None and control.pause_requested:
                return parked(index)
            result = run_scenario(
                scenario,
                seed=seeds[index],
                default_max_events=spec.max_events,
                trace_observer=lambda record, run=index: _emit_safely(
                    emit, _annotate(record, run)
                ),
            )
            run_records.append(run_record(result, index))
        return _scenario_summary(spec, run_records, failures)

    # Pooled: repetitions fan out over the supervised process pool in
    # bounded batches — observers do not pickle, so streaming happens at
    # batch granularity from the traces the workers ship back.
    batch = max(1, workers * 4)
    index = start
    policy = SupervisionPolicy(fail_fast=False)
    while index < spec.repetitions:
        if control is not None and control.pause_requested:
            return parked(index)
        stop = min(spec.repetitions, index + batch)
        jobs = [
            (scenario, seeds[run], spec.max_events, True)
            for run in range(index, stop)
        ]
        results, batch_failures = supervised_map(
            _campaign_job, jobs, workers=workers, policy=policy
        )
        failures.extend(repr(failure) for failure in batch_failures)
        for offset, result in enumerate(results):
            if result is None:
                continue
            run = index + offset
            for record in result.trace_events:
                _emit_safely(emit, _annotate(record, run))
            run_records.append(run_record(result, run))
        index = stop
    return _scenario_summary(spec, run_records, failures)


def execute_jobspec(
    spec: JobSpec,
    emit: Optional[Callable[[Dict], None]] = None,
    control: Optional[JobControl] = None,
    workers: Optional[int] = None,
    park: Optional[Dict] = None,
) -> Dict:
    """Run one JobSpec to completion or a pause point.

    Returns ``{"status": "done", "result": ...}`` (wall-clock-free
    plain data) or ``{"status": "paused", "park": ...}`` — a blob to
    hand back as ``park`` on resume.  ``emit`` receives each streamed
    record; ``workers`` sizes the supervised pool for scenario
    repetitions (simulate jobs are single-trajectory and ignore it).
    """
    if park is not None and park.get("mode") != spec.mode:
        raise ReproError(
            f"park blob is for a {park.get('mode')!r} job, "
            f"spec is {spec.mode!r}"
        )
    if spec.mode == "simulate":
        return _execute_simulate(spec, emit, control, park)
    return _execute_scenario(spec, emit, control, workers, park)
