"""Simulation-as-a-service: the ``repro serve`` HTTP/WebSocket surface.

Stdlib-only (asyncio + sockets) — the ``repro[serve]`` extra exists as
an installation marker but pins nothing, so the server runs anywhere
the core package does, with or without numpy.  Every request is one
versioned :class:`~repro.jobspec.JobSpec`; see
:mod:`repro.serve.server` for the endpoint contract.
"""

from .client import ServeClient
from .runner import JobControl, execute_jobspec, spawn_seeds
from .server import Job, ReproServer, serve_forever

__all__ = [
    "Job",
    "JobControl",
    "ReproServer",
    "ServeClient",
    "execute_jobspec",
    "serve_forever",
    "spawn_seeds",
]
