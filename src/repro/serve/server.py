"""``repro serve``: simulation-as-a-service over one versioned JobSpec.

:class:`ReproServer` is a stdlib-only asyncio HTTP + WebSocket server.
Every request surface speaks the same :class:`~repro.jobspec.JobSpec`
the CLI and the programmatic API construct — there is no server-side
dialect.

Endpoints (all JSON):

* ``POST /v1/jobs`` — submit a v1 JobSpec.  ``202`` queued, ``200``
  when the digest is already cached (replayed without re-running) or
  already in flight (deduplicated), ``400`` naming the offending field,
  ``429`` + ``Retry-After`` when the bounded job queue is full.
* ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` — registry / one job
  (result included once done).
* ``POST /v1/jobs/<id>/pause`` / ``.../resume`` — park a running job
  via the engine-snapshot seam and re-enqueue it later.
* ``GET /v1/health`` — liveness + queue depth.
* ``GET /v1/ws/jobs/<id>`` (WebSocket) — the job's event stream:
  history replayed first, then live records as the executor emits them,
  closing after the terminal ``job_done`` record.

Concurrency model: one dispatcher task pulls jobs off a bounded
``asyncio.Queue`` (the backpressure boundary — submissions that do not
fit are rejected, never buffered) and runs each on a single executor
thread; the synchronous runner reports records back through
``loop.call_soon_threadsafe``, so all registry state is touched only on
the event loop.  Scenario repetitions still fan out over the supervised
*process* pool inside the runner, so one job saturates the machine
while the front door stays responsive.

Results are cached by ``JobSpec.digest()`` — the sha256 of the
canonical spec, which already folds in the seed — and replays stream
the stored records byte-identically (no wall-clock fields, no job ids
in the stream).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..jobspec import JobSpec, JobSpecError
from .runner import JobControl, execute_jobspec
from .wire import (
    OP_CLOSE,
    OP_TEXT,
    WireError,
    encode_frame,
    http_response,
    read_http_request,
    websocket_accept,
)

__all__ = ["Job", "ReproServer", "serve_forever"]

_JOB_PATH = re.compile(r"^/v1/jobs/(job-\d+)$")
_JOB_ACTION_PATH = re.compile(r"^/v1/jobs/(job-\d+)/(pause|resume)$")
_WS_PATH = re.compile(r"^/v1/ws/jobs/(job-\d+)$")

#: Retry hint (seconds) sent with a 429 queue-full rejection.
RETRY_AFTER_S = 1


class Job:
    """One submitted job: spec, lifecycle state, and its event history."""

    def __init__(self, job_id: str, spec: JobSpec, digest: str) -> None:
        self.id = job_id
        self.spec = spec
        self.digest = digest
        self.status = "queued"  # queued|running|paused|done|failed
        self.cached = False
        self.events: List[Dict] = []
        self.result: Optional[Dict] = None
        self.error: Optional[str] = None
        self.park: Optional[Dict] = None
        self.control = JobControl()
        self.subscribers: List[asyncio.Queue] = []

    def describe(self, include_result: bool = False) -> Dict:
        info = {
            "id": self.id,
            "digest": self.digest,
            "status": self.status,
            "cached": self.cached,
            "mode": self.spec.mode,
            "events": len(self.events),
        }
        if self.error is not None:
            info["error"] = self.error
        if include_result and self.result is not None:
            info["result"] = self.result
        return info


class ReproServer:
    """Asyncio front door; see the module docstring for the protocol.

    ``dispatch=False`` registers submissions without ever starting the
    dispatcher — jobs stay queued, which makes bounded-queue rejection
    deterministic to test.  ``workers`` sizes the supervised process
    pool scenario jobs fan out over (``None`` = serial, which streams
    records live per repetition).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 16,
        cache_size: int = 32,
        workers: Optional[int] = None,
        dispatch: bool = True,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.queue_size = queue_size
        self.cache_size = cache_size
        self.workers = workers
        self._dispatch_enabled = dispatch
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._active_by_digest: Dict[str, str] = {}
        self._cache: "OrderedDict[str, Dict]" = OrderedDict()
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._counter = 0
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._dispatch_enabled:
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self.port

    async def stop(self) -> None:
        """Graceful wind-down: stop intake, park the running job, join."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for job in self._jobs.values():
            if job.status == "running":
                job.control.request_pause()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Job registry (event-loop-thread only)
    # ------------------------------------------------------------------
    def _new_job(self, spec: JobSpec, digest: str) -> Job:
        self._counter += 1
        job = Job(f"job-{self._counter:04d}", spec, digest)
        self._jobs[job.id] = job
        return job

    def _publish(self, job: Job, record: Dict) -> None:
        job.events.append(record)
        for queue in list(job.subscribers):
            queue.put_nowait(record)

    def _finish_subscribers(self, job: Job) -> None:
        for queue in list(job.subscribers):
            queue.put_nowait(None)

    def _cache_store(self, digest: str, entry: Dict) -> None:
        self._cache[digest] = entry
        self._cache.move_to_end(digest)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def submit_spec(self, spec: JobSpec) -> Tuple[int, Dict, Tuple]:
        """Register one spec; returns ``(status, payload, headers)``."""
        digest = spec.digest()
        cached = self._cache.get(digest)
        if cached is not None:
            # Replay: a finished job with the stored history — the
            # WebSocket stream and result are byte-identical to the
            # original run, and nothing is re-executed.
            self._cache.move_to_end(digest)
            job = self._new_job(spec, digest)
            job.status = "done"
            job.cached = True
            job.result = cached["result"]
            job.events = list(cached["events"])
            return 200, job.describe(), ()
        active_id = self._active_by_digest.get(digest)
        if active_id is not None and active_id in self._jobs:
            info = self._jobs[active_id].describe()
            info["deduplicated"] = True
            return 200, info, ()
        if self._queue is None:
            return 500, {"error": "server is not started"}, ()
        job = self._new_job(spec, digest)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            del self._jobs[job.id]
            self._counter -= 1
            return (
                429,
                {
                    "error": (
                        f"job queue is full ({self.queue_size} pending); "
                        f"retry in {RETRY_AFTER_S}s"
                    ),
                    "retry_after": RETRY_AFTER_S,
                },
                (("Retry-After", str(RETRY_AFTER_S)),),
            )
        self._active_by_digest[digest] = job.id
        return 202, job.describe(), ()

    def _pause_job(self, job: Job) -> Tuple[int, Dict]:
        if job.status != "running":
            return 409, {
                "error": f"job {job.id} is {job.status}, not running",
            }
        job.control.request_pause()
        info = job.describe()
        info["status"] = "pausing"
        return 202, info

    def _resume_job(self, job: Job) -> Tuple[int, Dict]:
        if job.status != "paused":
            return 409, {
                "error": f"job {job.id} is {job.status}, not paused",
            }
        try:
            job.status = "queued"
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            job.status = "paused"
            return 429, {
                "error": "job queue is full; retry resume later",
                "retry_after": RETRY_AFTER_S,
            }
        self._active_by_digest[job.digest] = job.id
        return 202, job.describe()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job = await self._queue.get()
            if job.status != "queued":
                continue
            resuming = job.park is not None
            job.status = "running"
            self._publish(
                job,
                {
                    "kind": "job_resumed" if resuming else "job_start",
                    "digest": job.digest,
                },
            )

            def emit(record: Dict, target: Job = job) -> None:
                loop.call_soon_threadsafe(self._publish, target, record)

            try:
                outcome = await loop.run_in_executor(
                    self._executor,
                    execute_jobspec,
                    job.spec,
                    emit,
                    job.control,
                    self.workers,
                    job.park,
                )
            except Exception as exc:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self._active_by_digest.pop(job.digest, None)
                self._publish(
                    job,
                    {
                        "kind": "job_done",
                        "digest": job.digest,
                        "status": "failed",
                    },
                )
                self._finish_subscribers(job)
                continue
            if outcome["status"] == "paused":
                job.park = outcome["park"]
                job.control.clear_pause()
                job.status = "paused"
                self._active_by_digest.pop(job.digest, None)
                self._publish(
                    job, {"kind": "job_paused", "digest": job.digest}
                )
                continue
            job.result = outcome["result"]
            job.park = None
            job.status = "done"
            self._active_by_digest.pop(job.digest, None)
            self._publish(
                job,
                {"kind": "job_done", "digest": job.digest, "status": "done"},
            )
            self._cache_store(
                job.digest,
                {"result": job.result, "events": list(job.events)},
            )
            self._finish_subscribers(job)

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            method, path, headers, body = await read_http_request(reader)
        except (
            WireError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            if headers.get("upgrade", "").lower() == "websocket":
                await self._handle_websocket(reader, writer, path, headers)
                return
            status, payload, extra = self._route(method, path, body)
            body_bytes = (
                json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
            )
            writer.write(
                http_response(status, body_bytes, extra_headers=tuple(extra))
            )
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict, Tuple]:
        if path == "/v1/health" and method == "GET":
            return (
                200,
                {
                    "status": "ok",
                    "jobs": len(self._jobs),
                    "queue_depth": self._queue.qsize() if self._queue else 0,
                    "queue_size": self.queue_size,
                },
                (),
            )
        if path == "/v1/jobs" and method == "POST":
            try:
                data = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                return 400, {"error": f"body is not valid JSON: {exc}"}, ()
            try:
                spec = JobSpec.from_dict(data)
            except JobSpecError as exc:
                payload = {"error": str(exc)}
                if exc.field is not None:
                    payload["field"] = exc.field
                return 400, payload, ()
            return self.submit_spec(spec)
        if path == "/v1/jobs" and method == "GET":
            return (
                200,
                {
                    "jobs": [job.describe() for job in self._jobs.values()],
                    "queue_depth": self._queue.qsize() if self._queue else 0,
                },
                (),
            )
        match = _JOB_PATH.match(path)
        if match and method == "GET":
            job = self._jobs.get(match.group(1))
            if job is None:
                return 404, {"error": f"no job {match.group(1)}"}, ()
            return 200, job.describe(include_result=True), ()
        match = _JOB_ACTION_PATH.match(path)
        if match and method == "POST":
            job = self._jobs.get(match.group(1))
            if job is None:
                return 404, {"error": f"no job {match.group(1)}"}, ()
            if match.group(2) == "pause":
                status, payload = self._pause_job(job)
            else:
                status, payload = self._resume_job(job)
            return status, payload, ()
        if path.startswith("/v1/"):
            return 404, {"error": f"no route for {method} {path}"}, ()
        return 404, {"error": "unknown path (the API lives under /v1/)"}, ()

    # ------------------------------------------------------------------
    # WebSocket
    # ------------------------------------------------------------------
    async def _handle_websocket(self, reader, writer, path, headers) -> None:
        match = _WS_PATH.match(path)
        key = headers.get("sec-websocket-key")
        if match is None or key is None:
            writer.write(
                http_response(
                    400 if key is None else 404,
                    b'{"error": "bad websocket request"}\n',
                )
            )
            await writer.drain()
            return
        job = self._jobs.get(match.group(1))
        if job is None:
            writer.write(
                http_response(404, b'{"error": "no such job"}\n')
            )
            await writer.drain()
            return
        handshake = (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
        )
        writer.write(handshake.encode("latin-1"))
        await writer.drain()

        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        # No awaits between subscribing and copying: records published
        # before this point are exactly the history, later ones land in
        # the queue — each record reaches the client exactly once.
        history = list(job.events)
        try:
            for record in history:
                await self._send_record(writer, record)
            while job.status not in ("done", "failed") or not queue.empty():
                record = await queue.get()
                if record is None:
                    break
                await self._send_record(writer, record)
            writer.write(encode_frame(b"", opcode=OP_CLOSE))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)

    @staticmethod
    async def _send_record(writer, record: Dict) -> None:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        writer.write(encode_frame(payload, opcode=OP_TEXT))
        await writer.drain()


async def serve_forever(
    host: str = "127.0.0.1",
    port: int = 0,
    queue_size: int = 16,
    cache_size: int = 32,
    workers: Optional[int] = None,
) -> int:
    """Run the server until SIGTERM/SIGINT; returns the CLI exit code.

    Mirrors ``repro ensemble join``'s shutdown contract: SIGTERM winds
    down gracefully (running job parked at a safe boundary) and maps to
    exit code 143, SIGINT to 130.
    """
    server = ReproServer(
        host=host,
        port=port,
        queue_size=queue_size,
        cache_size=cache_size,
        workers=workers,
    )
    bound = await server.start()
    print(f"repro serve listening on {host}:{bound}", flush=True)
    loop = asyncio.get_event_loop()
    stopping = asyncio.Event()
    exit_code = {"code": 0}

    def request_stop(code: int) -> None:
        exit_code["code"] = code
        stopping.set()

    installed = []
    for signum, code in ((signal.SIGTERM, 143), (signal.SIGINT, 130)):
        try:
            loop.add_signal_handler(signum, request_stop, code)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stopping.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    print("repro serve stopped", flush=True)
    return exit_code["code"]
