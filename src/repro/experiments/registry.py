"""Registry of all reproduction experiments.

Each entry maps an experiment id (the ids used in DESIGN.md §5 and
EXPERIMENTS.md) to its runner and provenance.  The CLI and benchmarks
resolve experiments exclusively through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import ExperimentError
from . import (
    ablation,
    ag_quadratic,
    campaigns,
    crossover,
    engine_equivalence,
    figures,
    kdistant,
    line_scaling,
    summary,
    tradeoff,
    trap_drain,
    tree_paths,
    tree_scaling,
)
from .base import ExperimentResult

__all__ = ["Experiment", "REGISTRY", "get_experiment", "list_experiments", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment with provenance metadata."""

    experiment_id: str
    runner: Callable[..., ExperimentResult]
    description: str
    paper_reference: str


def _entry(experiment_id, runner, description, paper_reference):
    return Experiment(
        experiment_id=experiment_id,
        runner=runner,
        description=description,
        paper_reference=paper_reference,
    )


REGISTRY: Dict[str, Experiment] = {
    e.experiment_id: e
    for e in [
        _entry("figure1", figures.run_figure1, figures.DESCRIPTION_FIG1,
               "Figure 1 (§4.2)"),
        _entry("figure2", figures.run_figure2, figures.DESCRIPTION_FIG2,
               "Figure 2 (§5)"),
        _entry("summary", summary.run, summary.DESCRIPTION,
               summary.PAPER_REFERENCE),
        _entry("ag_quadratic", ag_quadratic.run, ag_quadratic.DESCRIPTION,
               ag_quadratic.PAPER_REFERENCE),
        _entry("kdistant_vs_k", kdistant.run_vs_k, kdistant.DESCRIPTION_VS_K,
               kdistant.PAPER_REFERENCE),
        _entry("kdistant_vs_n", kdistant.run_vs_n, kdistant.DESCRIPTION_VS_N,
               kdistant.PAPER_REFERENCE),
        _entry("ring_arbitrary", kdistant.run_arbitrary,
               kdistant.DESCRIPTION_ARBITRARY, kdistant.PAPER_REFERENCE),
        _entry("crossover", crossover.run, crossover.DESCRIPTION,
               crossover.PAPER_REFERENCE),
        _entry("line_scaling", line_scaling.run, line_scaling.DESCRIPTION,
               line_scaling.PAPER_REFERENCE),
        _entry("tree_scaling", tree_scaling.run, tree_scaling.DESCRIPTION,
               tree_scaling.PAPER_REFERENCE),
        _entry("trap_drain", trap_drain.run_drain,
               trap_drain.DESCRIPTION_DRAIN, trap_drain.PAPER_REFERENCE),
        _entry("tidy_time", trap_drain.run_tidy, trap_drain.DESCRIPTION_TIDY,
               trap_drain.PAPER_REFERENCE),
        _entry("tree_paths", tree_paths.run_paths,
               tree_paths.DESCRIPTION_PATHS, tree_paths.PAPER_REFERENCE),
        _entry("reset_line", tree_paths.run_reset,
               tree_paths.DESCRIPTION_RESET, tree_paths.PAPER_REFERENCE),
        _entry("engine_equivalence", engine_equivalence.run,
               engine_equivalence.DESCRIPTION,
               engine_equivalence.PAPER_REFERENCE),
        _entry("state_time_tradeoff", tradeoff.run, tradeoff.DESCRIPTION,
               tradeoff.PAPER_REFERENCE),
        _entry("reset_ablation", ablation.run, ablation.DESCRIPTION,
               ablation.PAPER_REFERENCE),
        _entry("scenario_ag_recovery", campaigns.run_ag,
               campaigns.DESCRIPTION_AG, campaigns.PAPER_REFERENCE),
        _entry("scenario_tree_recovery", campaigns.run_tree,
               campaigns.DESCRIPTION_TREE, campaigns.PAPER_REFERENCE),
        _entry("scenario_line_churn", campaigns.run_line_churn,
               campaigns.DESCRIPTION_LINE, campaigns.PAPER_REFERENCE),
        _entry("scenario_epoch_ag", campaigns.run_epoch_ag,
               campaigns.DESCRIPTION_EPOCH_AG, campaigns.PAPER_REFERENCE),
        _entry("scenario_epoch_tree", campaigns.run_epoch_tree,
               campaigns.DESCRIPTION_EPOCH_TREE, campaigns.PAPER_REFERENCE),
    ]
}


def list_experiments() -> List[Experiment]:
    """All experiments, in registry (DESIGN.md) order."""
    return list(REGISTRY.values())


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id."""
    if experiment_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        )
    return REGISTRY[experiment_id]


def run_experiment(
    experiment_id: str,
    scale: str = "small",
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Resolve and run one experiment.

    ``workers`` > 1 fans the experiment's sweep repetitions out over a
    process pool (bit-identical to serial; experiments that do not
    sweep accept and ignore the knob).
    """
    return get_experiment(experiment_id).runner(
        scale=scale, seed=seed, workers=workers
    )
