"""EXPERIMENTS.md generator: run everything, record paper-vs-measured.

``python -m repro report --scale small --output EXPERIMENTS.md`` runs
every registered experiment and writes the Markdown record: one section
per experiment with the paper's claim, the regenerated table, and an
automatic verdict extracted from the raw results.
"""

from __future__ import annotations

import datetime
import io
from typing import Dict, Optional

from .base import ExperimentResult
from .registry import REGISTRY

__all__ = ["generate_report", "PAPER_CLAIMS"]

# What the paper says, per experiment — rendered next to measurements.
PAPER_CLAIMS: Dict[str, str] = {
    "figure1": (
        "Figure 1 shows the cubic routing graph G on m²=16 lines with "
        "diameter 4⌈log m⌉; worked example: line 1 has neighbours 2, 3, 8."
    ),
    "figure2": (
        "Figure 2 shows the perfectly balanced tree of ranks for n=9; "
        "trees exist for every n, with uniform levels and height ≤ 2·log₂ n."
    ),
    "summary": (
        "Contributions: AG is Θ(n²) with x=0; ring of traps is "
        "O(min(k·n^{3/2}, n²·log²n)) with x=0; line of traps is "
        "O(n^{7/4}·log²n) with x=1; tree protocol is O(n·log n) with "
        "x=O(log n).  All stable, silent; all ≥ the Ω(n) lower bound."
    ),
    "ag_quadratic": "The generic protocol AG stabilises in Θ(n²) time whp.",
    "kdistant_vs_k": (
        "Theorem 1/Lemma 3: from a k-distant configuration the ring "
        "stabilises in O(k·n^{3/2}) — at most linear growth in k."
    ),
    "kdistant_vs_n": (
        "Theorem 1: at fixed k the ring's time scales like n^{3/2}, "
        "strictly below the n² baseline."
    ),
    "ring_arbitrary": (
        "Lemma 4: from arbitrary configurations the ring stabilises in "
        "O(n²·log²n) whp."
    ),
    "crossover": (
        "Theorem 1 corollary: for k = o(√n) the ring beats the Θ(n²) "
        "barrier; the advantage is lost around k = Θ(√n)."
    ),
    "line_scaling": (
        "Theorem 2: one extra state admits ranking in O(n^{7/4}·log²n) "
        "= o(n²) from arbitrary configurations."
    ),
    "tree_scaling": (
        "Theorem 3: x = O(log n) extra states admit ranking in "
        "O(n·log n) whp — the best known bound."
    ),
    "trap_drain": (
        "Lemma 1: a trap with surplus l releases ⌊(l+1)/2⌋ agents in "
        "time m·n whp, and all l agents in m·n·(⌈log(l+1)⌉+1)."
    ),
    "tidy_time": "Lemma 2: configurations become and remain tidy in m·n whp.",
    "tree_paths": (
        "Lemmas 19–20: with all agents at the root, rule R1 occupies "
        "every rank (perfect dispersal) in O(n·log n) whp."
    ),
    "reset_line": (
        "Lemma 21: after a reset signal, all agents gather in the line "
        "states within O(log n) time whp."
    ),
    "engine_equivalence": (
        "Methodology: the geometric-jump engine is exact — same "
        "distribution as the naive scheduler (DESIGN.md §4)."
    ),
    "state_time_tradeoff": (
        "The paper's theme: extra states buy speed (n² at x=0 down to "
        "n·log n at x=O(log n)); §6 asks what happens below."
    ),
    "reset_ablation": (
        "§5's design: overload detection (R2) plus the red reset phase "
        "are both necessary; the Thm 3 proof's all-green variant is only "
        "a coupling device, not a protocol."
    ),
    "scenario_ag_recovery": (
        "Self-stabilisation contract: from *any* configuration — here "
        "corruption and crashes injected mid-run — AG re-silences; "
        "recovery after a k-agent fault is the §3 k-distant regime."
    ),
    "scenario_tree_recovery": (
        "Thm 3's protocol recovers from mid-run corruption and crash "
        "waves into its reset line; the reset machinery (§5) absorbs "
        "the fault without a fresh start."
    ),
    "scenario_line_churn": (
        "Thm 2's protocol under churn: departures/arrivals resize n "
        "mid-run (within one lattice window) and the population "
        "re-silences after every wave."
    ),
    "scenario_epoch_ag": (
        "Self-stabilisation is adversary-agnostic (§1): the AG "
        "baseline re-silences even when the fair scheduler's bias "
        "switches mid-run (alternating cluster suppression)."
    ),
    "scenario_epoch_tree": (
        "Thm 4's protocol recovers from a crash wave under a bias "
        "inverted at the moment of first silence — recovery bounds "
        "hold under any fair scheduler, time-varying included (§1)."
    ),
}


def _verdict(result: ExperimentResult) -> Optional[str]:
    """One-line measured-vs-claimed verdict from raw results."""
    raw = result.raw
    eid = result.experiment_id
    if eid == "figure1":
        ok = raw.get("example_matches_paper")
        return (
            "regenerated graph matches the paper's worked example "
            "exactly" if ok else "MISMATCH against the worked example"
        )
    if eid == "figure2":
        ok = raw.get("figure2_exact_match")
        return (
            "n=9 tree matches Figure 2 node-for-node"
            if ok else "MISMATCH against Figure 2"
        )
    if eid == "ag_quadratic":
        return f"measured growth exponent {raw['exponent']:.2f} (claim: 2)"
    if eid == "kdistant_vs_k":
        return (
            f"measured time ~ k^{raw['exponent_in_k']:.2f} — within the "
            "linear-in-k envelope (sublinear: parallel gap-filling beats "
            "the bound)"
        )
    if eid == "kdistant_vs_n":
        return f"measured exponent {raw['exponent']:.2f} (claim: 1.5)"
    if eid == "ring_arbitrary":
        return (
            f"measured exponent {raw['exponent']:.2f} — within the "
            "n²·log²n envelope"
        )
    if eid == "crossover":
        k = raw.get("crossover_k")
        sqrt_n = raw["sqrt_n"]
        if k is None:
            return (
                f"advantage ≥2x everywhere tested (√n ≈ {sqrt_n:.1f})"
            )
        return (
            f"advantage lost at k ≈ {k}, √n ≈ {sqrt_n:.1f} — crossover "
            "at Θ(√n) as claimed"
        )
    if eid == "line_scaling":
        if "exponent" in raw:
            return (
                f"measured exponent {raw['exponent']:.2f} after removing "
                "log²n (claim: 1.75); time/n² shrinks with n"
            )
        return "time/n² shrinks with n (o(n²) evidence)"
    if eid == "tree_scaling":
        return (
            f"measured exponents {raw['exponent_random']:.2f} (random) / "
            f"{raw['exponent_pileup']:.2f} (pile-up) after removing log n "
            "(claim: 1)"
        )
    if eid == "trap_drain":
        rows = raw["rows"]
        ratios = [
            row["half_median"] / (row["m"] * (row["m"] + 1 + row["surplus"]))
            for row in rows
        ]
        return (
            f"half-release time / (m·n) spans "
            f"[{min(ratios):.2f}, {max(ratios):.2f}] across all m and l — "
            "flat, as Lemma 1's m·n envelope predicts"
        )
    if eid == "tidy_time":
        rows = raw["rows"]
        ratios = [
            row["median"] / (row["m"] ** 2 * (row["m"] + 1)) for row in rows
        ]
        return (
            f"tidy time / (m·n) spans [{min(ratios):.2f}, "
            f"{max(ratios):.2f}] and never grows; tidiness persisted in "
            "every run (Lemma 2)"
        )
    if eid == "tree_paths":
        perfect = all(row["perfect"] for row in raw["rows"])
        return (
            "every dispersal ended with all ranks occupied exactly once"
            + (" (Lemma 19 holds)" if perfect else " — VIOLATION")
        )
    if eid == "reset_line":
        rows = raw["rows"]
        growth = rows[-1]["epidemic_median"] / max(
            rows[0]["epidemic_median"], 1e-9
        )
        n_growth = rows[-1]["n"] / rows[0]["n"]
        return (
            f"epidemic duration grew {growth:.1f}x while n grew "
            f"{n_growth:.0f}x — logarithmic, as Lemma 21 claims"
        )
    if eid == "engine_equivalence":
        return (
            f"median stabilisation times agree within "
            f"{raw['max_median_deviation'] * 100:.0f}% across engines"
        )
    if eid == "state_time_tradeoff":
        return (
            f"knee at k = {raw['knee_k']} ≈ (2/3)·log₂ n = "
            f"{(2 * raw['log2_n']) // 3}; cliff below, plateau above"
        )
    if eid == "reset_ablation":
        rows = {r["variant"]: r for r in raw["rows"]}
        real = rows["real tree protocol"]["ranked"]
        return (
            f"real protocol ranked {real}/{raw['trials']}; both ablations "
            "failed (livelock / wrong silence) — the reset machinery is "
            "load-bearing"
        )
    if eid == "summary":
        return (
            "all four protocols stable+silent+ranked; every time/n ratio "
            "respects the Ω(n) floor"
        )
    if eid.startswith("scenario_") and "recovered_fraction" in raw:
        fraction = raw["recovered_fraction"]
        return (
            f"{fraction:.0%} of repetitions re-silenced after every "
            "injected fault"
        )
    return None


def generate_report(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> str:
    """Run every experiment and return the EXPERIMENTS.md content.

    ``workers`` > 1 parallelises each experiment's sweep repetitions
    (bit-identical to serial runs at any worker count).
    """
    buffer = io.StringIO()
    today = datetime.date.today().isoformat()
    buffer.write(
        "# EXPERIMENTS — paper vs measured\n\n"
        "Reproduction record for *Improving Efficiency in Near-State and\n"
        "State-Optimal Self-Stabilising Leader Election Population\n"
        "Protocols* (Gąsieniec, Grodzicki, Stachowiak; PODC 2025).\n\n"
        f"Generated by `python -m repro report --scale {scale} "
        f"--seed {seed}` on {today}.\n\n"
        "The paper is a theory contribution: its two figures are\n"
        "regenerated exactly, and every theorem/lemma becomes a measured\n"
        "scaling experiment.  *Time* always means parallel time\n"
        "(interactions divided by n), as in the paper.  Absolute\n"
        "constants are ours; the asserted reproduction targets are the\n"
        "shapes — growth exponents, who wins, crossovers.  Regenerate any\n"
        "row with `python -m repro experiment <id>`; benchmark-grade runs\n"
        "via `pytest benchmarks/ --benchmark-only` (set\n"
        "`REPRO_BENCH_SCALE=paper` for the big sweeps).\n"
    )
    for experiment in REGISTRY.values():
        eid = experiment.experiment_id
        result = experiment.runner(scale=scale, seed=seed, workers=workers)
        buffer.write(f"\n\n## `{eid}` — {experiment.description}\n\n")
        buffer.write(f"**Paper** ({experiment.paper_reference}): "
                     f"{PAPER_CLAIMS.get(eid, '(see DESIGN.md)')}\n\n")
        verdict = _verdict(result)
        if verdict:
            buffer.write(f"**Measured:** {verdict}\n\n")
        buffer.write(result.to_markdown())
        buffer.write("\n")
    return buffer.getvalue()
