"""Experiment ``reset_ablation`` — why the red reset phase must exist.

Two ablations of the §5 tree protocol, run from identical unbalanced
starts and compared against the real protocol:

* **R1 only** (:class:`TreeDispersalProtocol`, no extra states): goes
  *silent but wrong* — an overloaded leaf is a dead end, so the run
  terminates with duplicated and missing ranks.
* **All-green** (:class:`ModifiedTreeProtocol`, the Theorem 3 proof
  device): overloaded leaves do fire R2, but without red propagation
  the recycled agents re-enter a still-populated tree and the
  population can cycle forever — it *livelocks* (never silent) on
  unbalanced starts.
* **The real protocol** ranks every start, every time (stable+silent).

The experiment measures, per start family, the fraction of runs that
end correctly ranked within a generous budget — the table that shows
both halves of the reset mechanism (trigger *and* red epidemic) are
load-bearing.
"""

from __future__ import annotations

from typing import Optional

import math

from repro._deps import np

from ..analysis.stats import wilson_interval
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..core.engine import run_protocol
from ..protocols.modified_tree import ModifiedTreeProtocol
from ..protocols.tree_protocol import TreeDispersalProtocol, TreeRankingProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "reset_ablation"
DESCRIPTION = "ablation: drop R2–R5 or the red phase and ranking breaks"
PAPER_REFERENCE = "§5 (role of rules R2–R5); Theorem 3 proof coupling"


def _outcome(protocol, start, seed, budget):
    """(went_silent, correctly_ranked) within the event budget."""
    result = run_protocol(
        protocol, start, seed=seed, max_events=budget
    )
    ranked = protocol.is_ranked(result.final_configuration)
    return result.silent, ranked


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Compare real vs ablated protocols from identical random starts."""
    n = pick(scale, smoke=16, small=64, paper=256)
    trials = pick(scale, smoke=8, small=20, paper=24)
    k = max(2, math.ceil(math.log2(n)))
    # Budget counts *productive events*; a converging tree run needs
    # ~2n·log n of them, so this is a ~100x safety margin.
    budget = pick(scale, smoke=20_000, small=60_000, paper=250_000)

    variants = [
        ("real tree protocol", lambda: TreeRankingProtocol(n, k=k)),
        ("all-green (no red phase)", lambda: ModifiedTreeProtocol(n, k=k)),
        ("R1 only (no reset at all)", lambda: TreeDispersalProtocol(n)),
    ]

    table = Table(
        title=f"Reset ablation at n={n}: ranked runs out of {trials} "
              "random starts",
        headers=[
            "variant", "x", "ranked", "silent-but-wrong",
            "never silent", "ranked rate [95% CI]",
        ],
    )
    raw_rows = []
    for label, factory in variants:
        ranked_count = wrong_silent = live = 0
        for trial in range(trials):
            rng = np.random.default_rng(seed * 7907 + trial)
            protocol = factory()
            # identical start family: random over rank states, so that
            # the no-extra-state ablation sees the same distribution
            start = random_configuration(
                protocol, seed=rng, include_extras=False
            )
            silent, ranked = _outcome(protocol, start, rng, budget)
            if ranked:
                ranked_count += 1
            elif silent:
                wrong_silent += 1
            else:
                live += 1
        lo, hi = wilson_interval(ranked_count, trials)
        protocol = factory()
        table.add_row(
            label,
            protocol.num_extra_states,
            f"{ranked_count}/{trials}",
            wrong_silent,
            live,
            f"{ranked_count / trials:.2f} [{lo:.2f}, {hi:.2f}]",
        )
        raw_rows.append(
            {"variant": label, "ranked": ranked_count,
             "silent_but_wrong": wrong_silent, "never_silent": live}
        )
    table.add_note(
        "R1-only goes silent in the wrong configuration (overloaded "
        "leaves are dead ends); all-green keeps churning but cannot "
        "converge from unbalanced starts — only the full red/green "
        "reset ranks everything"
    )
    table.add_note(
        f"budget = {budget:,} productive events per run (~100x what a "
        "converging run needs)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={"n": n, "trials": trials, "rows": raw_rows},
    )
