"""Shared experiment plumbing: results, scales, helpers.

Every experiment module exposes ``run(scale, seed) -> ExperimentResult``.
The ``scale`` knob keeps one code path for CI smoke tests, the default
benchmark suite, and paper-scale sweeps:

* ``smoke`` — seconds; exercises the code path only.
* ``small`` — the default for ``pytest benchmarks/``; minutes total.
* ``paper`` — the sizes EXPERIMENTS.md reports; set
  ``REPRO_BENCH_SCALE=paper`` to select it in benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, TypeVar

from ..analysis.tables import Table
from ..exceptions import ExperimentError

__all__ = ["SCALES", "ExperimentResult", "pick", "bench_scale_from_env"]

SCALES = ("smoke", "small", "paper")

T = TypeVar("T")


def pick(scale: str, smoke: T, small: T, paper: T) -> T:
    """Select a per-scale value, validating the scale name."""
    if scale not in SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; expected one of {SCALES}"
        )
    return {"smoke": smoke, "small": small, "paper": paper}[scale]


def bench_scale_from_env(default: str = "small") -> str:
    """Scale selected by the ``REPRO_BENCH_SCALE`` environment variable."""
    scale = os.environ.get("REPRO_BENCH_SCALE", default)
    if scale not in SCALES:
        raise ExperimentError(
            f"REPRO_BENCH_SCALE={scale!r} invalid; expected one of {SCALES}"
        )
    return scale


@dataclass
class ExperimentResult:
    """Output of one experiment: rendered tables plus raw numbers."""

    experiment_id: str
    scale: str
    tables: List[Table] = field(default_factory=list)
    raw: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """All tables as fixed-width text."""
        return "\n\n".join(table.render() for table in self.tables)

    def to_markdown(self) -> str:
        """All tables as Markdown (EXPERIMENTS.md building block)."""
        return "\n\n".join(table.to_markdown() for table in self.tables)
