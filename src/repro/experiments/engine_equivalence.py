"""Experiment ``engine_equivalence`` — methodology validation.

The jump engine skips null interactions with geometric jumps; this is
claimed to be *exact*, not an approximation.  The experiment runs the
same (protocol, configuration) under both engines with many independent
seeds and compares the distributions of total interactions and of final
outcomes.  Medians agreeing within Monte-Carlo noise across engines is
the acceptance criterion used throughout the reproduction.

The numpy batch kernel (``backend="numpy"``) is held to the same bar: a
third leg runs every case through
:func:`~repro.core.engine.run_protocol` with the numpy backend — the
frozen-stratum rejection sampler is claimed step-distribution-identical
to the jump chain, and this experiment is the distributional check the
backend-equivalence CI matrix executes.
"""

from __future__ import annotations

from typing import Optional

from repro._deps import np

from ..analysis.stats import summarise
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..core.engine import run_protocol
from ..protocols.ag import AGProtocol
from ..protocols.line import LineOfTrapsProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.tree_protocol import TreeRankingProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "engine_equivalence"
DESCRIPTION = "jump ≡ sequential ≡ numpy batch engines, distributionally"
PAPER_REFERENCE = "methodology (DESIGN.md §4)"


def _distribution(
    protocol_factory, num_seeds: int, engine: str, seed: int,
    backend: str = "python",
):
    times = []
    ranked = 0
    for rep in range(num_seeds):
        rng = np.random.default_rng(seed * 100003 + rep)
        protocol = protocol_factory()
        start = random_configuration(
            protocol, seed=rng, include_extras=protocol.num_extra_states > 0
        )
        result = run_protocol(
            protocol, start, seed=rng, engine=engine, backend=backend
        )
        times.append(result.parallel_time)
        if result.final_configuration.is_ranked(protocol.num_agents):
            ranked += 1
    return summarise(times), ranked


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Compare per-engine stabilisation-time distributions."""
    num_seeds = pick(scale, smoke=10, small=60, paper=200)
    # The tree and line cases drive the jump engine's *fused general
    # loop* (multi-family protocols: triangular reset line, ordered
    # product routing) against the naive per-interaction reference.
    cases = [
        ("AG n=24", lambda: AGProtocol(24)),
        ("Ring m=4 (n=20)", lambda: RingOfTrapsProtocol(m=4)),
        ("Tree n=21 k=3", lambda: TreeRankingProtocol(21, k=3)),
        ("Line m=2 (n=72)", lambda: LineOfTrapsProtocol(m=2)),
    ]
    table = Table(
        title=(
            "Engine equivalence: jump vs sequential vs numpy batch "
            "(median parallel time)"
        ),
        headers=[
            "case", "jump median", "sequential median", "seq ratio",
            "batch median", "batch ratio", "jump ranked", "seq ranked",
            "batch ranked",
        ],
    )
    raw_rows = []
    max_deviation = 0.0
    for label, factory in cases:
        jump_summary, jump_ranked = _distribution(
            factory, num_seeds, "jump", seed
        )
        seq_summary, seq_ranked = _distribution(
            factory, num_seeds, "sequential", seed + 1
        )
        batch_summary, batch_ranked = _distribution(
            factory, num_seeds, "jump", seed + 2, backend="numpy"
        )
        ratio = jump_summary.median / seq_summary.median
        batch_ratio = batch_summary.median / jump_summary.median
        max_deviation = max(
            max_deviation, abs(ratio - 1.0), abs(batch_ratio - 1.0)
        )
        table.add_row(
            label, jump_summary.median, seq_summary.median, ratio,
            batch_summary.median, batch_ratio,
            f"{jump_ranked}/{num_seeds}", f"{seq_ranked}/{num_seeds}",
            f"{batch_ranked}/{num_seeds}",
        )
        raw_rows.append(
            {"case": label, "jump_median": jump_summary.median,
             "sequential_median": seq_summary.median, "ratio": ratio,
             "batch_median": batch_summary.median,
             "batch_ratio": batch_ratio}
        )
    table.add_note(
        f"{num_seeds} independent seeds per engine per case; all three "
        "engines must rank every run and agree on medians up to "
        "Monte-Carlo noise (batch ratio is batch/jump)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={"rows": raw_rows, "max_median_deviation": max_deviation},
    )
