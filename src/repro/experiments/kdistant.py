"""Experiments on Theorem 1 — ring-of-traps ranking from k-distant starts.

Three sub-experiments, all on the state-optimal ring of traps (§3):

* ``kdistant_vs_k`` — fix ``n``, sweep the distance ``k``: Lemma 3
  bounds the time by ``O(k·n^{3/2})``, so time should grow at most
  linearly with ``k``.
* ``kdistant_vs_n`` — fix a small ``k``, sweep ``n``: the growth
  exponent should be ≈ 3/2 (the trap-drain cost), far below the
  baseline's 2.
* ``ring_arbitrary`` — arbitrary (uniform random) starts, where the
  Lemma 4 bound ``O(n² log² n)`` applies; the shape check is that time
  stays within a log-factor envelope of ``n²``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.fitting import fit_power_law
from ..analysis.sweep import measure_stabilisation, run_sweep
from ..analysis.tables import Table
from ..configurations.generators import (
    k_distant_configuration,
    random_configuration,
)
from ..protocols.ring import RingOfTrapsProtocol
from .base import ExperimentResult, pick

DESCRIPTION_VS_K = (
    "Theorem 1: ring-of-traps time grows (at most) linearly in k at fixed n"
)
DESCRIPTION_VS_N = "Theorem 1: ring-of-traps time scales like n^1.5 at fixed k"
DESCRIPTION_ARBITRARY = (
    "Lemma 4: ring-of-traps from arbitrary starts stays within n²·polylog"
)
PAPER_REFERENCE = "§3, Theorem 1, Lemmas 3–4"


def _build_k_distant(params, rng):
    protocol = RingOfTrapsProtocol(m=int(params["m"]))
    start = k_distant_configuration(protocol, int(params["k"]), seed=rng)
    return protocol, start


def _build_random(params, rng):
    protocol = RingOfTrapsProtocol(m=int(params["m"]))
    start = random_configuration(protocol, seed=rng, include_extras=False)
    return protocol, start


def run_vs_k(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Fix n (= m(m+1)), sweep the number of missing ranks k."""
    m = pick(scale, smoke=8, small=16, paper=24)
    ks = pick(
        scale,
        smoke=[1, 2, 4],
        small=[1, 2, 4, 8, 16, 32],
        paper=[1, 2, 4, 8, 16, 32, 64],
    )
    repetitions = pick(scale, smoke=2, small=5, paper=7)
    n = m * (m + 1)
    points = run_sweep(
        [{"m": m, "k": k} for k in ks],
        _build_k_distant,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    table = Table(
        title=f"Ring of traps: time vs k at n={n} (m={m})",
        headers=["k", "median time", "max time", "time/(k·n^1.5)", "silent"],
    )
    medians = []
    for point in points:
        k = int(point.params["k"])
        summary = point.time_summary()
        medians.append(summary.median)
        table.add_row(
            k,
            summary.median,
            summary.maximum,
            summary.median / (k * n**1.5),
            point.all_silent,
        )
    fit = fit_power_law(ks, medians)
    table.add_note(
        f"fitted time ~ k^{fit.exponent:.2f} (R²={fit.r_squared:.3f}); "
        "Lemma 3's bound is linear in k"
    )
    return ExperimentResult(
        experiment_id="kdistant_vs_k",
        scale=scale,
        tables=[table],
        raw={"m": m, "n": n, "ks": ks, "median_times": medians,
             "exponent_in_k": fit.exponent},
    )


def run_vs_n(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Fix k, sweep n through the m(m+1) lattice."""
    k = pick(scale, smoke=2, small=2, paper=4)
    ms = pick(
        scale,
        smoke=[6, 8, 10],
        small=[8, 12, 16, 20, 24],
        paper=[12, 16, 20, 24, 28, 32],
    )
    repetitions = pick(scale, smoke=2, small=5, paper=7)
    points = run_sweep(
        [{"m": m, "k": k} for m in ms],
        _build_k_distant,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    ns = [m * (m + 1) for m in ms]
    table = Table(
        title=f"Ring of traps: time vs n at k={k}",
        headers=["m", "n", "median time", "time/n^1.5", "time/n²", "silent"],
    )
    medians = []
    for point, n in zip(points, ns):
        summary = point.time_summary()
        medians.append(summary.median)
        table.add_row(
            int(point.params["m"]),
            n,
            summary.median,
            summary.median / n**1.5,
            summary.median / n**2,
            point.all_silent,
        )
    fit = fit_power_law(ns, medians)
    table.add_note(
        f"fitted growth: {fit.describe()}; Theorem 1 predicts ~n^1.5 "
        "for fixed k (vs the baseline's n²)"
    )
    return ExperimentResult(
        experiment_id="kdistant_vs_n",
        scale=scale,
        tables=[table],
        raw={"k": k, "ns": ns, "median_times": medians,
             "exponent": fit.exponent},
    )


def run_arbitrary(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Uniform random starts — the Lemma 4 regime."""
    ms = pick(
        scale,
        smoke=[6, 8],
        small=[8, 12, 16, 20],
        paper=[12, 16, 20, 24, 28],
    )
    repetitions = pick(scale, smoke=2, small=3, paper=5)
    points = measure_stabilisation(
        _build_random,
        ms,
        x_name="m",
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    ns = [m * (m + 1) for m in ms]
    table = Table(
        title="Ring of traps: arbitrary (uniform random) starts",
        headers=["m", "n", "median time", "time/n²", "time/(n²·log²n)", "silent"],
    )
    medians = []
    for point, n in zip(points, ns):
        import math

        summary = point.time_summary()
        medians.append(summary.median)
        table.add_row(
            int(point.params["m"]),
            n,
            summary.median,
            summary.median / n**2,
            summary.median / (n**2 * math.log(n) ** 2),
            point.all_silent,
        )
    fit = fit_power_law(ns, medians)
    table.add_note(
        f"fitted growth: {fit.describe()}; Lemma 4's envelope is n²·log²n"
    )
    table.add_note(
        "a uniform random start is ~(n/e)-distant, so the k·n^1.5 branch "
        "of Theorem 1 does not apply"
    )
    return ExperimentResult(
        experiment_id="ring_arbitrary",
        scale=scale,
        tables=[table],
        raw={"ns": ns, "median_times": medians, "exponent": fit.exponent},
    )
