"""Experiment ``summary`` — the paper's headline contribution table.

The abstract/introduction enumerate four (protocol, extra states, time)
triples; this experiment measures all four under comparable conditions
and reproduces that table with empirical columns, plus the ``Ω(n)``
lower-bound sanity floor of [24, 32]: every silent self-stabilising
leader-election protocol needs linear expected time, so no measured
time may fall meaningfully below ``c·n``.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.stats import summarise
from ..analysis.tables import Table
from ..analysis.sweep import run_sweep
from ..configurations.generators import (
    k_distant_configuration,
    random_configuration,
)
from ..protocols.ag import AGProtocol
from ..protocols.line import LineOfTrapsProtocol, line_lattice_size
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.tree_protocol import TreeRankingProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "summary"
DESCRIPTION = "headline table: protocol × (extra states, measured time) + Ω(n) floor"
PAPER_REFERENCE = "abstract, §1 contributions; lower bound [24,32]"


def _build(params, rng):
    """Module-level sweep builder (picklable for ``workers`` pools)."""
    kind = params["kind"]
    if kind == "ag":
        protocol = AGProtocol(int(params["n"]))
        return protocol, random_configuration(
            protocol, seed=rng, include_extras=False
        )
    if kind == "ring":
        protocol = RingOfTrapsProtocol(m=int(params["m"]))
        return protocol, k_distant_configuration(
            protocol, int(params["k"]), seed=rng
        )
    if kind == "line":
        protocol = LineOfTrapsProtocol(m=int(params["m"]))
        return protocol, random_configuration(protocol, seed=rng)
    protocol = TreeRankingProtocol(int(params["n"]))
    return protocol, random_configuration(protocol, seed=rng)


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Measure all four protocols; tabulate against the paper's claims."""
    repetitions = pick(scale, smoke=2, small=3, paper=5)
    ring_m = pick(scale, smoke=8, small=16, paper=24)
    tree_n = pick(scale, smoke=128, small=1024, paper=4096)
    line_m = pick(scale, smoke=2, small=2, paper=4)
    ag_n = pick(scale, smoke=64, small=272, paper=600)
    ring_n = ring_m * (ring_m + 1)
    line_n = line_lattice_size(line_m)
    k = max(1, int(math.isqrt(ring_n)) // 4)  # comfortably o(√n)

    rows_spec = [
        (
            "AG (baseline)", 0, "Θ(n²)", ag_n, 2.0,
            {"kind": "ag", "n": ag_n},
        ),
        (
            f"Ring of traps ({k}-distant)", 0, "O(min(k·n^1.5, n²log²n))",
            ring_n, 1.5,
            {"kind": "ring", "m": ring_m, "k": k},
        ),
        (
            "Line of traps (x=1)", 1, "O(n^1.75·log²n)", line_n, 1.75,
            {"kind": "line", "m": line_m},
        ),
        (
            "Tree of ranks (x=O(log n))",
            TreeRankingProtocol(tree_n).num_extra_states,
            "O(n·log n)", tree_n, 1.0,
            {"kind": "tree", "n": tree_n},
        ),
    ]

    table = Table(
        title="Headline: protocols, extra states, and measured times",
        headers=[
            "protocol", "extra states x", "paper time bound", "n",
            "measured median time", "time/n (Ω(n) floor)", "silent+ranked",
        ],
    )
    raw_rows = []
    floor_ok = True
    for row_index, (label, extra_states, bound, n, __, params) in enumerate(
        rows_spec
    ):
        # Offset per row, NOT `hash(label)`: string hashes are salted
        # per interpreter, which would break seed reproducibility.
        points = run_sweep(
            [params], _build, repetitions=repetitions,
            seed=seed + row_index, workers=workers,
        )
        point = points[0]
        ranked = point.all_silent and all(
            run.final_configuration.is_ranked(run.num_agents)
            for run in point.runs
        )
        median = summarise(point.parallel_times).median
        per_n = median / n
        floor_ok = floor_ok and per_n > 0.05
        table.add_row(label, extra_states, bound, n, median, per_n, ranked)
        raw_rows.append(
            {"protocol": label, "n": n, "median_time": median,
             "time_per_n": per_n, "ranked": ranked}
        )
    table.add_note(
        "time/n column: the [24,32] lower bound says silent self-stabilising "
        "leader election takes Ω(n) expected time — all ratios must stay "
        "bounded away from 0"
        + ("; holds" if floor_ok else "; VIOLATED")
    )
    table.add_note(
        "per-protocol n differs (each protocol has its natural lattice); "
        "scaling experiments compare like-for-like growth"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={"rows": raw_rows, "lower_bound_floor_holds": floor_ok},
    )
