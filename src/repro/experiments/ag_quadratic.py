"""Experiment ``ag_quadratic`` — the baseline's ``Θ(n²)`` stabilisation.

Paper claim (§1, §2): the generic state-optimal protocol ``AG`` silently
self-stabilises in ``Θ(n²)`` parallel time whp.  We sweep ``n``, start
from uniformly random rank configurations, and fit the growth exponent
of the median stabilisation time — it should sit at ≈ 2, giving the
baseline every other experiment compares against.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.fitting import fit_power_law
from ..analysis.sweep import measure_stabilisation
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..protocols.ag import AGProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "ag_quadratic"
DESCRIPTION = "AG baseline stabilisation time is Θ(n²) (paper §1/§2)"
PAPER_REFERENCE = "§1.1, §2 — protocol AG, stabilisation Θ(n²)"


def _build(params, rng):
    protocol = AGProtocol(int(params["n"]))
    start = random_configuration(protocol, seed=rng, include_extras=False)
    return protocol, start


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep n, fit the exponent, and tabulate times and per-n² ratios."""
    ns = pick(
        scale,
        smoke=[32, 48, 64],
        small=[64, 96, 128, 192, 256, 384],
        paper=[128, 192, 256, 384, 512, 768, 1024],
    )
    repetitions = pick(scale, smoke=2, small=3, paper=5)
    points = measure_stabilisation(
        _build, ns, x_name="n", repetitions=repetitions, seed=seed,
        workers=workers,
    )

    table = Table(
        title="AG baseline: stabilisation time vs n (random starts)",
        headers=["n", "median time", "max time", "time/n", "time/n²", "silent"],
    )
    medians = []
    for point in points:
        n = int(point.params["n"])
        summary = point.time_summary()
        medians.append(summary.median)
        table.add_row(
            n,
            summary.median,
            summary.maximum,
            summary.median / n,
            summary.median / n**2,
            point.all_silent,
        )
    fit = fit_power_law(ns, medians)
    table.add_note(f"fitted growth: {fit.describe()}; paper claims Θ(n²)")
    table.add_note(
        f"{repetitions} repetitions per n; time is parallel time "
        "(interactions / n)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={
            "ns": ns,
            "median_times": medians,
            "exponent": fit.exponent,
            "r_squared": fit.r_squared,
        },
    )
