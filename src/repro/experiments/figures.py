"""Experiments ``figure1`` and ``figure2`` — the paper's two figures.

``figure1`` regenerates the cubic routing graph ``G`` for ``m² = 16``
(Figure 1) and validates every property the paper states: 3-regularity,
connectivity, the ``4⌈log m⌉`` diameter bound across a sweep of sizes,
and the worked example printed under the figure ("for l = 1 we get
l0 = 2, l1 = 3, and l2 = 8").

``figure2`` regenerates the perfectly balanced tree of ranks for
``n = 9`` (Figure 2) — the exact node kinds and pre-order child edges —
and validates the structural claims of §5 (uniform levels, height
bound) across a sweep of sizes.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.tables import Table
from ..protocols.routing import build_routing_graph
from ..protocols.tree import NodeKind, PerfectlyBalancedTree
from ..viz.ascii import render_routing_graph, render_tree
from .base import ExperimentResult, pick

DESCRIPTION_FIG1 = "Figure 1: the cubic routing graph G (m²=16) and its invariants"
DESCRIPTION_FIG2 = "Figure 2: the perfectly balanced tree of ranks (n=9)"
PAPER_REFERENCE = "§4.2 Figure 1, §5 Figure 2"

# Figure 2 of the paper, as (node, kind, children) triples.
FIGURE2_EXPECTED = [
    (0, NodeKind.BRANCHING, (1, 5)),
    (1, NodeKind.NON_BRANCHING, (2,)),
    (2, NodeKind.BRANCHING, (3, 4)),
    (3, NodeKind.LEAF, ()),
    (4, NodeKind.LEAF, ()),
    (5, NodeKind.NON_BRANCHING, (6,)),
    (6, NodeKind.BRANCHING, (7, 8)),
    (7, NodeKind.LEAF, ()),
    (8, NodeKind.LEAF, ()),
]


def run_figure1(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Rebuild G for the figure's size and check invariants over a sweep."""
    del seed  # deterministic construction
    ms = pick(scale, smoke=[2, 4], small=[2, 4, 6, 8], paper=[2, 4, 6, 8, 10, 12])
    table = Table(
        title="Routing graph G (Figure 1): invariants across sizes",
        headers=["m", "lines m²", "cubic", "connected", "diameter",
                 "bound 4·ceil(log2 m)"],
    )
    for m in ms:
        graph = build_routing_graph(m * m)
        bound = 4 * math.ceil(math.log2(m)) if m > 1 else 1
        table.add_row(
            m, m * m, graph.is_cubic(), graph.is_connected(),
            graph.diameter(), max(bound, 1),
        )
    figure_graph = build_routing_graph(16)
    example = figure_graph.neighbours(1)
    matches = example == (2, 3, 8)
    table.add_note(
        f"paper's worked example (m²=16, line 1): l0={example[0]}, "
        f"l1={example[1]}, l2={example[2]} — "
        + ("matches the paper exactly" if matches else "MISMATCH")
    )
    return ExperimentResult(
        experiment_id="figure1",
        scale=scale,
        tables=[table],
        raw={
            "example_neighbours": list(example),
            "example_matches_paper": matches,
            "rendering": render_routing_graph(figure_graph),
        },
    )


def run_figure2(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Rebuild the n=9 tree; check §5 structure claims across sizes."""
    del seed  # deterministic construction
    tree9 = PerfectlyBalancedTree(9)
    exact = all(
        tree9.kind(node) == kind
        and tuple(tree9.children(node)) == children
        for node, kind, children in FIGURE2_EXPECTED
    )

    ns = pick(
        scale,
        smoke=[2, 9, 17],
        small=[2, 5, 9, 17, 33, 100, 1000],
        paper=[2, 5, 9, 17, 33, 100, 1000, 10000, 100000],
    )
    table = Table(
        title="Perfectly balanced trees (Figure 2): structure across sizes",
        headers=["n", "height", "bound 2·log2 n", "leaves",
                 "levels uniform"],
    )
    for n in ns:
        tree = PerfectlyBalancedTree(n)
        uniform = all(
            len({(tree.kind(p), tree.subtree_size(p)) for p in level_nodes}) <= 1
            for level_nodes in tree.iter_levels()
        )
        bound = 2 * math.log2(n) if n > 1 else 0
        table.add_row(n, tree.height, round(bound, 2), len(tree.leaves), uniform)
    table.add_note(
        "n=9 instance "
        + ("matches Figure 2 node-for-node" if exact else "MISMATCHES Figure 2")
    )
    return ExperimentResult(
        experiment_id="figure2",
        scale=scale,
        tables=[table],
        raw={
            "figure2_exact_match": exact,
            "rendering": render_tree(tree9),
        },
    )
