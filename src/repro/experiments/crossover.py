"""Experiment ``crossover`` — where the ring stops beating the baseline.

Theorem 1's punchline: for ``k = o(√n)`` the ring of traps stabilises
in ``o(n²)``, i.e. beats the generic ``Θ(n²)`` barrier.  At fixed ``n``
we sweep ``k`` and measure three quantities:

* the ring's time from ``k``-distant starts;
* AG's time from the *same* ``k``-distant starts (an easy instance for
  AG too — a single duplicate just walks to the missing rank);
* AG's time from arbitrary (uniform random) starts — the ``Θ(n²)``
  barrier the paper's corollary refers to.

The shape claims: the ring's advantage over the barrier is large for
small ``k`` and decays as ``k`` grows; by ``k = Θ(√n)`` (up to the
constants hidden in both bounds) the advantage is gone.  Note that the
measured ring time grows *sublinearly* in ``k`` at reachable sizes —
Lemma 3's ``k·n^{3/2}`` is an upper bound that the parallel gap-filling
beats in practice — so the empirical crossover sits at or beyond
``√n``, never before it.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.sweep import run_sweep
from ..analysis.tables import Table
from ..configurations.generators import (
    k_distant_configuration,
    random_configuration,
)
from ..protocols.ag import AGProtocol
from ..protocols.ring import RingOfTrapsProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "crossover"
DESCRIPTION = "Theorem 1 corollary: ring beats the n² barrier while k = O(√n)"
PAPER_REFERENCE = "§3, Theorem 1 (k = o(√n) ⇒ o(n²) leader election)"


def _build_ring(params, rng):
    protocol = RingOfTrapsProtocol(m=int(params["m"]))
    return protocol, k_distant_configuration(
        protocol, int(params["k"]), seed=rng
    )


def _build_ag_same_start(params, rng):
    protocol = AGProtocol(int(params["n"]))
    return protocol, k_distant_configuration(
        protocol, int(params["k"]), seed=rng
    )


def _build_ag_barrier(params, rng):
    protocol = AGProtocol(int(params["n"]))
    return protocol, random_configuration(
        protocol, seed=rng, include_extras=False
    )


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep k at fixed n; chart the ring's advantage over the barrier."""
    m = pick(scale, smoke=8, small=16, paper=24)
    n = m * (m + 1)
    ks = pick(
        scale,
        smoke=[1, 4, 8],
        small=[1, 2, 4, 8, 16, 32, 64, 90],
        paper=[1, 2, 4, 8, 16, 32, 64, 128, 200],
    )
    ks = [k for k in ks if k < n]
    repetitions = pick(scale, smoke=3, small=9, paper=9)

    ring_points = run_sweep(
        [{"m": m, "k": k} for k in ks],
        _build_ring,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    ag_points = run_sweep(
        [{"n": n, "k": k} for k in ks],
        _build_ag_same_start,
        repetitions=repetitions,
        seed=seed + 1,
        workers=workers,
    )
    barrier_point = run_sweep(
        [{"n": n}],
        _build_ag_barrier,
        repetitions=repetitions,
        seed=seed + 2,
        workers=workers,
    )[0]
    barrier = barrier_point.median_parallel_time()

    table = Table(
        title=f"Ring vs the Θ(n²) barrier at n={n} (barrier = AG from "
              f"arbitrary starts: {barrier:,.0f})",
        headers=[
            "k", "ring median time", "AG same-start median",
            "barrier/ring advantage",
        ],
    )
    ring_medians, ag_medians, advantages = [], [], []
    crossover_k = None
    for k, ring_point, ag_point in zip(ks, ring_points, ag_points):
        ring_median = ring_point.median_parallel_time()
        ag_median = ag_point.median_parallel_time()
        advantage = barrier / ring_median
        ring_medians.append(ring_median)
        ag_medians.append(ag_median)
        advantages.append(advantage)
        table.add_row(k, ring_median, ag_median, advantage)
        if crossover_k is None and advantage < 2.0:
            crossover_k = k
    sqrt_n = math.sqrt(n)
    if crossover_k is None:
        table.add_note(
            f"advantage stays ≥ 2x for every tested k ≤ {ks[-1]} "
            f"(√n ≈ {sqrt_n:.1f}) — consistent with the sublinear "
            "measured growth in k"
        )
    else:
        table.add_note(
            f"advantage drops below 2x at k ≈ {crossover_k}; the paper's "
            f"corollary places the loss of the o(n²) guarantee at "
            f"k = Θ(√n) = Θ({sqrt_n:.1f})"
        )
    table.add_note(
        "the 'AG same-start' column shows AG also heals small k quickly "
        "(a walk to the missing rank, ≈ 0.4·n²·(d/n)); the theorem's "
        "barrier is AG's guarantee over arbitrary starts"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={
            "n": n,
            "ks": ks,
            "ring_median_times": ring_medians,
            "ag_same_start_times": ag_medians,
            "barrier_time": barrier,
            "advantages": advantages,
            "crossover_k": crossover_k,
            "sqrt_n": sqrt_n,
        },
    )
