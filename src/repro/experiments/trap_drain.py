"""Experiments on the trap lemmas — Lemma 1 (drain) and Lemma 2 (tidy).

``trap_drain``: a single trap of inner size ``m`` starts with surplus
``l`` (all agents piled on the top inner state) inside a population of
``n = m + 1 + l`` agents.  Lemma 1 predicts:

* at least ``⌊(l+1)/2⌋`` agents are released within ``O(m·n)`` time, and
* all ``l`` surplus agents within ``O(m·n·log(l+1))`` time.

We measure the exact release instants and report them normalised by the
lemma's envelopes — flat columns across ``m`` confirm the shape.

``tidy_time``: in a ring of traps started from a random configuration,
Lemma 2 says the configuration becomes (and stays) tidy within ``O(mn)``
time whp.  We step the engine, record the first time every trap is tidy,
verify tidiness never breaks afterwards, and normalise by ``m·n``.
"""

from __future__ import annotations

from typing import Optional

import math

from repro._deps import np

from ..analysis.potentials import all_traps_tidy
from ..analysis.stats import summarise
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..core.configuration import Configuration
from ..core.jump import JumpEngine
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.trap import SingleTrapProtocol
from .base import ExperimentResult, pick

DESCRIPTION_DRAIN = "Lemma 1: trap surplus drains at rate ~m·n (half per pass)"
DESCRIPTION_TIDY = "Lemma 2: configurations become tidy within ~m·n time"
PAPER_REFERENCE = "§2.1–§2.2, Lemmas 1–2"


def _drain_times(m: int, surplus: int, seed: int) -> tuple:
    """(time to release ⌊(l+1)/2⌋ agents, time to release l agents)."""
    protocol = SingleTrapProtocol(inner_size=m, num_agents=m + 1 + surplus)
    counts = [0] * protocol.num_states
    counts[protocol.trap.top] = protocol.num_agents  # tidy worst case
    engine = JumpEngine(
        protocol, Configuration(counts), np.random.default_rng(seed)
    )
    half_target = (surplus + 1) // 2
    half_time = None
    exit_state = protocol.exit_state
    while True:
        event = engine.step()
        if event is None:
            break
        released = engine.counts[exit_state]
        if half_time is None and released >= half_target:
            half_time = engine.interactions / protocol.num_agents
        if released >= surplus:
            return half_time, engine.interactions / protocol.num_agents
    raise AssertionError("trap went silent before releasing its surplus")


def run_drain(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep trap size m and surplus l; normalise release times."""
    ms = pick(scale, smoke=[8, 16], small=[16, 32, 64, 128],
              paper=[16, 32, 64, 128, 256])
    repetitions = pick(scale, smoke=2, small=5, paper=9)
    table = Table(
        title="Single trap: surplus release times (Lemma 1)",
        headers=[
            "m", "surplus l", "t(half) median", "t(half)/(m·n)",
            "t(all) median", "t(all)/(m·n·log(l+1))",
        ],
    )
    raw_rows = []
    for m in ms:
        for surplus in (1, m // 2, m):
            half_times, all_times = [], []
            for rep in range(repetitions):
                half, full = _drain_times(m, surplus, seed * 1000 + rep + m)
                half_times.append(half)
                all_times.append(full)
            n = m + 1 + surplus
            half_median = summarise(half_times).median
            all_median = summarise(all_times).median
            log_factor = max(1.0, math.log2(surplus + 1))
            table.add_row(
                m,
                surplus,
                half_median,
                half_median / (m * n),
                all_median,
                all_median / (m * n * log_factor),
            )
            raw_rows.append(
                {"m": m, "surplus": surplus, "half_median": half_median,
                 "all_median": all_median}
            )
    table.add_note(
        "normalised columns flat across m ⟹ release times scale as "
        "Lemma 1's m·n and m·n·log(l+1) envelopes"
    )
    table.add_note(
        "start = all agents on the top inner state (tidy worst case); "
        "n = m + 1 + l"
    )
    return ExperimentResult(
        experiment_id="trap_drain", scale=scale, tables=[table],
        raw={"rows": raw_rows},
    )


def _tidy_time(m: int, seed: int) -> float:
    """First parallel time at which every trap of a random ring is tidy."""
    protocol = RingOfTrapsProtocol(m=m)
    rng = np.random.default_rng(seed)
    start = random_configuration(protocol, seed=rng, include_extras=False)
    engine = JumpEngine(protocol, start, rng)
    traps = protocol.traps
    tidy_at = None
    while True:
        if tidy_at is None and all_traps_tidy(traps, engine.counts):
            tidy_at = engine.interactions / protocol.num_agents
        event = engine.step()
        if event is None:
            break
        if tidy_at is not None and not all_traps_tidy(traps, engine.counts):
            # Lemma 2: tidiness persists once reached.  A violation here
            # would falsify the lemma (and our transition function).
            raise AssertionError(
                f"tidiness broke at interaction {engine.interactions}"
            )
    if tidy_at is None:
        raise AssertionError("run went silent without ever becoming tidy")
    return tidy_at


def run_tidy(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep ring size; tabulate time-to-tidy normalised by m·n."""
    ms = pick(scale, smoke=[6, 8], small=[8, 12, 16, 24],
              paper=[8, 12, 16, 24, 32])
    repetitions = pick(scale, smoke=2, small=5, paper=9)
    table = Table(
        title="Ring of traps: time until the configuration is tidy (Lemma 2)",
        headers=["m", "n", "tidy time median", "tidy time max", "median/(m·n)"],
    )
    raw_rows = []
    for m in ms:
        times = [
            _tidy_time(m, seed * 997 + rep * 13 + m) for rep in range(repetitions)
        ]
        n = m * (m + 1)
        summary = summarise(times)
        table.add_row(m, n, summary.median, summary.maximum,
                      summary.median / (m * n))
        raw_rows.append({"m": m, "median": summary.median,
                         "max": summary.maximum})
    table.add_note(
        "tidiness is checked after every productive event; Lemma 2 also "
        "claims persistence — any later violation would fail the run"
    )
    return ExperimentResult(
        experiment_id="tidy_time", scale=scale, tables=[table],
        raw={"rows": raw_rows},
    )
