"""Experiment ``line_scaling`` — Theorem 2's ``O(n^{7/4} log² n)`` bound.

The one-extra-state line-of-traps protocol is swept over its exact
lattice sizes ``n = 3m³(m+1)`` from arbitrary (uniform random) starting
configurations.  The shape checks:

* the growth exponent (after dividing out ``log² n``) sits below 2 —
  the protocol is genuinely ``o(n²)`` unlike the state-optimal baseline
  on arbitrary starts;
* the normalised ratio ``time / (n^{7/4} log² n)`` does not grow.

AG is measured on the same population sizes (same seeds) up to the
point where it remains affordable, for the who-wins comparison.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.fitting import fit_power_law
from ..analysis.sweep import run_sweep
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..protocols.ag import AGProtocol
from ..protocols.line import LineOfTrapsProtocol, line_lattice_size
from .base import ExperimentResult, pick

EXPERIMENT_ID = "line_scaling"
DESCRIPTION = "Theorem 2: one extra state gives o(n²) (≈ n^1.75·log²n) ranking"
PAPER_REFERENCE = "§4, Theorem 2"

# AG on arbitrary starts is Θ(n²); past this size it dominates runtime.
_AG_COMPARISON_LIMIT = 1000


def _build_line(params, rng):
    protocol = LineOfTrapsProtocol(m=int(params["m"]))
    return protocol, random_configuration(protocol, seed=rng)


def _build_ag(params, rng):
    protocol = AGProtocol(int(params["n"]))
    return protocol, random_configuration(
        protocol, seed=rng, include_extras=False
    )


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep the lattice parameter m; compare against AG where feasible."""
    ms = pick(scale, smoke=[2], small=[2, 4], paper=[2, 4, 6])
    repetitions = pick(scale, smoke=2, small=3, paper=3)
    line_points = run_sweep(
        [{"m": m} for m in ms],
        _build_line,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    ns = [line_lattice_size(m) for m in ms]
    ag_ns = [n for n in ns if n <= _AG_COMPARISON_LIMIT]
    ag_points = run_sweep(
        [{"n": n} for n in ag_ns],
        _build_ag,
        repetitions=repetitions,
        seed=seed + 1,
        workers=workers,
    )
    ag_by_n = {
        n: point.median_parallel_time() for n, point in zip(ag_ns, ag_points)
    }

    table = Table(
        title="Line of traps (x = 1): arbitrary starts on exact lattices",
        headers=[
            "m", "n", "median time", "time/(n^1.75·log²n)", "time/n²",
            "AG median time", "silent",
        ],
    )
    medians = []
    for m, n, point in zip(ms, ns, line_points):
        summary = point.time_summary()
        medians.append(summary.median)
        envelope = n**1.75 * math.log(n) ** 2
        table.add_row(
            m,
            n,
            summary.median,
            summary.median / envelope,
            summary.median / n**2,
            ag_by_n.get(n, float("nan")),
            point.all_silent,
        )
    raw = {"ms": ms, "ns": ns, "median_times": medians, "ag_by_n": ag_by_n}
    if len(ns) >= 2:
        fit = fit_power_law(ns, medians, log_correction=2.0)
        table.add_note(
            f"fitted growth (log²n divided out): {fit.describe()}; "
            "Theorem 2's envelope is n^1.75·log²n"
        )
        raw["exponent"] = fit.exponent
    table.add_note(
        "lattice sizes n = 3m³(m+1) = "
        + ", ".join(str(line_lattice_size(m)) for m in ms)
    )
    if len(ns) < 3:
        table.add_note(
            "few lattice points at this scale — treat the exponent as "
            "indicative; the normalised envelope column is the shape check"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, scale=scale, tables=[table], raw=raw
    )
