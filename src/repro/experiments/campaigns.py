"""Experiments wrapping the canned scenario campaigns.

Each experiment runs one registered fault campaign (see
:mod:`repro.scenarios.catalog`) and reports the recovery-time tables —
the dynamic counterpart of the static ``kdistant_*`` experiments: the
same protocols, but with faults injected *mid-run* and recovery clocked
from the fault onwards.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.recovery import (
    epoch_table,
    phase_table,
    recovery_records,
    recovery_table,
    survival_table,
)
from ..scenarios import get_campaign, run_campaign
from .base import ExperimentResult

DESCRIPTION_AG = (
    "AG baseline: stabilise, corrupt 20%, crash 30%; recovery-time "
    "distribution after each fault"
)
DESCRIPTION_TREE = (
    "Tree protocol: mid-run corruption and a crash wave into the reset "
    "line; recovery-time distribution"
)
DESCRIPTION_LINE = (
    "Line of traps under churn: departures/arrivals resize n mid-run; "
    "recovery-time distribution"
)
DESCRIPTION_EPOCH_AG = (
    "AG under alternating cluster suppression (epoch-switching "
    "adversary on the weighted fast path); per-epoch recovery times"
)
DESCRIPTION_EPOCH_TREE = (
    "Tree protocol under a bias flip at silence: recovery from a crash "
    "wave under the inverted bias; per-epoch recovery times"
)
PAPER_REFERENCE = (
    "self-stabilisation contract (§1); k-distant recovery regime (§3)"
)


def _run_campaign_experiment(
    campaign_id: str,
    experiment_id: str,
    scale: str,
    seed: int,
    workers: Optional[int],
) -> ExperimentResult:
    campaign = get_campaign(campaign_id)
    scenario = campaign.build(scale)
    result = run_campaign(
        scenario,
        repetitions=campaign.repetitions_for(scale),
        seed=seed,
        workers=workers,
    )
    records = recovery_records(result)
    tables = [
        recovery_table(result),
        phase_table(result),
        survival_table(result),
    ]
    if scenario.timeline:
        tables.append(epoch_table(result))
    return ExperimentResult(
        experiment_id=experiment_id,
        scale=scale,
        tables=tables,
        raw={
            "campaign_id": campaign_id,
            "repetitions": result.repetitions,
            "recovered_fraction": result.recovered_fraction,
            "recovery_times": [r.recovery_time for r in records],
            "recovered": [r.recovered for r in records],
            "recovery_schedulers": [r.scheduler for r in records],
        },
    )


def run_ag(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Corrupt/crash campaign on the AG baseline."""
    return _run_campaign_experiment(
        "ag_corrupt_recover", "scenario_ag_recovery", scale, seed, workers
    )


def run_tree(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Corrupt/crash campaign on the tree protocol."""
    return _run_campaign_experiment(
        "tree_corrupt_recover", "scenario_tree_recovery", scale, seed, workers
    )


def run_line_churn(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Churn storm on the line-of-traps protocol."""
    return _run_campaign_experiment(
        "line_churn_storm", "scenario_line_churn", scale, seed, workers
    )


def run_epoch_ag(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Epoch-switching clustered adversary on the AG baseline."""
    return _run_campaign_experiment(
        "ag_epoch_cluster_flip", "scenario_epoch_ag", scale, seed, workers
    )


def run_epoch_tree(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Bias-flip-at-silence adversary on the tree protocol."""
    return _run_campaign_experiment(
        "tree_epoch_bias_flip", "scenario_epoch_tree", scale, seed, workers
    )
