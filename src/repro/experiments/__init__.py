"""Reproduction experiments, one per paper artefact (see DESIGN.md §5)."""

from .base import SCALES, ExperimentResult, bench_scale_from_env, pick
from .registry import (
    REGISTRY,
    Experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "SCALES",
    "Experiment",
    "ExperimentResult",
    "bench_scale_from_env",
    "get_experiment",
    "list_experiments",
    "pick",
    "run_experiment",
]
