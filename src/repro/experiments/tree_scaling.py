"""Experiment ``tree_scaling`` — Theorem 3's ``O(n log n)`` protocol.

The ``O(log n)``-extra-state tree protocol is swept over ``n`` from two
starting families: uniform random configurations and the adversarial
"everyone on one leaf" pile-up (which forces a full reset cycle).  The
shape checks:

* growth exponent ≈ 1 once a single ``log n`` factor is divided out;
* the normalised ratio ``time/(n log n)`` stays flat;
* this is the best (fastest-growing-slowest) protocol in the paper,
  and the near-match to the ``Ω(n)`` lower bound for silent
  self-stabilising leader election.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.fitting import fit_power_law
from ..analysis.sweep import run_sweep
from ..analysis.tables import Table
from ..configurations.generators import (
    all_in_state_configuration,
    random_configuration,
)
from ..protocols.tree_protocol import TreeRankingProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "tree_scaling"
DESCRIPTION = "Theorem 3: O(log n) extra states give O(n log n) ranking"
PAPER_REFERENCE = "§5, Theorem 3"


def _build_random(params, rng):
    protocol = TreeRankingProtocol(int(params["n"]))
    return protocol, random_configuration(protocol, seed=rng)


def _build_leaf_pileup(params, rng):
    protocol = TreeRankingProtocol(int(params["n"]))
    leaf = protocol.tree.leaves[-1]
    return protocol, all_in_state_configuration(protocol, leaf)


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Sweep n for random and adversarial starts; fit n·log n growth."""
    ns = pick(
        scale,
        smoke=[64, 128, 256],
        small=[256, 512, 1024, 2048, 4096],
        paper=[512, 1024, 2048, 4096, 8192, 16384],
    )
    repetitions = pick(scale, smoke=2, small=3, paper=3)
    random_points = run_sweep(
        [{"n": n} for n in ns],
        _build_random,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )
    pileup_points = run_sweep(
        [{"n": n} for n in ns],
        _build_leaf_pileup,
        repetitions=repetitions,
        seed=seed + 1,
        workers=workers,
    )

    table = Table(
        title="Tree protocol (x = O(log n)): stabilisation time vs n",
        headers=[
            "n", "x", "random: median", "random/(n·log n)",
            "leaf pile-up: median", "pile-up/(n·log n)", "silent",
        ],
    )
    random_medians, pileup_medians = [], []
    for n, rnd, pile in zip(ns, random_points, pileup_points):
        protocol = TreeRankingProtocol(n)
        rnd_median = rnd.median_parallel_time()
        pile_median = pile.median_parallel_time()
        random_medians.append(rnd_median)
        pileup_medians.append(pile_median)
        nlogn = n * math.log(n)
        table.add_row(
            n,
            protocol.num_extra_states,
            rnd_median,
            rnd_median / nlogn,  # flat ⟺ time = Θ(n log n)
            pile_median,
            pile_median / nlogn,
            rnd.all_silent and pile.all_silent,
        )
    fit_random = fit_power_law(ns, random_medians, log_correction=1.0)
    fit_pileup = fit_power_law(ns, pileup_medians, log_correction=1.0)
    table.add_note(
        f"random starts: time ~ {fit_random.describe()} with one log n "
        "factor divided out — Theorem 3 predicts exponent ≈ 1"
    )
    table.add_note(
        f"leaf pile-up starts: time ~ {fit_pileup.describe()} "
        "(same normalisation; forces a full reset cycle)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={
            "ns": ns,
            "random_medians": random_medians,
            "pileup_medians": pileup_medians,
            "exponent_random": fit_random.exponent,
            "exponent_pileup": fit_pileup.exponent,
        },
    )
