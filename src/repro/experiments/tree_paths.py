"""Experiments on the §5 support lemmas — dispersal and the reset line.

``tree_paths`` (Lemmas 19–20): with all ``n`` agents at the root and
rule R1 alone (:class:`TreeDispersalProtocol`), the population disperses
into a *perfect* ranking — every rank occupied exactly once — in
``O(n log n)`` time whp.  We verify perfection and normalise the
measured time by ``n log n``.

``reset_line`` (Lemma 21 + Theorem 3 proof): starting from a solved
configuration corrupted so that one leaf holds two agents, the full
tree protocol fires the reset rule R2, the red epidemic empties the
whole tree within ``O(log n)`` *additional* parallel time, and the
population then re-ranks.  We measure the epidemic phase directly.
"""

from __future__ import annotations

from typing import Optional

import math

from repro._deps import np

from ..analysis.stats import summarise
from ..analysis.tables import Table
from ..core.configuration import Configuration
from ..core.jump import JumpEngine
from ..protocols.tree_protocol import TreeDispersalProtocol, TreeRankingProtocol
from .base import ExperimentResult, pick

DESCRIPTION_PATHS = "Lemmas 19–20: R1 disperses all-at-root into a perfect ranking"
DESCRIPTION_RESET = "Lemma 21: the reset epidemic empties the tree in O(log n) time"
PAPER_REFERENCE = "§5.1–§5.2, Lemmas 19–21"


def run_paths(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """All agents at the root; R1 only; measure perfect-dispersal time."""
    ns = pick(
        scale,
        smoke=[64, 128],
        small=[256, 512, 1024, 2048, 4096],
        paper=[1024, 2048, 4096, 8192, 16384],
    )
    repetitions = pick(scale, smoke=2, small=3, paper=3)
    table = Table(
        title="Tree dispersal from the root (R1 only, Lemmas 19–20)",
        headers=["n", "median time", "max time", "median/(n·log n)", "perfect"],
    )
    raw_rows = []
    for n in ns:
        protocol = TreeDispersalProtocol(n)
        start = Configuration.all_in_state(0, n, protocol.num_states)
        times = []
        perfect = True
        for rep in range(repetitions):
            engine = JumpEngine(
                protocol, start, np.random.default_rng(seed * 7919 + rep * 31 + n)
            )
            silent = engine.run()
            assert silent, "dispersal must reach silence"
            times.append(engine.interactions / n)
            perfect = perfect and all(c == 1 for c in engine.counts)
        summary = summarise(times)
        table.add_row(
            n, summary.median, summary.maximum,
            summary.median / (n * math.log(n)), perfect,
        )
        raw_rows.append({"n": n, "median": summary.median, "perfect": perfect})
    table.add_note(
        "'perfect' = every rank state holds exactly one agent (Lemma 19); "
        "flat median/(n·log n) matches the Lemma 20 envelope"
    )
    return ExperimentResult(
        experiment_id="tree_paths", scale=scale, tables=[table],
        raw={"rows": raw_rows},
    )


def _reset_phases(n: int, seed: int) -> tuple:
    """(time to first reset, epidemic duration, total time) for one run.

    Start: solved configuration with one agent moved from rank 1 onto a
    leaf, so the leaf holds two agents and rank 1 is empty — the
    smallest corruption that *requires* a reset.
    """
    protocol = TreeRankingProtocol(n)
    counts = [1] * protocol.num_states
    for state in protocol.extra_states:
        counts[state] = 0
    leaf = protocol.tree.leaves[-1]
    counts[1] -= 1
    counts[leaf] += 1
    engine = JumpEngine(
        protocol, Configuration(counts), np.random.default_rng(seed)
    )
    num_ranks = protocol.num_ranks
    reset_time = None
    tree_empty_time = None
    while True:
        event = engine.step()
        if event is None:
            break
        if reset_time is None and event.initiator_after >= num_ranks:
            reset_time = engine.interactions / n
        if (
            reset_time is not None
            and tree_empty_time is None
            and sum(engine.counts[:num_ranks]) == 0
        ):
            tree_empty_time = engine.interactions / n
    total = engine.interactions / n
    if reset_time is None or tree_empty_time is None:
        # Whp-complement event: the run stabilised without a full
        # epidemic (e.g. the two reset agents re-ranked directly).
        return None
    return reset_time, tree_empty_time - reset_time, total


def run_reset(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Measure the reset epidemic on minimally corrupted configurations."""
    ns = pick(
        scale,
        smoke=[64, 128],
        small=[256, 512, 1024, 2048],
        paper=[512, 1024, 2048, 4096, 8192],
    )
    repetitions = pick(scale, smoke=2, small=5, paper=5)
    table = Table(
        title="Reset epidemic after a leaf overload (Lemma 21)",
        headers=[
            "n", "t(reset fires)", "epidemic duration", "epidemic/log n",
            "total time", "total/(n·log n)",
        ],
    )
    raw_rows = []
    skipped = 0
    for n in ns:
        firsts, epidemics, totals = [], [], []
        rep = 0
        while len(totals) < repetitions:
            phases = _reset_phases(n, seed * 6007 + rep * 17 + n)
            rep += 1
            if phases is None:
                skipped += 1
                if skipped > 5 * repetitions:
                    raise AssertionError(
                        "reset epidemic almost never observed — "
                        "whp claim of Lemma 21 violated"
                    )
                continue
            first, epidemic, total = phases
            firsts.append(first)
            epidemics.append(epidemic)
            totals.append(total)
        epidemic_median = summarise(epidemics).median
        total_median = summarise(totals).median
        table.add_row(
            n,
            summarise(firsts).median,
            epidemic_median,
            epidemic_median / math.log(n),
            total_median,
            total_median / (n * math.log(n)),
        )
        raw_rows.append(
            {"n": n, "epidemic_median": epidemic_median,
             "total_median": total_median}
        )
    table.add_note(
        "epidemic duration = parallel time from the first reset (an agent "
        "entering X₁) until no agent remains in a rank state; "
        "flat epidemic/log n matches Lemma 21"
    )
    if skipped:
        table.add_note(
            f"{skipped} run(s) stabilised without a full epidemic and were "
            "redrawn (a probability-o(1) event, consistent with whp)"
        )
    return ExperimentResult(
        experiment_id="reset_line", scale=scale, tables=[table],
        raw={"rows": raw_rows, "skipped_runs": skipped},
    )
