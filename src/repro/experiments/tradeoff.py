"""Experiment ``state_time_tradeoff`` — extra states versus speed.

The paper's central theme (and its closing open question) is the
trade-off between the number of extra states ``x`` and stabilisation
time.  This experiment pins the population size and walks the trade-off
curve within the systems the paper provides:

* ``x = 0`` — the AG baseline on arbitrary starts (the quadratic
  regime);
* ``x = 2k`` for increasing ``k`` — the §5 tree protocol with ever
  longer reset lines.

The measured curve has three regimes:

1. a **cliff** below ``k ≈ (2/3)·log₂ n``: the reset line is too short
   for the Lemma 21 epidemic phases, agents leak back into the tree
   mid-reset, and the run churns for orders of magnitude longer (runs
   are cut off by an event budget and reported as lower bounds);
2. a **knee** at ``k = Θ(log n)``: the whp machinery engages and time
   drops to the quasilinear ``O(n log n)`` regime of Theorem 3;
3. a **plateau** beyond the knee: extra line states buy nothing more.

This is direct empirical support for the paper's ``x = O(log n)``
design point.
"""

from __future__ import annotations

from typing import Optional

import math

from ..analysis.sweep import run_sweep
from ..analysis.tables import Table
from ..configurations.generators import random_configuration
from ..protocols.ag import AGProtocol
from ..protocols.tree_protocol import TreeRankingProtocol
from .base import ExperimentResult, pick

EXPERIMENT_ID = "state_time_tradeoff"
DESCRIPTION = "extra states x vs stabilisation time at fixed n (paper's theme)"
PAPER_REFERENCE = "abstract + §6 (trade-off between extra states and time)"

# Converged tree runs need a few tens of thousands of events; churn in
# the cliff regime is cut off here and reported as a lower bound.
_EVENT_BUDGET = 400_000


def _build_ag(params, rng):
    protocol = AGProtocol(int(params["n"]))
    return protocol, random_configuration(protocol, seed=rng,
                                          include_extras=False)


def _build_tree(params, rng):
    protocol = TreeRankingProtocol(int(params["n"]), k=int(params["k"]))
    return protocol, random_configuration(protocol, seed=rng)


def run(
    scale: str = "small", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Walk the x-vs-time curve at fixed n."""
    n = pick(scale, smoke=128, small=512, paper=2048)
    repetitions = pick(scale, smoke=2, small=5, paper=5)
    event_budget = pick(scale, smoke=150_000, small=_EVENT_BUDGET,
                        paper=_EVENT_BUDGET)
    log_n = math.ceil(math.log2(n))
    ks = sorted({
        max(2, log_n // 3),
        max(2, log_n // 2),
        max(2, (2 * log_n) // 3),
        log_n,
        2 * log_n,
        4 * log_n,
    })

    ag_point = run_sweep(
        [{"n": n}], _build_ag, repetitions=repetitions, seed=seed,
        workers=workers,
    )[0]
    tree_points = run_sweep(
        [{"n": n, "k": k} for k in ks],
        _build_tree,
        repetitions=repetitions,
        seed=seed + 1,
        max_events=event_budget,
        workers=workers,
    )

    table = Table(
        title=f"Extra states vs stabilisation time at n={n} (random starts)",
        headers=["protocol", "x extra states", "median time", "time/n",
                 "all runs converged", "speedup vs x=0"],
    )
    ag_median = ag_point.median_parallel_time()
    table.add_row("AG", 0, ag_median, ag_median / n, True, 1.0)
    xs, medians, converged_flags = [0], [ag_median], [True]
    knee_k = None
    for k, point in zip(ks, tree_points):
        median = point.median_parallel_time()
        converged = point.all_silent
        if converged and knee_k is None:
            knee_k = k
        xs.append(2 * k)
        medians.append(median)
        converged_flags.append(converged)
        label = f"tree (k={k})"
        shown = median if converged else float("nan")
        table.add_row(
            label, 2 * k,
            shown if converged else f"> {median:,.0f} (cut off)",
            median / n, converged,
            ag_median / median if converged else float("nan"),
        )
    table.add_note(
        f"cliff: runs with k below ≈ (2/3)·log₂ n = "
        f"{(2 * log_n) // 3} churn past the {event_budget:,}-event budget "
        "(times shown are lower bounds)"
    )
    if knee_k is not None:
        table.add_note(
            f"knee at k = {knee_k} (x = {2 * knee_k}); beyond it the "
            "curve is flat — the paper's x = O(log n) design point"
        )
    table.add_note(
        "the paper's open question is whether o(n²) is possible at x = 0 "
        "for arbitrary starts; this curve shows what each extra state buys"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        scale=scale,
        tables=[table],
        raw={
            "n": n,
            "ks": ks,
            "xs": xs,
            "median_times": medians,
            "converged": converged_flags,
            "ag_median": ag_median,
            "knee_k": knee_k,
            "log2_n": log_n,
        },
    )
