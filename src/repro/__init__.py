"""repro — self-stabilising ranking & leader election population protocols.

A full reproduction of "Improving Efficiency in Near-State and
State-Optimal Self-Stabilising Leader Election Population Protocols"
(Gąsieniec, Grodzicki, Stachowiak; PODC 2025, arXiv:2502.01227).

Quickstart::

    from repro import TreeRankingProtocol, random_configuration, run_protocol

    protocol = TreeRankingProtocol(num_agents=500)
    start = random_configuration(protocol, seed=7)
    result = run_protocol(protocol, start, seed=7)
    assert result.silent and protocol.is_ranked(result.final_configuration)
    print(f"ranked in {result.parallel_time:.0f} parallel time")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core import (
    Configuration,
    Event,
    JumpEngine,
    MetricRecorder,
    PopulationProtocol,
    RankingProtocol,
    Recorder,
    RunResult,
    SequentialEngine,
    TrajectoryRecorder,
    corrupt_agents,
    crash_and_replace,
    make_rng,
    run_protocol,
)
from .configurations import (
    all_in_extras_configuration,
    all_in_state_configuration,
    distance_from_solved,
    doubled_prefix_configuration,
    k_distant_configuration,
    random_configuration,
    solved_configuration,
)
from .exceptions import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    SimulationLimitReached,
)
from .protocols import (
    AGProtocol,
    LeaderElectionResult,
    LineOfTrapsProtocol,
    ModifiedTreeProtocol,
    NodeKind,
    PerfectlyBalancedTree,
    RingOfTrapsProtocol,
    RoutingGraph,
    SingleTrapProtocol,
    TrapLayout,
    TreeDispersalProtocol,
    TreeRankingProtocol,
    build_routing_graph,
    count_leaders,
    elect_leader,
    line_lattice_size,
    line_parameter_for,
    ring_parameter_for,
)

__version__ = "1.0.0"

__all__ = [
    "AGProtocol",
    "Configuration",
    "ConfigurationError",
    "Event",
    "ExperimentError",
    "JumpEngine",
    "LeaderElectionResult",
    "LineOfTrapsProtocol",
    "MetricRecorder",
    "ModifiedTreeProtocol",
    "NodeKind",
    "PerfectlyBalancedTree",
    "PopulationProtocol",
    "ProtocolError",
    "RankingProtocol",
    "Recorder",
    "ReproError",
    "RingOfTrapsProtocol",
    "RoutingGraph",
    "RunResult",
    "SequentialEngine",
    "SimulationError",
    "SimulationLimitReached",
    "SingleTrapProtocol",
    "TrajectoryRecorder",
    "TrapLayout",
    "TreeDispersalProtocol",
    "TreeRankingProtocol",
    "__version__",
    "all_in_extras_configuration",
    "all_in_state_configuration",
    "build_routing_graph",
    "corrupt_agents",
    "count_leaders",
    "crash_and_replace",
    "distance_from_solved",
    "doubled_prefix_configuration",
    "elect_leader",
    "k_distant_configuration",
    "line_lattice_size",
    "line_parameter_for",
    "make_rng",
    "random_configuration",
    "ring_parameter_for",
    "run_protocol",
    "solved_configuration",
]
