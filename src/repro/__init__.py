"""repro — self-stabilising ranking & leader election population protocols.

A full reproduction of "Improving Efficiency in Near-State and
State-Optimal Self-Stabilising Leader Election Population Protocols"
(Gąsieniec, Grodzicki, Stachowiak; PODC 2025, arXiv:2502.01227).

Quickstart::

    from repro import TreeRankingProtocol, random_configuration, run_protocol

    protocol = TreeRankingProtocol(num_agents=500)
    start = random_configuration(protocol, seed=7)
    result = run_protocol(protocol, start, seed=7)
    assert result.silent and protocol.is_ranked(result.final_configuration)
    print(f"ranked in {result.parallel_time:.0f} parallel time")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core import (
    Configuration,
    Event,
    JumpEngine,
    MetricRecorder,
    PairScheduler,
    PopulationProtocol,
    RankingProtocol,
    Recorder,
    RunResult,
    ScheduledEngine,
    SequentialEngine,
    TrajectoryRecorder,
    UniformScheduler,
    WeightedScheduledEngine,
    arrive_agents,
    corrupt_agents,
    crash_and_replace,
    depart_agents,
    make_rng,
    run_protocol,
)
from .configurations import (
    all_in_extras_configuration,
    all_in_state_configuration,
    distance_from_solved,
    doubled_prefix_configuration,
    k_distant_configuration,
    random_configuration,
    solved_configuration,
)
from .exceptions import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    SimulationLimitReached,
)
from .protocols import (
    AGProtocol,
    LeaderElectionResult,
    LineOfTrapsProtocol,
    ModifiedTreeProtocol,
    NodeKind,
    PerfectlyBalancedTree,
    RingOfTrapsProtocol,
    RoutingGraph,
    SingleTrapProtocol,
    TrapLayout,
    TreeDispersalProtocol,
    TreeRankingProtocol,
    build_routing_graph,
    count_leaders,
    elect_leader,
    line_lattice_size,
    line_parameter_for,
    ring_parameter_for,
)
from .scenarios import (
    CampaignResult,
    CampaignRunner,
    ClusteredScheduler,
    FaultPhase,
    PhaseLog,
    ProtocolSpec,
    RunPhase,
    Scenario,
    ScenarioResult,
    SchedulerSpec,
    StartSpec,
    StateBiasedScheduler,
    get_campaign,
    list_campaigns,
    run_campaign,
    run_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "AGProtocol",
    "CampaignResult",
    "CampaignRunner",
    "ClusteredScheduler",
    "Configuration",
    "ConfigurationError",
    "Event",
    "ExperimentError",
    "FaultPhase",
    "JumpEngine",
    "LeaderElectionResult",
    "LineOfTrapsProtocol",
    "MetricRecorder",
    "ModifiedTreeProtocol",
    "NodeKind",
    "PairScheduler",
    "PerfectlyBalancedTree",
    "PhaseLog",
    "PopulationProtocol",
    "ProtocolError",
    "ProtocolSpec",
    "RankingProtocol",
    "Recorder",
    "ReproError",
    "RingOfTrapsProtocol",
    "RoutingGraph",
    "RunPhase",
    "RunResult",
    "Scenario",
    "ScenarioResult",
    "ScheduledEngine",
    "SchedulerSpec",
    "SequentialEngine",
    "SimulationError",
    "SimulationLimitReached",
    "SingleTrapProtocol",
    "StartSpec",
    "StateBiasedScheduler",
    "TrajectoryRecorder",
    "TrapLayout",
    "TreeDispersalProtocol",
    "TreeRankingProtocol",
    "UniformScheduler",
    "WeightedScheduledEngine",
    "__version__",
    "all_in_extras_configuration",
    "all_in_state_configuration",
    "arrive_agents",
    "build_routing_graph",
    "corrupt_agents",
    "count_leaders",
    "crash_and_replace",
    "depart_agents",
    "distance_from_solved",
    "doubled_prefix_configuration",
    "elect_leader",
    "get_campaign",
    "k_distant_configuration",
    "line_lattice_size",
    "line_parameter_for",
    "list_campaigns",
    "make_rng",
    "random_configuration",
    "ring_parameter_for",
    "run_campaign",
    "run_protocol",
    "run_scenario",
    "solved_configuration",
]
