"""Crash-safe file writes shared across the repo.

One implementation of the temp-file + flush + fsync + ``os.replace``
pattern (born in :mod:`repro.ensemble.manifest`, now shared): a crash —
including SIGKILL — can never leave a half-written file under a valid
name.  A file either has its complete content or does not exist.

Users: ensemble manifests/shards/aggregates, bench ``BENCH_*.json``
records, and JSONL trace files (:mod:`repro.obs.trace`).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict

__all__ = ["atomic_write_json", "atomic_write_text", "fsync_directory"]


def fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory's entries.

    ``os.replace`` makes the rename atomic but not durable: on power
    failure the *directory entry* itself can be lost unless the
    directory is fsynced too.  Some filesystems (and all of Windows)
    refuse to open or fsync directories — those errors are swallowed,
    keeping the write path portable while upgrading durability where
    the platform allows it.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        descriptor = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write_text(path: str, text: str, suffix: str = ".txt") -> None:
    """Write ``text`` durably: temp file + flush + fsync + rename.

    The containing directory is fsynced after the rename (best effort)
    so the new directory entry survives power failure — "done +
    checksum implies trustworthy" holds end to end.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=suffix
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    payload: Dict,
    sort_keys: bool = True,
    indent: int = 1,
) -> None:
    """Write JSON durably via :func:`atomic_write_text`.

    Deterministic bytes for deterministic payloads (sorted keys, fixed
    separators by default) — byte-comparing two aggregate files is
    meaningful.  Callers with an established on-disk format (the bench
    records) pass their own ``sort_keys``/``indent``.
    """
    text = json.dumps(payload, sort_keys=sort_keys, indent=indent) + "\n"
    atomic_write_text(path, text, suffix=".json")
