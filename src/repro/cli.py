"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``list`` — show all registered experiments;
* ``experiment <id>`` — run one experiment and print its tables;
* ``simulate`` — run one protocol from a chosen start and report the
  stabilisation time (and leader);
* ``scenario`` — list or run scripted fault campaigns (mid-run
  corruption, crashes, churn, adversarial schedulers) and print the
  recovery-time tables;
* ``render`` — print the paper's structures (Figure 1 graph, Figure 2
  tree, ring/line occupancy);
* ``bench`` — measure hot-path events/sec against the frozen seed
  engine and write ``BENCH_<timestamp>.json`` (``--instrument`` reports
  engine counters instead of wall-clock);
* ``ensemble`` — run, resume, join, and inspect resumable sharded
  ensembles (10⁵+ seeded scenario runs with crash recovery; ``join``
  adds cooperative multi-process/multi-machine draining via
  crash-tolerant shard leases; see README);
* ``trace`` — summarize, diff, and validate structured run traces
  (``repro scenario run ... --trace out.jsonl``);
* ``serve`` — simulation-as-a-service: an HTTP + WebSocket server
  accepting versioned JobSpecs (see ``repro.jobspec``), with digest
  caching, bounded-queue backpressure, pause/resume, and live event
  streaming.

``simulate`` and ``scenario run`` construct the same
:class:`~repro.jobspec.JobSpec` the server accepts, so every entry
point speaks one schema; trajectories are bit-identical to the
pre-JobSpec flag handling.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import __version__
from .configurations.generators import solved_configuration
from .core.engine import run_protocol
from .exceptions import ReproError
from .experiments import SCALES, list_experiments, run_experiment
from .protocols.ag import AGProtocol
from .protocols.leader import count_leaders
from .protocols.line import LineOfTrapsProtocol
from .protocols.ring import RingOfTrapsProtocol
from .protocols.routing import build_routing_graph
from .protocols.tree import PerfectlyBalancedTree
from .protocols.tree_protocol import TreeRankingProtocol
from .viz.ascii import render_ring, render_routing_graph, render_tree

__all__ = ["main", "build_parser"]

_PROTOCOLS = {
    "ag": AGProtocol,
    "ring": RingOfTrapsProtocol,
    "line": LineOfTrapsProtocol,
    "tree": TreeRankingProtocol,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Self-stabilising ranking / leader election population "
            "protocols (PODC 2025 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    exp = sub.add_parser("experiment", help="run a registered experiment")
    exp.add_argument("experiment_id", help="experiment id (see `repro list`)")
    exp.add_argument("--scale", choices=SCALES, default="small")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for sweep repetitions (default: serial; "
        "results are bit-identical at any worker count)",
    )
    exp.add_argument(
        "--markdown", action="store_true",
        help="emit Markdown tables instead of fixed-width text",
    )

    sce = sub.add_parser(
        "scenario",
        help="run scripted fault campaigns (mid-run faults, churn, "
        "adversarial schedulers)",
    )
    sce_sub = sce.add_subparsers(dest="scenario_command", required=True)
    sce_sub.add_parser("list", help="list all canned campaigns")
    sce_run = sce_sub.add_parser("run", help="run one campaign")
    sce_run.add_argument(
        "campaign_id", help="campaign id (see `repro scenario list`)"
    )
    sce_run.add_argument("--scale", choices=SCALES, default="small")
    sce_run.add_argument("--seed", type=int, default=0)
    sce_run.add_argument(
        "--repetitions", type=int, default=None,
        help="override the campaign's per-scale repetition count",
    )
    sce_run.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for campaign repetitions (default: "
        "serial; bit-identical at any worker count)",
    )
    sce_run.add_argument(
        "--markdown", action="store_true",
        help="emit Markdown tables instead of fixed-width text",
    )
    sce_run.add_argument(
        "--trace", default=None, metavar="JSONL",
        help="write the campaign's merged logical trace to this file "
        "(deterministic: identical at any --workers count; inspect "
        "with `repro trace summarize`)",
    )

    sim = sub.add_parser("simulate", help="run one protocol to silence")
    sim.add_argument("--protocol", choices=sorted(_PROTOCOLS), default="tree")
    sim.add_argument("--n", type=int, default=100, help="population size")
    sim.add_argument(
        "--start", choices=["random", "k-distant", "pileup", "solved"],
        default="random",
    )
    sim.add_argument("--k", type=int, default=1, help="distance for k-distant")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine", choices=["jump", "sequential"], default="jump"
    )
    sim.add_argument(
        "--backend", choices=["python", "numpy"], default="python",
        help="execution substrate: 'python' (scalar hot paths, default) "
        "or 'numpy' (the vectorised batch kernel where supported; "
        "step-distribution-identical, needs the repro[numpy] extra)",
    )
    sim.add_argument(
        "--max-interactions", type=int, default=None,
        help="abort after this many scheduler steps",
    )

    ren = sub.add_parser("render", help="print a structure as text")
    ren.add_argument(
        "structure", choices=["figure1", "figure2", "graph", "tree", "ring"]
    )
    ren.add_argument(
        "--size", type=int, default=None,
        help="lines for graph, n for tree, m for ring",
    )

    rep = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    rep.add_argument("--scale", choices=SCALES, default="small")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for sweep repetitions (default: serial)",
    )
    rep.add_argument(
        "--output", default="EXPERIMENTS.md",
        help="path to write (use '-' for stdout)",
    )

    ben = sub.add_parser(
        "bench",
        help="measure hot-path throughput vs the frozen seed engine",
    )
    ben.add_argument(
        "--quick", action="store_true",
        help="small populations and budgets (seconds, for CI smoke)",
    )
    ben.add_argument("--seed", type=int, default=7)
    ben.add_argument(
        "--output-dir", default=".",
        help="directory for BENCH_<timestamp>.json ('-' to skip writing)",
    )
    ben.add_argument(
        "--require-speedup", action="append", default=[],
        metavar="CASE:FLOOR",
        help="fail unless CASE's speedup over the frozen seed baseline "
        "is >= FLOOR (repeatable; the CI regression gate, e.g. "
        "tree-n256:2.0)",
    )
    ben.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="diff this run against a committed BENCH_*.json and fail "
        "on any >15%% regression of the machine-relative throughput "
        "ratios (the CI trend gate)",
    )
    ben.add_argument(
        "--compare-tolerance", type=float, default=0.15,
        help="allowed fractional ratio regression for --compare "
        "(default 0.15)",
    )
    ben.add_argument(
        "--history", default=None, metavar="CSV",
        help="append this run's per-case events/s to a bench_history.csv "
        "and print the ASCII trend table (the nightly trend artifact)",
    )
    ben.add_argument(
        "--instrument", action="store_true",
        help="report engine counters (draws per event, proposals per "
        "pool draw, sprint share) instead of timing — the residual-cost "
        "breakdown",
    )
    ben.add_argument(
        "--backend", choices=["python", "numpy"], default="python",
        help="backend for --instrument runs: 'numpy' routes cases onto "
        "the batch kernel and reports its batch-level counters (events "
        "per Python touch, refill/confirm rates); timing runs always "
        "measure both backends via the *-np cases",
    )

    ens = sub.add_parser(
        "ensemble",
        help="run / resume / inspect resumable sharded ensembles",
    )
    ens_sub = ens.add_subparsers(dest="ensemble_command", required=True)
    ens_run = ens_sub.add_parser(
        "run",
        help="run one sharded ensemble (or resume an interrupted one)",
    )
    ens_run.add_argument(
        "--campaign", default=None, metavar="ID",
        help="campaign id (see `repro scenario list`); required unless "
        "--resume reads it from the manifest",
    )
    ens_run.add_argument("--scale", choices=SCALES, default="smoke")
    ens_run.add_argument("--seed", type=int, default=0)
    ens_run.add_argument(
        "--runs", type=int, default=None,
        help="total seeded runs (default: the campaign's per-scale "
        "repetition count)",
    )
    ens_run.add_argument(
        "--shard-size", type=int, default=1000,
        help="runs per shard file (bounds peak memory; default 1000)",
    )
    ens_run.add_argument(
        "--out", required=True, metavar="DIR",
        help="ensemble directory (manifest, shards, aggregates)",
    )
    ens_run.add_argument(
        "--workers", type=int, default=None,
        help="supervised process-pool size (default: serial; results "
        "are bit-identical at any worker count)",
    )
    ens_run.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted ensemble: verify finished shards "
        "by checksum, quarantine corrupt ones, recompute only the gap",
    )
    ens_run.add_argument(
        "--max-events", type=int, default=None,
        help="default per-phase event budget for scenario run phases",
    )
    ens_run.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock deadline in seconds (hung runs are "
        "killed, retried, then quarantined)",
    )
    ens_run.add_argument(
        "--max-attempts", type=int, default=3,
        help="crash/hang attempts per run before quarantine (default 3)",
    )
    ens_run.add_argument(
        "--backoff", type=float, default=0.25,
        help="first retry delay in seconds, doubling per attempt "
        "(default 0.25)",
    )
    ens_run.add_argument(
        "--progress", action="store_true",
        help="live ASCII progress dashboard on stderr (shards, runs, "
        "throughput, ETA, supervision interventions)",
    )
    ens_join = ens_sub.add_parser(
        "join",
        help="join an ensemble directory as one cooperative worker "
        "(crash-tolerant shard leases; run N of these against one "
        "shared directory)",
    )
    ens_join.add_argument(
        "out", metavar="OUT_DIR",
        help="shared ensemble directory (the first joiner bootstraps "
        "the manifest from the flags below; later joiners read it)",
    )
    ens_join.add_argument(
        "--campaign", default=None, metavar="ID",
        help="campaign id, used only if this joiner creates the "
        "manifest (required then; later joiners may omit it or must "
        "match)",
    )
    ens_join.add_argument("--scale", choices=SCALES, default="smoke")
    ens_join.add_argument("--seed", type=int, default=0)
    ens_join.add_argument(
        "--runs", type=int, default=None,
        help="total seeded runs, used only at manifest bootstrap",
    )
    ens_join.add_argument(
        "--shard-size", type=int, default=1000,
        help="runs per shard file, used only at manifest bootstrap",
    )
    ens_join.add_argument(
        "--max-events", type=int, default=None,
        help="default per-phase event budget, used only at bootstrap",
    )
    ens_join.add_argument(
        "--workers", type=int, default=None,
        help="this joiner's supervised process-pool size (default: "
        "serial)",
    )
    ens_join.add_argument(
        "--ttl", type=float, default=30.0,
        help="shard lease time-to-live in seconds; a worker dead "
        "longer than this has its shard reclaimed (default 30)",
    )
    ens_join.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="override the worker identity in leases and traces "
        "(default: <host>-<pid>-<uuid>)",
    )
    ens_join.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock deadline in seconds",
    )
    ens_join.add_argument(
        "--max-attempts", type=int, default=3,
        help="crash/hang attempts per run before quarantine (default 3)",
    )
    ens_join.add_argument(
        "--backoff", type=float, default=0.25,
        help="first retry delay in seconds, doubling per attempt "
        "(default 0.25)",
    )
    ens_join.add_argument(
        "--progress", action="store_true",
        help="narrate claims, commits, steals, and reconciliation on "
        "stderr",
    )
    ens_join.add_argument(
        "--trace", default=None, metavar="JSONL",
        help="write this worker's operational trace (lease claims/"
        "renews/steals, shard commits, supervision events) to this "
        "file; inspect with `repro trace validate`",
    )
    ens_status = ens_sub.add_parser(
        "status", help="summarise an ensemble directory"
    )
    ens_status.add_argument("--out", required=True, metavar="DIR")

    trc = sub.add_parser(
        "trace", help="summarize / diff / validate structured run traces"
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    trc_sum = trc_sub.add_parser(
        "summarize",
        help="rebuild the campaign recovery tables from a trace file",
    )
    trc_sum.add_argument("trace_path", metavar="JSONL")
    trc_diff = trc_sub.add_parser(
        "diff",
        help="compare two traces' logical histories (exit 1 on any "
        "difference)",
    )
    trc_diff.add_argument("trace_a", metavar="A.JSONL")
    trc_diff.add_argument("trace_b", metavar="B.JSONL")
    trc_val = trc_sub.add_parser(
        "validate", help="schema-check a trace file"
    )
    trc_val.add_argument("trace_path", metavar="JSONL")

    srv = sub.add_parser(
        "serve",
        help="serve simulations over HTTP/WebSocket (versioned JobSpec "
        "API; digest-cached results, bounded-queue backpressure, live "
        "event streaming; see README 'Serving')",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; the bound port is printed)",
    )
    srv.add_argument(
        "--queue-size", type=int, default=16,
        help="bounded job-queue depth; submissions beyond it are "
        "rejected with 429 + Retry-After (default 16)",
    )
    srv.add_argument(
        "--cache-size", type=int, default=32,
        help="finished results kept for digest-identical replay "
        "(default 32)",
    )
    srv.add_argument(
        "--workers", type=int, default=None,
        help="supervised process-pool size for scenario repetitions "
        "(default: serial, which streams records live per repetition)",
    )
    return parser


def _cmd_list() -> int:
    for experiment in list_experiments():
        print(f"{experiment.experiment_id:20s} {experiment.description}")
        print(f"{'':20s}   [{experiment.paper_reference}]")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.experiment_id,
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
    )
    print(result.to_markdown() if args.markdown else result.render())
    return 0


def _describe_epoch(epoch) -> str:
    """One-line rendering of a timeline segment for `scenario run`."""
    scheduler = epoch.label or epoch.scheduler.kind
    if epoch.until is None:
        return f"{scheduler} (until the run ends)"
    if epoch.until in ("events", "interactions"):
        return f"{scheduler} for {epoch.value} {epoch.until}"
    if epoch.until == "predicate":
        return f"{scheduler} until {epoch.predicate}"
    return f"{scheduler} until {epoch.until}"


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .analysis.recovery import (
        epoch_table,
        phase_table,
        recovery_table,
        survival_table,
    )
    from .scenarios import get_campaign, list_campaigns, run_campaign

    if args.scenario_command == "list":
        for campaign in list_campaigns():
            print(f"{campaign.campaign_id:24s} {campaign.description}")
        return 0

    from .jobspec import JobSpec

    campaign = get_campaign(args.campaign_id)
    # The run is specified by the same versioned JobSpec `repro serve`
    # accepts; run_campaign consumes the spec's fields, so the
    # trajectories are bit-identical to the pre-JobSpec flag handling.
    spec = JobSpec.from_campaign(
        args.campaign_id,
        scale=args.scale,
        seed=args.seed,
        repetitions=args.repetitions,
        trace=args.trace is not None,
    )
    scenario = spec.scenario
    repetitions = spec.repetitions
    result = run_campaign(
        scenario,
        repetitions=repetitions,
        seed=spec.seed,
        workers=args.workers,
        collect_trace=spec.trace,
    )
    if args.trace is not None:
        from .obs import TraceWriter, merge_trace_events

        writer = TraceWriter(
            args.trace,
            source="scenario-run",
            campaign=args.campaign_id,
            scale=args.scale,
            seed=args.seed,
            repetitions=repetitions,
            jobspec_digest=spec.digest(),
        )
        writer.extend(
            merge_trace_events([r.trace_events for r in result.results])
        )
        print(f"wrote trace {writer.write()}", file=sys.stderr)
    tables = [recovery_table(result), phase_table(result),
              survival_table(result)]
    if scenario.timeline:
        tables.append(epoch_table(result))
    print(f"campaign     : {campaign.campaign_id}")
    print(f"scenario     : {scenario.description or scenario.name}")
    print(f"protocol     : {scenario.protocol.kind} "
          f"(n={scenario.protocol.num_agents})")
    if scenario.timeline:
        print("scheduler    : epoch timeline — "
              + "; then ".join(
                  _describe_epoch(epoch) for epoch in scenario.timeline
              ))
    else:
        print(f"scheduler    : {scenario.scheduler.kind}")
    print(f"repetitions  : {repetitions} (seed {args.seed})")
    print(f"recovered    : {result.recovered_fraction:.0%} of repetitions "
          "re-silenced after every fault")
    print()
    print("\n\n".join(
        table.to_markdown() if args.markdown else table.render()
        for table in tables
    ))
    return 0 if result.recovered_fraction == 1.0 else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .jobspec import JobSpec

    legacy = dict(
        protocol=args.protocol,
        n=args.n,
        start=args.start,
        seed=args.seed,
        engine=args.engine,
        backend=args.backend,
        max_interactions=args.max_interactions,
    )
    if args.start == "k-distant":
        # k only reaches the spec when it actually applies — the
        # adapter warns on genuinely conflicting combinations.
        legacy["k"] = args.k
    spec = JobSpec.from_legacy_kwargs(**legacy)
    kwargs = spec.to_run_kwargs()
    protocol = kwargs.pop("protocol")
    start = kwargs.pop("configuration")
    result = run_protocol(protocol, start, **kwargs)
    final = result.final_configuration
    print(f"protocol            : {protocol.name}")
    print(f"population n        : {protocol.num_agents}")
    print(f"extra states x      : {protocol.num_extra_states}")
    print(f"silent              : {result.silent}")
    print(f"correctly ranked    : {protocol.is_ranked(final)}")
    print(f"unique leader       : {count_leaders(protocol, final) == 1}")
    print(f"interactions        : {result.interactions}")
    print(f"parallel time       : {result.parallel_time:.1f}")
    print(f"productive events   : {result.events}")
    print(f"wall time           : {result.wall_time_s:.3f}s")
    return 0 if result.silent else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    content = generate_report(
        scale=args.scale, seed=args.seed, workers=args.workers
    )
    if args.output == "-":
        print(content)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from .analysis.bench import (
        append_bench_history,
        check_speedup_floors,
        compare_bench,
        load_bench,
        read_bench_history,
        render_bench,
        run_bench,
        write_bench_json,
    )

    # Validate before measuring — the suite takes a while and the JSON
    # is its whole point.
    if args.output_dir != "-" and not os.path.isdir(args.output_dir):
        raise ReproError(f"output directory {args.output_dir!r} does not exist")
    baseline = None
    if args.compare is not None:
        if not os.path.isfile(args.compare):
            raise ReproError(f"baseline record {args.compare!r} does not exist")
        baseline = load_bench(args.compare)
    floors = {}
    for spec in args.require_speedup:
        case_id, sep, floor = spec.rpartition(":")
        if not sep or not case_id:
            raise ReproError(
                f"--require-speedup expects CASE:FLOOR, got {spec!r}"
            )
        try:
            floors[case_id] = float(floor)
        except ValueError:
            raise ReproError(
                f"--require-speedup floor {floor!r} is not a number"
            ) from None
    if args.instrument:
        from .analysis.bench import instrument_bench, render_instrument

        print(render_instrument(
            instrument_bench(
                quick=args.quick, seed=args.seed, backend=args.backend
            )
        ))
        return 0
    record = run_bench(quick=args.quick, seed=args.seed)
    print(render_bench(record))
    if args.output_dir != "-":
        path = write_bench_json(record, output_dir=args.output_dir)
        print(f"wrote {path}")
    if args.history is not None:
        rows = append_bench_history(record, args.history)
        print(f"appended {rows} rows to {args.history}")
        from .viz.ascii import render_trend_table

        print(render_trend_table(read_bench_history(args.history)))
    if floors:
        check_speedup_floors(record, floors)
        print(
            "speedup floors ok: "
            + ", ".join(f"{c}>={f}" for c, f in sorted(floors.items()))
        )
    if baseline is not None:
        lines = compare_bench(
            record, baseline, tolerance=args.compare_tolerance
        )
        print(
            f"trend vs baseline {baseline.get('timestamp', '?')} "
            f"(tolerance {args.compare_tolerance:.0%}):"
        )
        for line in lines:
            print(f"  {line}")
    return 0


def _print_ensemble_summary(aggregate: dict, out_dir: str) -> int:
    """The shared end-of-run report for ``ensemble run`` and ``join``."""
    summary = aggregate["aggregates"]
    print(f"campaign      : {aggregate['campaign']} "
          f"(scale {aggregate['scale']}, seed {aggregate['seed']})")
    print(f"runs          : {summary['runs']} of "
          f"{aggregate['total_runs']} "
          f"({summary['failed_jobs']} quarantined)")
    recovered = summary["recovered_all"]
    print(f"recovered all : {recovered['count']} "
          f"({recovered['fraction']:.1%})")
    times = summary["parallel_time"]
    print(f"parallel time : mean {times['mean']:.1f}, "
          f"p50 {times['p50']:.1f}, p90 {times['p90']:.1f}, "
          f"p99 {times['p99']:.1f}")
    print(f"aggregates    : {out_dir}/aggregates.json")
    return 0 if summary["failed_jobs"] == 0 else 1


def _cmd_ensemble_join(args: argparse.Namespace) -> int:
    from .analysis.supervision import ShutdownLatch, SupervisionPolicy
    from .ensemble import join_ensemble, worker_identity

    policy = SupervisionPolicy(
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        fail_fast=False,
    )
    worker = args.worker_id or worker_identity()
    writer = None
    observer = None
    if args.trace is not None:
        from .obs import TraceWriter

        writer = TraceWriter(
            args.trace,
            source="ensemble-join",
            worker=worker,
            out_dir=args.out,
        )

        def observer(kind, fields):
            writer.emit(kind, **fields)

    progress = None
    if args.progress:
        def progress(line):
            print(line, file=sys.stderr)
    with ShutdownLatch() as latch:
        try:
            aggregate = join_ensemble(
                args.out,
                campaign_id=args.campaign,
                scale=args.scale,
                total_runs=args.runs,
                shard_size=args.shard_size,
                seed=args.seed,
                default_max_events=args.max_events,
                workers=args.workers,
                policy=policy,
                ttl=args.ttl,
                worker=worker,
                shutdown=latch,
                progress=progress,
                observer=observer,
            )
        finally:
            if writer is not None:
                print(f"wrote trace {writer.write()}", file=sys.stderr)
    if aggregate is None:
        print(
            f"worker {worker} stopped on request — finished shards are "
            f"committed; rejoin with `repro ensemble join {args.out}`",
            file=sys.stderr,
        )
        return 143
    return _print_ensemble_summary(aggregate, args.out)


def _cmd_ensemble(args: argparse.Namespace) -> int:
    from .analysis.supervision import SupervisionPolicy
    from .ensemble import ensemble_status, run_ensemble

    if args.ensemble_command == "join":
        return _cmd_ensemble_join(args)

    if args.ensemble_command == "status":
        status = ensemble_status(args.out)
        scalars = {
            k: v for k, v in status.items()
            if k not in ("shards", "throughput_runs_per_s", "eta_s",
                         "workers")
        }
        width = max(len(key) for key in scalars)
        for key, value in scalars.items():
            print(f"{key:{width}s} : {value}")
        if status["shards"]:
            print(f"{'shards':{width}s} :")
            print(f"  {'shard':>5} {'runs':>6} {'runs/s':>10}")
            for row in status["shards"]:
                rate = row["throughput_runs_per_s"]
                rate_text = f"{rate:,.1f}" if rate is not None else "-"
                print(f"  {row['index']:>5} {row['runs']:>6} {rate_text:>10}")
        if status["workers"]:
            print(f"{'workers':{width}s} :")
            print(f"  {'shard':>5} {'token':>5} {'expires':>9}  owner")
            for row in status["workers"]:
                expiry = (
                    "EXPIRED"
                    if row["expired"]
                    else f"{row['expires_in_s']:.1f}s"
                )
                print(
                    f"  {row['shard']:>5} {row['token']:>5} "
                    f"{expiry:>9}  {row['owner']}"
                )
        from .viz.ascii import render_ensemble_progress

        print(render_ensemble_progress(
            runs_done=status["runs_done"],
            total_runs=status["total_runs"],
            shards_done=status["shards_done"],
            shards_total=status["shards_total"],
            throughput=status["throughput_runs_per_s"],
            eta_s=status["eta_s"],
        ))
        return 0 if status["complete"] else 1

    policy = SupervisionPolicy(
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        fail_fast=False,
    )
    observer = None
    if args.progress:
        import time

        from .ensemble.manifest import load_manifest
        from .viz.ascii import render_ensemble_progress

        tally = {"runs": 0, "shards": 0, "retries": 0, "quarantined": 0}
        totals = {}
        begin = time.monotonic()

        def observer(kind, fields):
            if kind == "retry":
                tally["retries"] += 1
            elif kind == "quarantine":
                tally["quarantined"] += 1
            elif kind == "shard_done":
                tally["shards"] += 1
                tally["runs"] += fields["stop"] - fields["start"]
            else:
                return
            if not totals:
                # The manifest is durably on disk before any shard runs;
                # it knows the true totals even on --resume.
                manifest = load_manifest(args.out)
                totals["runs"] = manifest["total_runs"]
                totals["shards"] = len(manifest["shards"])
                already = sum(
                    s["stop"] - s["start"]
                    for s in manifest["shards"]
                    if s["status"] == "done"
                )
                totals["head_start"] = already - tally["runs"]
                totals["shard_head_start"] = (
                    sum(
                        1 for s in manifest["shards"]
                        if s["status"] == "done"
                    )
                    - tally["shards"]
                )
            elapsed = time.monotonic() - begin
            throughput = tally["runs"] / elapsed if elapsed > 0 else None
            runs_done = tally["runs"] + max(0, totals["head_start"])
            remaining = totals["runs"] - runs_done
            print(
                render_ensemble_progress(
                    runs_done=runs_done,
                    total_runs=totals["runs"],
                    shards_done=(
                        tally["shards"]
                        + max(0, totals["shard_head_start"])
                    ),
                    shards_total=totals["shards"],
                    throughput=throughput,
                    eta_s=(
                        remaining / throughput
                        if throughput and remaining > 0
                        else None
                    ),
                    quarantined=tally["quarantined"],
                    retries=tally["retries"],
                ),
                file=sys.stderr,
            )

    aggregate = run_ensemble(
        args.out,
        campaign_id=args.campaign,
        scale=args.scale,
        total_runs=args.runs,
        shard_size=args.shard_size,
        seed=args.seed,
        workers=args.workers,
        default_max_events=args.max_events,
        policy=policy,
        resume=args.resume,
        progress=lambda line: print(line, file=sys.stderr),
        observer=observer,
    )
    return _print_ensemble_summary(aggregate, args.out)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        TraceReader,
        diff_traces,
        summarize_trace,
        validate_trace,
    )

    if args.trace_command == "summarize":
        reader = TraceReader(args.trace_path)
        print(summarize_trace(reader.records))
        return 0
    if args.trace_command == "validate":
        reader = TraceReader(args.trace_path)
        validate_trace(reader.records)
        logical = len(reader.logical())
        operational = len(reader.operational())
        print(
            f"{args.trace_path}: valid v{reader.header['version']} trace "
            f"from {reader.header.get('source', '?')} — {logical} logical "
            f"+ {operational} operational records"
        )
        return 0
    lines = diff_traces(
        TraceReader(args.trace_a).logical(),
        TraceReader(args.trace_b).logical(),
    )
    if not lines:
        print("logical histories are identical")
        return 0
    for line in lines:
        print(line)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import serve_forever

    # SIGTERM → graceful wind-down → exit 143 (the `ensemble join`
    # contract); SIGINT → 130.  A running job is parked at its next
    # safe boundary before the process exits.
    return asyncio.run(
        serve_forever(
            host=args.host,
            port=args.port,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            workers=args.workers,
        )
    )


def _cmd_render(args: argparse.Namespace) -> int:
    if args.structure == "figure1":
        print(render_routing_graph(build_routing_graph(16)))
    elif args.structure == "figure2":
        print(render_tree(PerfectlyBalancedTree(9)))
    elif args.structure == "graph":
        print(render_routing_graph(build_routing_graph(args.size or 16)))
    elif args.structure == "tree":
        print(render_tree(PerfectlyBalancedTree(args.size or 9)))
    else:
        protocol = RingOfTrapsProtocol(m=args.size or 4)
        counts = solved_configuration(protocol).counts_list()
        print(render_ring(protocol, counts))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "ensemble":
            return _cmd_ensemble(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_render(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # One clean line instead of a stack trace; long-running
        # commands are interrupted deliberately all the time.
        message = "interrupted"
        ensemble_command = getattr(args, "ensemble_command", None)
        if args.command == "ensemble" and ensemble_command == "run":
            message += (
                f" — finished shards are safe; continue with "
                f"`repro ensemble run --out {args.out} --resume`"
            )
        elif args.command == "ensemble" and ensemble_command == "join":
            message += (
                f" — committed shards are safe; any held lease expires "
                f"after its TTL; continue with "
                f"`repro ensemble join {args.out}`"
            )
        print(message, file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
