"""Weight families: incremental bookkeeping of productive ordered pairs.

In the probabilistic population protocol model a scheduler draws, at
every step, one *ordered* pair of distinct agents uniformly at random.
Most draws are null (the transition function leaves both agents
unchanged); the expensive protocols of the paper perform `Θ(n²)` such
draws.  The jump engine therefore never enumerates null interactions —
it only needs, at any moment,

* ``W`` — the exact number of *productive* ordered agent pairs, and
* a way to sample one productive pair with probability ``1/W`` each.

Every protocol in the paper induces productive pairs of exactly three
structural shapes, captured by the three :class:`Family` subclasses
below.  Families hold *disjoint* sets of ordered state pairs, and the
union over a protocol's families must equal the productive support of
its transition function (verified by :func:`check_family_coverage`).

All weights are exact Python integers (pair counts), updated
incrementally on every agent count change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import SimulationError
from .fenwick import FenwickTree

__all__ = [
    "Family",
    "SameStatePairs",
    "OrderedProduct",
    "TriangularLine",
    "check_family_coverage",
]

# A callable that returns a uniform integer in [0, bound).
RandBelow = Callable[[int], int]


class Family(ABC):
    """A set of ordered state pairs, weighted by current agent counts."""

    @property
    @abstractmethod
    def weight(self) -> int:
        """Number of productive ordered agent pairs in this family."""

    @abstractmethod
    def on_count_change(self, state: int, old: int, new: int) -> int:
        """Notify the family that ``state``'s agent count changed.

        Returns the resulting change of :attr:`weight`, so callers can
        maintain the total productive weight ``W`` incrementally instead
        of re-summing every family after every event.
        """

    @abstractmethod
    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        """Draw a productive (initiator, responder) state pair uniformly."""

    @abstractmethod
    def covers(self, initiator: int, responder: int) -> bool:
        """Structural membership test (ignores current counts).

        ``covers(si, sj)`` is True iff the ordered pair ``(si, sj)``
        belongs to this family's pair set, i.e. it would be productive
        whenever enough agents occupy those states.
        """

    @abstractmethod
    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every ordered state pair this family covers.

        The enumeration is structural (count-independent) and finite;
        engines use it to precompile transition tables.
        """


class SameStatePairs(Family):
    """Pairs ``(s, s)`` for every state ``s`` carrying a same-state rule.

    With ``c`` agents in state ``s`` there are ``c·(c−1)`` ordered pairs
    of distinct agents both in ``s``.  Covers the entire transition
    function of every *state-optimal* protocol in the paper (AG, traps,
    ring of traps) as well as the same-state rules of the richer ones.
    """

    __slots__ = ("_has_rule", "_fenwick")

    def __init__(self, counts: Sequence[int], rule_states: Iterable[int]) -> None:
        num_states = len(counts)
        self._has_rule = [False] * num_states
        for state in rule_states:
            self._has_rule[state] = True
        weights = [
            counts[s] * (counts[s] - 1) if self._has_rule[s] else 0
            for s in range(num_states)
        ]
        self._fenwick = FenwickTree.from_values(weights)

    @property
    def weight(self) -> int:
        return self._fenwick.total

    def on_count_change(self, state: int, old: int, new: int) -> int:
        if not self._has_rule[state]:
            return 0
        fenwick = self._fenwick
        new_weight = new * (new - 1)
        delta = new_weight - fenwick.get(state)
        fenwick.set(state, new_weight)
        return delta

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        state = self._fenwick.find(rand_below(self._fenwick.total))
        return state, state

    def covers(self, initiator: int, responder: int) -> bool:
        """True iff the pair is a same-state pair with a rule."""
        return initiator == responder and self._has_rule[initiator]

    def pairs(self) -> Iterator[Tuple[int, int]]:
        for state, has_rule in enumerate(self._has_rule):
            if has_rule:
                yield state, state


class OrderedProduct(Family):
    """All pairs (initiator ∈ A, responder ∈ B) with A, B disjoint.

    Weight is ``(Σ_{a∈A} c_a) · (Σ_{b∈B} c_b)``; each side is sampled
    independently, proportionally to its counts, via a Fenwick tree.

    Used for the §4 routing rule ``(rank state, X) → (rank state, gate)``
    (A = rank states, B = {X}) and the §5 rule R4 ``(X_i, rank)``
    (A = reset-line states, B = rank states).
    """

    __slots__ = ("_initiators", "_responders", "_init_pos", "_resp_pos",
                 "_init_fenwick", "_resp_fenwick")

    def __init__(
        self,
        counts: Sequence[int],
        initiators: Sequence[int],
        responders: Sequence[int],
    ) -> None:
        init_set = set(initiators)
        if init_set & set(responders):
            raise SimulationError(
                "OrderedProduct initiator/responder groups must be disjoint"
            )
        self._initiators = list(initiators)
        self._responders = list(responders)
        num_states = len(counts)
        self._init_pos = [-1] * num_states
        self._resp_pos = [-1] * num_states
        for pos, state in enumerate(self._initiators):
            self._init_pos[state] = pos
        for pos, state in enumerate(self._responders):
            self._resp_pos[state] = pos
        self._init_fenwick = FenwickTree.from_values(
            counts[s] for s in self._initiators
        )
        self._resp_fenwick = FenwickTree.from_values(
            counts[s] for s in self._responders
        )

    @property
    def weight(self) -> int:
        return self._init_fenwick.total * self._resp_fenwick.total

    def on_count_change(self, state: int, old: int, new: int) -> int:
        # The two groups are disjoint, so the state is on one side at most.
        pos = self._init_pos[state]
        if pos >= 0:
            self._init_fenwick.set(pos, new)
            return (new - old) * self._resp_fenwick.total
        pos = self._resp_pos[state]
        if pos >= 0:
            self._resp_fenwick.set(pos, new)
            return self._init_fenwick.total * (new - old)
        return 0

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        initiator_pos = self._init_fenwick.find(
            rand_below(self._init_fenwick.total)
        )
        responder_pos = self._resp_fenwick.find(
            rand_below(self._resp_fenwick.total)
        )
        return self._initiators[initiator_pos], self._responders[responder_pos]

    def covers(self, initiator: int, responder: int) -> bool:
        return (
            self._init_pos[initiator] >= 0 and self._resp_pos[responder] >= 0
        )

    def pairs(self) -> Iterator[Tuple[int, int]]:
        for initiator in self._initiators:
            for responder in self._responders:
                yield initiator, responder


class TriangularLine(Family):
    """Pairs ``(L[i], L[j])`` with ``i ≤ j`` over an ordered list of states.

    This is the shape of §5's rule R3 on the reset line ``X_1..X_{2k}``
    (together with R5 at the top): an interaction is productive exactly
    when the initiator's line index does not exceed the responder's.
    The line has only ``O(log n)`` states, so weights are recomputed
    directly in ``O(len(line))`` per change — cheaper in practice than
    maintaining a tree.
    """

    __slots__ = ("_line", "_pos", "_counts", "_weight")

    def __init__(self, counts: Sequence[int], line_states: Sequence[int]) -> None:
        self._line = list(line_states)
        self._pos = {state: i for i, state in enumerate(self._line)}
        if len(self._pos) != len(self._line):
            raise SimulationError("TriangularLine states must be distinct")
        self._counts = [counts[s] for s in self._line]
        self._weight = self._recompute()

    def _recompute(self) -> int:
        counts = self._counts
        total = 0
        suffix = 0
        for c in reversed(counts):
            total += c * (c - 1) + c * suffix
            suffix += c
        return total

    @property
    def weight(self) -> int:
        return self._weight

    def on_count_change(self, state: int, old: int, new: int) -> int:
        pos = self._pos.get(state)
        if pos is None:
            return 0
        before = self._weight
        self._counts[pos] = new
        self._weight = self._recompute()
        return self._weight - before

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        target = rand_below(self._weight)
        counts = self._counts
        length = len(counts)
        suffix = sum(counts)
        for i in range(length):
            c = counts[i]
            suffix -= c
            same = c * (c - 1)
            if target < same:
                return self._line[i], self._line[i]
            target -= same
            cross = c * suffix
            if target < cross:
                # responder drawn among states strictly above i,
                # proportionally to their counts
                j_target = target // c
                for j in range(i + 1, length):
                    if j_target < counts[j]:
                        return self._line[i], self._line[j]
                    j_target -= counts[j]
                raise SimulationError("TriangularLine sample overflow")
            target -= cross
        raise SimulationError("TriangularLine sample out of range")

    def covers(self, initiator: int, responder: int) -> bool:
        pos_i = self._pos.get(initiator)
        pos_j = self._pos.get(responder)
        if pos_i is None or pos_j is None:
            return False
        return pos_i <= pos_j

    def pairs(self) -> Iterator[Tuple[int, int]]:
        line = self._line
        for i, initiator in enumerate(line):
            for responder in line[i:]:
                yield initiator, responder


def check_family_coverage(protocol, counts: Sequence[int] | None = None) -> None:
    """Verify families exactly cover the productive support of ``delta``.

    Enumerates all ordered state pairs (quadratic — test-sized protocols
    only) and checks that a pair is productive under the transition
    function iff exactly one family covers it, and that each family's
    :meth:`Family.pairs` enumeration agrees with its ``covers``
    predicate.  Raises :class:`SimulationError` on any mismatch.
    """
    if counts is None:
        counts = [1] * protocol.num_states
    families = protocol.build_families(list(counts))
    num_states = protocol.num_states
    for si in range(num_states):
        for sj in range(num_states):
            productive = protocol.delta(si, sj) is not None
            covering = sum(1 for f in families if f.covers(si, sj))
            if productive and covering != 1:
                raise SimulationError(
                    f"pair ({si}, {sj}) productive but covered by "
                    f"{covering} families"
                )
            if not productive and covering != 0:
                raise SimulationError(
                    f"pair ({si}, {sj}) null but covered by {covering} families"
                )
    for family in families:
        for si, sj in family.pairs():
            if not family.covers(si, sj):
                raise SimulationError(
                    f"family enumerates pair ({si}, {sj}) it does not cover"
                )
