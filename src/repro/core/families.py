"""Weight families: incremental bookkeeping of productive ordered pairs.

In the probabilistic population protocol model a scheduler draws, at
every step, one *ordered* pair of distinct agents uniformly at random.
Most draws are null (the transition function leaves both agents
unchanged); the expensive protocols of the paper perform `Θ(n²)` such
draws.  The jump engine therefore never enumerates null interactions —
it only needs, at any moment,

* ``W`` — the exact number of *productive* ordered agent pairs, and
* a way to sample one productive pair with probability ``1/W`` each.

Every protocol in the paper induces productive pairs of exactly three
structural shapes, captured by the three :class:`Family` subclasses
below.  Families hold *disjoint* sets of ordered state pairs, and the
union over a protocol's families must equal the productive support of
its transition function (verified by :func:`check_family_coverage`).

All weights are exact Python integers (pair counts), updated
incrementally on every agent count change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import SimulationError
from .fenwick import FenwickTree

__all__ = [
    "Family",
    "SameStatePairs",
    "OrderedProduct",
    "TriangularLine",
    "check_family_coverage",
]

# A callable that returns a uniform integer in [0, bound).
RandBelow = Callable[[int], int]


class Family(ABC):
    """A set of ordered state pairs, weighted by current agent counts."""

    @property
    @abstractmethod
    def weight(self) -> int:
        """Number of productive ordered agent pairs in this family."""

    def states(self) -> Iterator[int]:
        """Every state whose count can influence this family's weight.

        Engines use this to precompile per-state dispatch maps (only the
        families that actually touch a state get notified of its count
        changes).  The default derives the set from :meth:`pairs`;
        concrete families override it with their membership lists.
        """
        seen = set()
        for si, sj in self.pairs():
            if si not in seen:
                seen.add(si)
                yield si
            if sj not in seen:
                seen.add(sj)
                yield sj

    @abstractmethod
    def on_count_change(self, state: int, old: int, new: int) -> int:
        """Notify the family that ``state``'s agent count changed.

        Returns the resulting change of :attr:`weight`, so callers can
        maintain the total productive weight ``W`` incrementally instead
        of re-summing every family after every event.
        """

    @abstractmethod
    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        """Draw a productive (initiator, responder) state pair uniformly."""

    @abstractmethod
    def covers(self, initiator: int, responder: int) -> bool:
        """Structural membership test (ignores current counts).

        ``covers(si, sj)`` is True iff the ordered pair ``(si, sj)``
        belongs to this family's pair set, i.e. it would be productive
        whenever enough agents occupy those states.
        """

    @abstractmethod
    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over every ordered state pair this family covers.

        The enumeration is structural (count-independent) and finite;
        engines use it to precompile transition tables.
        """


class SameStatePairs(Family):
    """Pairs ``(s, s)`` for every state ``s`` carrying a same-state rule.

    With ``c`` agents in state ``s`` there are ``c·(c−1)`` ordered pairs
    of distinct agents both in ``s``.  Covers the entire transition
    function of every *state-optimal* protocol in the paper (AG, traps,
    ring of traps) as well as the same-state rules of the richer ones.
    """

    __slots__ = ("_has_rule", "_fenwick")

    def __init__(self, counts: Sequence[int], rule_states: Iterable[int]) -> None:
        num_states = len(counts)
        self._has_rule = [False] * num_states
        for state in rule_states:
            self._has_rule[state] = True
        weights = [
            counts[s] * (counts[s] - 1) if self._has_rule[s] else 0
            for s in range(num_states)
        ]
        self._fenwick = FenwickTree.from_values(weights)

    @property
    def weight(self) -> int:
        return self._fenwick.total

    def on_count_change(self, state: int, old: int, new: int) -> int:
        if not self._has_rule[state]:
            return 0
        fenwick = self._fenwick
        new_weight = new * (new - 1)
        delta = new_weight - fenwick.get(state)
        fenwick.set(state, new_weight)
        return delta

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        state = self._fenwick.find(rand_below(self._fenwick.total))
        return state, state

    def covers(self, initiator: int, responder: int) -> bool:
        """True iff the pair is a same-state pair with a rule."""
        return initiator == responder and self._has_rule[initiator]

    def pairs(self) -> Iterator[Tuple[int, int]]:
        for state, has_rule in enumerate(self._has_rule):
            if has_rule:
                yield state, state

    def states(self) -> Iterator[int]:
        return (s for s, has_rule in enumerate(self._has_rule) if has_rule)

    def rule_states(self) -> List[int]:
        """The states carrying a same-state rule (fused-index compilation)."""
        return [s for s, has_rule in enumerate(self._has_rule) if has_rule]


class OrderedProduct(Family):
    """All pairs (initiator ∈ A, responder ∈ B) with A, B disjoint.

    Weight is ``(Σ_{a∈A} c_a) · (Σ_{b∈B} c_b)``; each side is sampled
    independently, proportionally to its counts, via a Fenwick tree.

    Used for the §4 routing rule ``(rank state, X) → (rank state, gate)``
    (A = rank states, B = {X}) and the §5 rule R4 ``(X_i, rank)``
    (A = reset-line states, B = rank states).
    """

    __slots__ = ("_initiators", "_responders", "_side", "_pos_of",
                 "_init_fenwick", "_resp_fenwick")

    #: ``_side`` codes: a state is on one side at most.
    NONE, INITIATOR, RESPONDER = 0, 1, 2

    def __init__(
        self,
        counts: Sequence[int],
        initiators: Sequence[int],
        responders: Sequence[int],
    ) -> None:
        init_set = set(initiators)
        if init_set & set(responders):
            raise SimulationError(
                "OrderedProduct initiator/responder groups must be disjoint"
            )
        self._initiators = list(initiators)
        self._responders = list(responders)
        num_states = len(counts)
        # One fused membership map (side code + in-side position) so a
        # count change resolves its side with a single lookup and states
        # on neither side skip all Fenwick work.
        self._side = [self.NONE] * num_states
        self._pos_of = [-1] * num_states
        for pos, state in enumerate(self._initiators):
            self._side[state] = self.INITIATOR
            self._pos_of[state] = pos
        for pos, state in enumerate(self._responders):
            self._side[state] = self.RESPONDER
            self._pos_of[state] = pos
        self._init_fenwick = FenwickTree.from_values(
            counts[s] for s in self._initiators
        )
        self._resp_fenwick = FenwickTree.from_values(
            counts[s] for s in self._responders
        )

    @property
    def weight(self) -> int:
        return self._init_fenwick.total * self._resp_fenwick.total

    @property
    def initiators(self) -> List[int]:
        """Initiator-side states, in Fenwick slot order."""
        return list(self._initiators)

    @property
    def responders(self) -> List[int]:
        """Responder-side states, in Fenwick slot order."""
        return list(self._responders)

    def on_count_change(self, state: int, old: int, new: int) -> int:
        side = self._side[state]
        if side == self.NONE:
            return 0
        if side == self.INITIATOR:
            self._init_fenwick.set(self._pos_of[state], new)
            return (new - old) * self._resp_fenwick.total
        self._resp_fenwick.set(self._pos_of[state], new)
        return self._init_fenwick.total * (new - old)

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        initiator_pos = self._init_fenwick.find(
            rand_below(self._init_fenwick.total)
        )
        responder_pos = self._resp_fenwick.find(
            rand_below(self._resp_fenwick.total)
        )
        return self._initiators[initiator_pos], self._responders[responder_pos]

    def covers(self, initiator: int, responder: int) -> bool:
        return (
            self._side[initiator] == self.INITIATOR
            and self._side[responder] == self.RESPONDER
        )

    def pairs(self) -> Iterator[Tuple[int, int]]:
        for initiator in self._initiators:
            for responder in self._responders:
                yield initiator, responder

    def states(self) -> Iterator[int]:
        yield from self._initiators
        yield from self._responders


class TriangularLine(Family):
    """Pairs ``(L[i], L[j])`` with ``i ≤ j`` over an ordered list of states.

    This is the shape of §5's rule R3 on the reset line ``X_1..X_{2k}``
    (together with R5 at the top): an interaction is productive exactly
    when the initiator's line index does not exceed the responder's.

    The weight has a closed form in the count moments: with
    ``S = Σ c_i`` and ``Q = Σ c_i²``,

        ``W = Σ c_i(c_i−1) + Σ_{i<j} c_i c_j = (Q − S) + (S² − Q)/2``

    so a count change updates ``W`` in O(1) from running ``S``/``Q``
    bookkeeping — no per-change recompute over the line.  Sampling still
    scans the ``O(log n)`` line, but only when a draw lands here.
    """

    __slots__ = ("_line", "_pos", "_counts", "_sum", "_sumsq")

    def __init__(self, counts: Sequence[int], line_states: Sequence[int]) -> None:
        self._line = list(line_states)
        self._pos = {state: i for i, state in enumerate(self._line)}
        if len(self._pos) != len(self._line):
            raise SimulationError("TriangularLine states must be distinct")
        self._counts = [counts[s] for s in self._line]
        self._sum = sum(self._counts)
        self._sumsq = sum(c * c for c in self._counts)

    @property
    def weight(self) -> int:
        # S² − Q is always even: S² = Q + 2·Σ_{i<j} c_i c_j.
        s, q = self._sum, self._sumsq
        return (q - s) + (s * s - q) // 2

    def line_states(self) -> List[int]:
        """The line's states in order (fused-index compilation)."""
        return list(self._line)

    def on_count_change(self, state: int, old: int, new: int) -> int:
        pos = self._pos.get(state)
        if pos is None:
            return 0
        before = self.weight
        self._counts[pos] = new
        self._sum += new - old
        self._sumsq += new * new - old * old
        return self.weight - before

    def sample(self, rand_below: RandBelow) -> Tuple[int, int]:
        target = rand_below(self.weight)
        counts = self._counts
        length = len(counts)
        suffix = self._sum
        for i in range(length):
            c = counts[i]
            suffix -= c
            same = c * (c - 1)
            if target < same:
                return self._line[i], self._line[i]
            target -= same
            cross = c * suffix
            if target < cross:
                # responder drawn among states strictly above i,
                # proportionally to their counts
                j_target = target // c
                for j in range(i + 1, length):
                    if j_target < counts[j]:
                        return self._line[i], self._line[j]
                    j_target -= counts[j]
                raise SimulationError("TriangularLine sample overflow")
            target -= cross
        raise SimulationError("TriangularLine sample out of range")

    def covers(self, initiator: int, responder: int) -> bool:
        pos_i = self._pos.get(initiator)
        pos_j = self._pos.get(responder)
        if pos_i is None or pos_j is None:
            return False
        return pos_i <= pos_j

    def pairs(self) -> Iterator[Tuple[int, int]]:
        line = self._line
        for i, initiator in enumerate(line):
            for responder in line[i:]:
                yield initiator, responder

    def states(self) -> Iterator[int]:
        return iter(self._line)


def check_family_coverage(protocol, counts: Sequence[int] | None = None) -> None:
    """Verify families exactly cover the productive support of ``delta``.

    Enumerates all ordered state pairs (quadratic — test-sized protocols
    only) and checks that a pair is productive under the transition
    function iff exactly one family covers it, and that each family's
    :meth:`Family.pairs` enumeration agrees with its ``covers``
    predicate.  Raises :class:`SimulationError` on any mismatch.
    """
    if counts is None:
        counts = [1] * protocol.num_states
    families = protocol.build_families(list(counts))
    num_states = protocol.num_states
    for si in range(num_states):
        for sj in range(num_states):
            productive = protocol.delta(si, sj) is not None
            covering = sum(1 for f in families if f.covers(si, sj))
            if productive and covering != 1:
                raise SimulationError(
                    f"pair ({si}, {sj}) productive but covered by "
                    f"{covering} families"
                )
            if not productive and covering != 0:
                raise SimulationError(
                    f"pair ({si}, {sj}) null but covered by {covering} families"
                )
    for family in families:
        for si, sj in family.pairs():
            if not family.covers(si, sj):
                raise SimulationError(
                    f"family enumerates pair ({si}, {sj}) it does not cover"
                )
