"""Shared engine machinery: run results, recorders, and the runner API.

Both engines (:class:`~repro.core.jump.JumpEngine` and
:class:`~repro.core.sequential.SequentialEngine`) simulate the same
process — a uniformly random ordered pair of distinct agents interacts
at every step — and report results in the same shape:

* ``interactions`` counts *all* scheduler steps, including null ones;
* ``events`` counts productive interactions only;
* ``parallel_time`` is ``interactions / n``, the paper's time measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro._deps import HAVE_NUMPY, np, require_numpy
from repro._purerng import PureGenerator

from ..exceptions import SimulationError, SimulationLimitReached
from .configuration import Configuration
from .protocol import PopulationProtocol

__all__ = [
    "Event",
    "RunResult",
    "Recorder",
    "TrajectoryRecorder",
    "MetricRecorder",
    "build_engine",
    "run_protocol",
    "make_rng",
]


@dataclass(frozen=True)
class Event:
    """One productive interaction.

    ``interactions`` is the cumulative scheduler step count at which the
    event happened (1-based: the event *is* that interaction).
    """

    interactions: int
    initiator_before: int
    responder_before: int
    initiator_after: int
    responder_after: int


@dataclass(frozen=True)
class RunResult:
    """Outcome of driving a protocol until silence (or a budget)."""

    protocol_name: str
    engine_name: str
    silent: bool
    interactions: int
    events: int
    num_agents: int
    final_configuration: Configuration
    wall_time_s: float
    seed: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def parallel_time(self) -> float:
        """Interactions divided by the population size (paper's clock)."""
        return self.interactions / self.num_agents

    def __repr__(self) -> str:
        status = "silent" if self.silent else "budget-exhausted"
        return (
            f"RunResult({self.protocol_name}, {status}, "
            f"interactions={self.interactions}, events={self.events}, "
            f"parallel_time={self.parallel_time:.1f})"
        )


class Recorder:
    """Observation hooks invoked by the engines.

    Subclass and override any subset.  ``on_event`` receives the live
    counts list — treat it as read-only.
    """

    def on_start(self, counts: Sequence[int]) -> None:
        """Called once before the first interaction."""

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        """Called after every productive interaction."""

    def on_finish(self, silent: bool, interactions: int, counts: Sequence[int]) -> None:
        """Called once when the run ends."""


class TrajectoryRecorder(Recorder):
    """Records every productive event (small runs only — unbounded memory)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        """Store the event."""
        self.events.append(event)


class MetricRecorder(Recorder):
    """Evaluates ``metric(counts)`` at the start and after every event.

    Useful for tracking the paper's potential functions (the Lemma 3
    weight ``K``, the Lemma 20 potential ``F``, token counts, ...) along
    a trajectory.
    """

    def __init__(self, metric: Callable[[Sequence[int]], object]) -> None:
        self._metric = metric
        self.values: List[object] = []
        self.interactions: List[int] = []

    def on_start(self, counts: Sequence[int]) -> None:
        self.values.append(self._metric(counts))
        self.interactions.append(0)

    def on_event(self, event: Event, counts: Sequence[int]) -> None:
        """Evaluate and store the metric after the event."""
        self.values.append(self._metric(counts))
        self.interactions.append(event.interactions)


def make_rng(
    seed_or_rng: Union[int, np.random.Generator, None],
) -> np.random.Generator:
    """Normalise a seed / generator / None into a generator.

    With numpy installed this is a ``numpy.random.Generator``; without
    it, ints and ``None`` become the pure-Python
    :class:`~repro._purerng.PureGenerator` that keeps the sequential
    reference engine running (see :mod:`repro._deps`).
    """
    if isinstance(seed_or_rng, PureGenerator):
        return seed_or_rng
    if HAVE_NUMPY:
        if isinstance(seed_or_rng, np.random.Generator):
            return seed_or_rng
        return np.random.default_rng(seed_or_rng)
    if seed_or_rng is None or isinstance(seed_or_rng, int):
        return PureGenerator(seed_or_rng)
    raise SimulationError(
        f"cannot normalise {type(seed_or_rng).__name__!r} into a "
        "generator without numpy"
    )


def build_engine(
    protocol: PopulationProtocol,
    configuration: Configuration,
    seed: Union[int, np.random.Generator, None] = None,
    engine: str = "jump",
    scheduler: Optional["PairScheduler"] = None,
    instrumentation=None,
    backend: str = "python",
):
    """Construct the right driver for a run; returns ``(driver, name)``.

    The engine-routing seam shared by :func:`run_protocol` and the
    ensemble/checkpoint layers: uniform scheduling picks the named
    engine class, a biased state-level scheduler routes ``"jump"``
    through the weighted fast path when it compiles (falling back to
    the rejection engine), and agent-identity schedulers always run on
    the explicit-agent engine.  ``name`` is the qualified engine name
    recorded in results (``weighted:<scheduler>`` etc.).

    ``seed`` is normalised per constructed engine (an int seed hands
    every candidate constructor a fresh generator, so a discarded
    weighted-path probe never advances the stream the fallback uses).

    ``instrumentation`` is an optional
    :class:`~repro.obs.Instrumentation` counter bag the driver updates
    per chunk; ``None`` (the default) leaves the fast paths untouched.
    Counters never consume randomness, so instrumented runs are
    bit-identical to uninstrumented ones at the same seed.

    ``backend`` selects the execution substrate: ``"python"`` (default)
    keeps the tuned scalar loops; ``"numpy"`` routes uniform-scheduler
    jump runs through the vectorised batch kernel
    (:class:`~repro.core.batch.BatchEngine`, engine name ``"batch"``)
    when the protocol's families compile for it, and falls back to the
    scalar reference otherwise (non-uniform schedulers, the sequential
    engine, opaque families).  ``backend="numpy"`` without numpy
    installed raises an actionable :class:`ImportError`; with numpy
    missing entirely the ``"python"`` backend degrades to the
    sequential reference engine — the clean scalar fallback.
    """
    if backend not in ("python", "numpy"):
        raise SimulationError(
            f"unknown backend {backend!r}; expected 'python' or 'numpy'"
        )
    if backend == "numpy":
        require_numpy("the numpy batch backend (backend='numpy')")
    # Imported here to avoid a circular import at module load time.
    from .sequential import SequentialEngine

    if not HAVE_NUMPY:
        # Scalar fallback: the sequential reference engine is the only
        # numpy-free driver.  Scheduled/weighted/agent engines and the
        # jump engine all draw through numpy's batched streams.
        if scheduler is not None and not scheduler.is_uniform:
            require_numpy("non-uniform pair schedulers")
        if engine not in ("jump", "sequential"):
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of "
                f"['jump', 'sequential']"
            )
        return (
            SequentialEngine(
                protocol, configuration, make_rng(seed),
                instrumentation=instrumentation,
            ),
            "sequential",
        )

    from .jump import JumpEngine

    engines = {"jump": JumpEngine, "sequential": SequentialEngine}
    if engine not in engines:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {sorted(engines)}"
        )
    if scheduler is not None and not scheduler.is_uniform:
        from .scheduler import (
            AgentScheduledEngine,
            AgentScheduler,
            ScheduledEngine,
            try_weighted_engine,
        )

        if isinstance(scheduler, AgentScheduler):
            return (
                AgentScheduledEngine(
                    protocol, configuration, make_rng(seed), scheduler,
                    instrumentation=instrumentation,
                ),
                f"agent:{scheduler.name}",
            )
        if engine == "jump":
            driver = try_weighted_engine(
                protocol, configuration, make_rng(seed), scheduler,
                instrumentation=instrumentation,
            )
            if driver is not None:
                return driver, f"weighted:{scheduler.name}"
        return (
            ScheduledEngine(
                protocol, configuration, make_rng(seed), scheduler,
                instrumentation=instrumentation,
            ),
            f"scheduled:{scheduler.name}",
        )
    if backend == "numpy" and engine == "jump":
        from .batch import BatchEngine, batch_supported

        if batch_supported(protocol):
            return (
                BatchEngine(
                    protocol, configuration, make_rng(seed),
                    instrumentation=instrumentation,
                ),
                "batch",
            )
    return (
        engines[engine](
            protocol, configuration, make_rng(seed),
            instrumentation=instrumentation,
        ),
        engine,
    )


def run_protocol(
    protocol: PopulationProtocol,
    configuration: Configuration,
    seed: Union[int, np.random.Generator, None] = None,
    engine: str = "jump",
    max_interactions: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    require_silence: bool = False,
    max_events: Optional[int] = None,
    scheduler: Optional["PairScheduler"] = None,
    instrumentation=None,
    backend: str = "python",
) -> RunResult:
    """Simulate ``protocol`` from ``configuration`` until silence.

    Parameters
    ----------
    engine:
        ``"jump"`` (exact geometric-jump chain, the default — use this
        for anything but tiny populations) or ``"sequential"`` (naive
        per-interaction loop, used for cross-validation).
    max_interactions:
        Optional budget on *total* scheduler steps (null ones included).
        When exhausted the result has ``silent=False``.
    max_events:
        Optional budget on *productive* events — the engine's actual
        work; the effective guard against non-converging churn.
    require_silence:
        If True, raise :class:`SimulationLimitReached` instead of
        returning a non-silent result.
    scheduler:
        Optional :class:`~repro.core.scheduler.PairScheduler` (or
        :class:`~repro.core.scheduler.EpochScheduler` timeline, or
        :class:`~repro.core.scheduler.AgentScheduler`) biasing which
        pairs interact.  ``None`` or a uniform scheduler keeps the
        paper's model and the allocation-free fast path.  A non-uniform
        state-level scheduler (epoch timelines included) routes a
        ``"jump"`` run through the **weighted jump fast path**
        (:class:`~repro.core.scheduler.WeightedScheduledEngine`
        — geometric skips over a scheduler-scaled fused index; engine
        name ``weighted:<scheduler>``) whenever the scheduler compiles
        exactly; otherwise — and always for ``engine="sequential"`` —
        the run uses the per-interaction rejection
        :class:`~repro.core.scheduler.ScheduledEngine`
        (``scheduled:<scheduler>``).  Both realise the identical step
        distribution.  Agent-identity schedulers always run on the
        explicit-agent engine (``agent:<scheduler>``).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation` counter bag the
        engine updates per chunk (off by default; zero hot-path cost
        when ``None``).  Its snapshot lands in the result's
        ``metadata["instrumentation"]``.
    backend:
        ``"python"`` (default, the tuned scalar loops) or ``"numpy"``
        (the vectorised batch kernel on uniform-scheduler jump runs;
        see :func:`build_engine` for the exact routing and fallbacks).
        Both backends realise the identical step distribution.
    """
    seed_value = seed if isinstance(seed, int) else None
    driver, engine = build_engine(
        protocol, configuration, seed, engine=engine, scheduler=scheduler,
        instrumentation=instrumentation, backend=backend,
    )
    start = time.perf_counter()
    silent = driver.run(
        max_interactions=max_interactions,
        recorder=recorder,
        max_events=max_events,
    )
    elapsed = time.perf_counter() - start
    metadata: Dict[str, object] = {}
    if instrumentation is not None:
        metadata["instrumentation"] = instrumentation.to_dict()
    result = RunResult(
        protocol_name=protocol.name,
        engine_name=engine,
        silent=silent,
        interactions=driver.interactions,
        events=driver.events,
        num_agents=protocol.num_agents,
        final_configuration=Configuration(driver.counts),
        wall_time_s=elapsed,
        seed=seed_value,
        metadata=metadata,
    )
    if require_silence and not silent:
        raise SimulationLimitReached(
            f"{protocol.name} not silent after {driver.interactions} "
            f"interactions (budget {max_interactions})"
        )
    return result
