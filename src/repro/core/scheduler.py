"""Pluggable pair-selection schedulers and the engines that honour them.

The paper's model fixes the *uniform* scheduler: every step draws one
ordered pair of distinct agents uniformly at random.  Self-stabilisation
claims, however, are often stressed under *adversarial* schedulers that
are still fair but bias which pairs meet (clustered populations, slow
links, starved states).  This module is the engine-side seam:

* :class:`PairScheduler` — a distribution over ordered agent pairs,
  expressed as a relative weight ``pair_weight(si, sj) ∈ (0, 1]`` on the
  *states* of the two agents (agents are anonymous, so state-level
  weights are fully general for count-based protocols);
* :class:`UniformScheduler` — the identity scheduler.  It is a pure
  sentinel: :func:`repro.core.engine.run_protocol` routes uniform runs
  to the allocation-free jump fast path, so selecting it costs nothing;
* :class:`WeightedScheduledEngine` — the **weighted jump fast path**: a
  geometric-jump engine over a
  :class:`~repro.core.fused.WeightedFusedIndex`, which scales every
  productive pair slot by the scheduler weight (exact dyadic rationals)
  and tracks the scheduler's total step mass, so biased runs sample
  productive steps directly instead of rejecting draw after draw;
* :class:`ScheduledEngine` — the rejection reference: a
  sequential-style engine that realises an arbitrary scheduler exactly
  by accepting uniform draws with probability ``pair_weight(si, sj)``.
  Cost per step is ``O(1/acceptance-rate)``; it remains the fallback
  for schedulers the weighted index cannot compile and the ground
  truth the weighted path is property-tested against.

Both biased engines realise the identical step distribution: the
weighted index's slot weights use the dyadic numerators
``ceil(w·2⁵³)`` — exactly the acceptance probability the rejection
engine's 53-bit uniform threshold implements for a float weight ``w``.

Concrete adversarial schedulers (state-biased, clustered) live in
:mod:`repro.scenarios.schedulers`; anything implementing the ABC plugs
in through the same ``run_protocol(..., scheduler=...)`` hook.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .fused import (
    WeightedFusedIndex,
    WeightedIndexUnsupported,
    dyadic_weight_numerator,
)
from .protocol import PopulationProtocol
from .sequential import SequentialEngine

__all__ = [
    "PairScheduler",
    "UniformScheduler",
    "ScheduledEngine",
    "WeightedScheduledEngine",
    "try_weighted_engine",
]

_ACCEPT_BATCH = 4096
_RAW_BATCH = 8192
_UNIFORM_BATCH = 8192
_RAW_SPAN = 1 << 64
# Single-raw rejection sampling stays efficient below this bound;
# larger bounds (weighted masses scale by 2⁵³) splice multiple raws.
_SINGLE_RAW_MAX = 1 << 62
# Beyond this many weight classes the blocked index stops paying off
# (slots grow as classes², updates as classes); rejection takes over.
_MAX_CLASSES = 64
# Without declared classes they are derived from the dense weight
# matrix, which is O(num_states²) — only worth it for modest spaces.
_DENSE_CLASS_LIMIT = 2048


class PairScheduler(ABC):
    """A fair scheduler biasing which ordered state pairs interact.

    ``pair_weight`` must return a relative selection weight in
    ``(0, 1]`` for every ordered state pair; the realised step
    distribution is proportional to it.  Weights of exactly zero would
    break fairness (a productive pair that can never fire stalls
    silence), so implementations must keep every weight positive.
    """

    #: Uniform schedulers short-circuit to the jump fast path.
    is_uniform: bool = False

    @property
    def name(self) -> str:
        """Short scheduler name used in results and tables."""
        return type(self).__name__

    @abstractmethod
    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        """Relative weight of an ordered state pair, in ``(0, 1]``."""

    def state_classes(self, num_states: int) -> Optional[List[int]]:
        """Partition of the state space under which weights are uniform.

        Returns one class id per state such that ``pair_weight(si, sj)``
        depends only on ``(class(si), class(sj))``, or ``None`` when no
        such partition is declared.  Concrete schedulers override this
        (per-state weights group by value, clustered schedulers return
        their cluster map); the weighted jump engine then compiles its
        index from class representatives without ever densifying the
        ``num_states²`` weight matrix.
        """
        return None

    def weight_matrix(self, num_states: int) -> np.ndarray:
        """Dense ``pair_weight`` table (engine precomputation)."""
        matrix = np.empty((num_states, num_states), dtype=np.float64)
        for si in range(num_states):
            for sj in range(num_states):
                matrix[si, sj] = self.pair_weight(si, sj)
        if matrix.min() <= 0.0 or matrix.max() > 1.0:
            raise SimulationError(
                f"{self.name}: pair weights must lie in (0, 1], got range "
                f"[{matrix.min()}, {matrix.max()}]"
            )
        return matrix


class UniformScheduler(PairScheduler):
    """The paper's scheduler: every ordered pair equally likely."""

    is_uniform = True

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        return 1.0

    def state_classes(self, num_states: int) -> List[int]:
        return [0] * num_states


def _normalise_classes(raw: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Renumber class ids by first occurrence; returns (map, representatives)."""
    remap: Dict[int, int] = {}
    class_of: List[int] = []
    reps: List[int] = []
    for state, cls in enumerate(raw):
        idx = remap.get(cls)
        if idx is None:
            idx = len(reps)
            remap[cls] = idx
            reps.append(state)
        class_of.append(idx)
    return class_of, reps


def _derive_classes(
    scheduler: PairScheduler, num_states: int
) -> Tuple[List[int], List[int]]:
    """State classes for a scheduler, declared or matrix-derived.

    Raises :class:`~repro.core.fused.WeightedIndexUnsupported` when the
    class structure cannot be obtained at acceptable cost.
    """
    declared = scheduler.state_classes(num_states)
    if declared is not None:
        if len(declared) != num_states:
            raise SimulationError(
                f"{scheduler.name}: state_classes returned "
                f"{len(declared)} entries for {num_states} states"
            )
        class_of, reps = _normalise_classes(declared)
    else:
        if num_states > _DENSE_CLASS_LIMIT:
            raise WeightedIndexUnsupported(
                f"{scheduler.name} declares no state classes and the "
                f"state space ({num_states}) is too large to derive them "
                "from the dense weight matrix"
            )
        matrix = scheduler.weight_matrix(num_states)
        # States with identical rows *and* columns are interchangeable:
        # the weight of any block pair is then constant.
        keys = [
            (matrix[s].tobytes(), np.ascontiguousarray(matrix[:, s]).tobytes())
            for s in range(num_states)
        ]
        remap: Dict[object, int] = {}
        raw: List[int] = []
        for key in keys:
            raw.append(remap.setdefault(key, len(remap)))
        class_of, reps = _normalise_classes(raw)
    if len(reps) > _MAX_CLASSES:
        raise WeightedIndexUnsupported(
            f"{scheduler.name} induces {len(reps)} weight classes "
            f"(cap {_MAX_CLASSES}); falling back to rejection"
        )
    return class_of, reps


class WeightedScheduledEngine:
    """Geometric-jump engine for biased schedulers (no rejection loop).

    Same run/step/recorder interface as the other engines.  Conditioned
    on the configuration, a scheduler step is *productive* with
    probability ``W_w / T_w`` where ``W_w`` is the weighted productive
    mass (the fused index total) and ``T_w`` the weighted mass of all
    ordered agent pairs — both exact integers maintained incrementally —
    so null steps collapse into a geometric skip exactly as in the
    uniform jump chain, and the productive pair itself is drawn from
    the weighted index in one ``find``.

    Raises :class:`~repro.core.fused.WeightedIndexUnsupported` when the
    scheduler/protocol combination cannot be compiled exactly (use
    :func:`try_weighted_engine` for transparent fallback).
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: PairScheduler,
    ) -> None:
        protocol.validate_configuration(configuration)
        self._protocol = protocol
        self._rng = rng
        self._scheduler = scheduler
        self.counts: List[int] = configuration.counts_list()
        self._num_states = protocol.num_states
        self.interactions = 0
        self.events = 0
        class_of, reps = _derive_classes(scheduler, self._num_states)
        matrix = [
            [
                dyadic_weight_numerator(scheduler.pair_weight(ri, rj))
                for rj in reps
            ]
            for ri in reps
        ]
        self._class_of = class_of
        self._class_matrix = matrix
        self._index = WeightedFusedIndex(
            protocol.build_families(self.counts),
            self._num_states,
            self.counts,
            class_of,
            matrix,
        )
        self._uniforms = rng.random(_UNIFORM_BATCH)
        self._uniform_pos = 0
        self._raws: List[int] = []
        self._raw_pos = 0
        self._pair_table: Optional[Dict[int, tuple]] = (
            {} if protocol.compile_transitions else None
        )

    @property
    def scheduler(self) -> PairScheduler:
        """The scheduler this engine realises."""
        return self._scheduler

    @property
    def productive_weight(self) -> int:
        """Weighted mass of productive ordered pairs (scaled by 2⁵³)."""
        return self._index.total

    def total_mass(self) -> int:
        """Weighted mass of all ordered pairs (scaled by 2⁵³)."""
        return self._index.total_mass()

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self._index.total == 0

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def _next_uniform(self) -> float:
        pos = self._uniform_pos
        if pos == _UNIFORM_BATCH:
            self._uniforms = self._rng.random(_UNIFORM_BATCH)
            pos = 0
        self._uniform_pos = pos + 1
        return self._uniforms[pos]

    def _next_raw(self) -> int:
        pos = self._raw_pos
        if pos >= len(self._raws):
            self._raws = self._rng.integers(
                0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
            ).tolist()
            pos = 0
        self._raw_pos = pos + 1
        return self._raws[pos]

    def rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``, exact for arbitrary bounds.

        Weighted masses carry the 2⁵³ scale, so bounds can exceed the
        single-raw range; larger bounds splice multiple 64-bit raws and
        reject into the largest multiple of ``bound``.
        """
        if bound < _SINGLE_RAW_MAX:
            limit = _RAW_SPAN - bound
            while True:
                raw = self._next_raw()
                value = raw % bound
                if raw - value <= limit:
                    return value
        words = (bound.bit_length() + 63) // 64
        span = 1 << (64 * words)
        limit = span - span % bound
        while True:
            value = 0
            for _ in range(words):
                value = (value << 64) | self._next_raw()
            if value < limit:
                return value % bound

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _geometric_skip(self, weight: int, mass: int) -> int:
        """Accepted steps until the next productive one (>= 1), exact."""
        p = weight / mass
        if p >= 1.0:
            return 1
        u = self._next_uniform()
        if u <= p:
            return 1
        skip = math.ceil(math.log(1.0 - u) / math.log1p(-p))
        return skip if skip >= 1 else 1

    def _transition(self, si: int, sj: int) -> tuple:
        table = self._pair_table
        if table is not None:
            entry = table.get(si * self._num_states + sj)
            if entry is not None:
                return entry
        out = self._protocol.delta(si, sj)
        if out is None:
            raise SimulationError(
                f"weighted index sampled null pair ({si}, {sj}) — "
                "family coverage does not match delta"
            )
        ti, tj = out
        delta: Dict[int, int] = {}
        for state, change in ((si, -1), (sj, -1), (ti, 1), (tj, 1)):
            delta[state] = delta.get(state, 0) + change
        entry = (ti, tj, tuple((s, d) for s, d in delta.items() if d != 0))
        if table is not None:
            table[si * self._num_states + sj] = entry
        return entry

    def _apply_ops(self, ops) -> None:
        counts = self.counts
        index = self._index
        for state, delta in ops:
            old = counts[state]
            new = old + delta
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying transition"
                )
            counts[state] = new
            index.apply_count_change(state, old, new)

    def reset_configuration(self, configuration) -> None:
        """Adopt an externally mutated configuration mid-run.

        Fault-injection seam mirroring the other engines: the weighted
        index is recompiled from the new counts (classes and the dyadic
        weight matrix are count-independent and reused); counters, the
        compiled pair table, and the generator stream are preserved.
        """
        counts = (
            configuration.counts_list()
            if isinstance(configuration, Configuration)
            else [int(c) for c in configuration]
        )
        if len(counts) != self._num_states:
            raise SimulationError(
                f"reset configuration has {len(counts)} states, "
                f"engine has {self._num_states}"
            )
        if any(c < 0 for c in counts):
            raise SimulationError("reset configuration has negative counts")
        if sum(counts) != self._protocol.num_agents:
            raise SimulationError(
                f"reset configuration has {sum(counts)} agents, "
                f"engine has {self._protocol.num_agents}"
            )
        self.counts = counts
        self._index = WeightedFusedIndex(
            self._protocol.build_families(counts),
            self._num_states,
            counts,
            self._class_of,
            self._class_matrix,
        )

    def step(self) -> Optional[Event]:
        """Advance to (and apply) the next productive interaction."""
        index = self._index
        weight = index.total
        if weight == 0:
            return None
        self.interactions += self._geometric_skip(weight, index.total_mass())
        si, sj = index.sample(self.rand_below)
        ti, tj, ops = self._transition(si, sj)
        self._apply_ops(ops)
        self.events += 1
        return Event(self.interactions, si, sj, ti, tj)

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent.

        ``interactions`` counts the scheduler's accepted steps (null
        ones included) — the same clock the rejection engine reports.
        A skip overshooting ``max_interactions`` clamps to the budget
        without applying the pending event.
        """
        if recorder is not None:
            recorder.on_start(self.counts)
        index = self._index
        silent = False
        while True:
            weight = index.total
            if weight == 0:
                silent = True
                break
            if max_events is not None and self.events >= max_events:
                break
            skip = self._geometric_skip(weight, index.total_mass())
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                break
            self.interactions += skip
            si, sj = index.sample(self.rand_below)
            ti, tj, ops = self._transition(si, sj)
            self._apply_ops(ops)
            self.events += 1
            if recorder is not None:
                recorder.on_event(
                    Event(self.interactions, si, sj, ti, tj), self.counts
                )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent

    def configuration(self) -> Configuration:
        """Snapshot of the current configuration."""
        return Configuration(self.counts)


def try_weighted_engine(
    protocol: PopulationProtocol,
    configuration: Configuration,
    rng: np.random.Generator,
    scheduler: PairScheduler,
) -> Optional[WeightedScheduledEngine]:
    """Weighted jump engine, or ``None`` when it cannot apply exactly.

    Callers fall back to the rejection :class:`ScheduledEngine`, which
    handles any scheduler/protocol combination.
    """
    try:
        return WeightedScheduledEngine(protocol, configuration, rng, scheduler)
    except WeightedIndexUnsupported:
        return None


class ScheduledEngine(SequentialEngine):
    """Per-interaction rejection engine honouring an arbitrary scheduler.

    Extends :class:`~repro.core.sequential.SequentialEngine` (explicit
    agent identities, same run/recorder interface) with a rejection
    filter on the uniform pair stream: each candidate pair is accepted
    with probability ``scheduler.pair_weight(si, sj)``, so accepted
    draws — the steps this engine counts — follow the scheduler's
    distribution exactly.  Cost per step is ``O(1/acceptance-rate)``;
    budgets (``max_interactions`` / ``max_events``) remain the guard
    against schedulers that slow convergence arbitrarily.  The weighted
    jump engine above is the fast path; this engine is the obviously
    correct reference and the fallback for exotic schedulers.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: PairScheduler,
    ) -> None:
        super().__init__(protocol, configuration, rng)
        self._scheduler = scheduler
        self._weights = scheduler.weight_matrix(protocol.num_states)
        self._accepts = np.empty(0)
        self._accept_pos = 0

    @property
    def scheduler(self) -> PairScheduler:
        """The scheduler this engine realises."""
        return self._scheduler

    def _next_accept_threshold(self) -> float:
        if self._accept_pos >= len(self._accepts):
            self._accepts = self._rng.random(_ACCEPT_BATCH)
            self._accept_pos = 0
        u = self._accepts[self._accept_pos]
        self._accept_pos += 1
        return u

    def _next_pair(self) -> tuple:
        """One *accepted* ordered pair of distinct agent indices."""
        weights = self._weights
        states = self.agent_states
        while True:
            a, b = super()._next_pair()
            if self._next_accept_threshold() < weights[states[a], states[b]]:
                return a, b
