"""Pluggable pair-selection schedulers and the engine that honours them.

The paper's model fixes the *uniform* scheduler: every step draws one
ordered pair of distinct agents uniformly at random.  Self-stabilisation
claims, however, are often stressed under *adversarial* schedulers that
are still fair but bias which pairs meet (clustered populations, slow
links, starved states).  This module is the engine-side seam:

* :class:`PairScheduler` — a distribution over ordered agent pairs,
  expressed as a relative weight ``pair_weight(si, sj) ∈ (0, 1]`` on the
  *states* of the two agents (agents are anonymous, so state-level
  weights are fully general for count-based protocols);
* :class:`UniformScheduler` — the identity scheduler.  It is a pure
  sentinel: :func:`repro.core.engine.run_protocol` routes uniform runs
  to the allocation-free jump fast path, so selecting it costs nothing;
* :class:`ScheduledEngine` — a sequential-style engine that realises an
  arbitrary scheduler exactly by rejection: draw a uniform ordered
  agent pair, accept it with probability ``pair_weight(si, sj)``.
  Accepted draws are the scheduler's steps, so the step distribution is
  exactly ``P(pair) ∝ pair_weight(state_i, state_j)`` at every instant.

Concrete adversarial schedulers (state-biased, clustered) live in
:mod:`repro.scenarios.schedulers`; anything implementing the ABC plugs
in through the same ``run_protocol(..., scheduler=...)`` hook.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import SimulationError
from .configuration import Configuration
from .protocol import PopulationProtocol
from .sequential import SequentialEngine

__all__ = ["PairScheduler", "UniformScheduler", "ScheduledEngine"]

_ACCEPT_BATCH = 4096


class PairScheduler(ABC):
    """A fair scheduler biasing which ordered state pairs interact.

    ``pair_weight`` must return a relative selection weight in
    ``(0, 1]`` for every ordered state pair; the realised step
    distribution is proportional to it.  Weights of exactly zero would
    break fairness (a productive pair that can never fire stalls
    silence), so implementations must keep every weight positive.
    """

    #: Uniform schedulers short-circuit to the jump fast path.
    is_uniform: bool = False

    @property
    def name(self) -> str:
        """Short scheduler name used in results and tables."""
        return type(self).__name__

    @abstractmethod
    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        """Relative weight of an ordered state pair, in ``(0, 1]``."""

    def weight_matrix(self, num_states: int) -> np.ndarray:
        """Dense ``pair_weight`` table (engine precomputation)."""
        matrix = np.empty((num_states, num_states), dtype=np.float64)
        for si in range(num_states):
            for sj in range(num_states):
                matrix[si, sj] = self.pair_weight(si, sj)
        if matrix.min() <= 0.0 or matrix.max() > 1.0:
            raise SimulationError(
                f"{self.name}: pair weights must lie in (0, 1], got range "
                f"[{matrix.min()}, {matrix.max()}]"
            )
        return matrix


class UniformScheduler(PairScheduler):
    """The paper's scheduler: every ordered pair equally likely."""

    is_uniform = True

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        return 1.0


class ScheduledEngine(SequentialEngine):
    """Per-interaction engine honouring an arbitrary pair scheduler.

    Extends :class:`~repro.core.sequential.SequentialEngine` (explicit
    agent identities, same run/recorder interface) with a rejection
    filter on the uniform pair stream: each candidate pair is accepted
    with probability ``scheduler.pair_weight(si, sj)``, so accepted
    draws — the steps this engine counts — follow the scheduler's
    distribution exactly.  Cost per step is ``O(1/acceptance-rate)``;
    budgets (``max_interactions`` / ``max_events``) remain the guard
    against schedulers that slow convergence arbitrarily.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: PairScheduler,
    ) -> None:
        super().__init__(protocol, configuration, rng)
        self._scheduler = scheduler
        self._weights = scheduler.weight_matrix(protocol.num_states)
        self._accepts = np.empty(0)
        self._accept_pos = 0

    @property
    def scheduler(self) -> PairScheduler:
        """The scheduler this engine realises."""
        return self._scheduler

    def _next_accept_threshold(self) -> float:
        if self._accept_pos >= len(self._accepts):
            self._accepts = self._rng.random(_ACCEPT_BATCH)
            self._accept_pos = 0
        u = self._accepts[self._accept_pos]
        self._accept_pos += 1
        return u

    def _next_pair(self) -> tuple:
        """One *accepted* ordered pair of distinct agent indices."""
        weights = self._weights
        states = self.agent_states
        while True:
            a, b = super()._next_pair()
            if self._next_accept_threshold() < weights[states[a], states[b]]:
                return a, b
