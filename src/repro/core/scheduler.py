"""Pluggable pair-selection schedulers and the engines that honour them.

The paper's model fixes the *uniform* scheduler: every step draws one
ordered pair of distinct agents uniformly at random.  Self-stabilisation
claims, however, are often stressed under *adversarial* schedulers that
are still fair but bias which pairs meet (clustered populations, slow
links, starved states).  This module is the engine-side seam:

* :class:`PairScheduler` — a distribution over ordered agent pairs,
  expressed as a relative weight ``pair_weight(si, sj) ∈ (0, 1]`` on the
  *states* of the two agents (agents are anonymous, so state-level
  weights are fully general for count-based protocols);
* :class:`UniformScheduler` — the identity scheduler.  It is a pure
  sentinel: :func:`repro.core.engine.run_protocol` routes uniform runs
  to the allocation-free jump fast path, so selecting it costs nothing;
* :class:`WeightedScheduledEngine` — the **weighted jump fast path**: a
  geometric-jump engine over a
  :class:`~repro.core.fused.WeightedFusedIndex`, which scales every
  productive pair slot by the scheduler weight (exact dyadic rationals)
  and tracks the scheduler's total step mass, so biased runs sample
  productive steps directly instead of rejecting draw after draw;
* :class:`ScheduledEngine` — the rejection reference: a
  sequential-style engine that realises an arbitrary scheduler exactly
  by accepting uniform draws with probability ``pair_weight(si, sj)``.
  Cost per step is ``O(1/acceptance-rate)``; it remains the fallback
  for schedulers the weighted index cannot compile and the ground
  truth the weighted path is property-tested against;
* :class:`EpochScheduler` — a **time-varying** adversary: an ordered
  timeline of ``(boundary, PairScheduler)`` segments whose bias
  switches at boundaries on productive-event count, scheduler steps
  (simulated time), silence, or a configuration predicate.  Both biased
  engines accept it natively: the weighted engine precompiles one
  :class:`~repro.core.fused.WeightedFusedIndex` per distinct segment
  scheduler and hot-swaps via the in-place ``resync(counts)`` seam at
  each boundary, so every segment still runs at full jump speed;
* :class:`AgentScheduler` / :class:`AgentScheduledEngine` — adversaries
  biasing *agent identities* rather than states (targeted suppression,
  skewed contact rates).  Count-based engines cannot express these, so
  they run on the explicit-agent :class:`SequentialEngine` via the same
  rejection filter.

The biased engines realise the identical step distribution: the
weighted index's slot weights use the dyadic numerators
``ceil(w·2⁵³)`` — exactly the acceptance probability the rejection
engine's 53-bit uniform threshold implements for a float weight ``w``.
Epoch switching preserves this: boundaries are stopping times of the
step process, and the geometric skip is memoryless, so clamping an
overshooting skip at a boundary and redrawing under the next segment's
weights is exact.

Concrete adversarial schedulers (state-biased, clustered, targeted,
degree-skewed) live in :mod:`repro.scenarios.schedulers`; anything
implementing the ABCs plugs in through the same
``run_protocol(..., scheduler=...)`` hook.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro._deps import np

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .fused import (
    PRODUCT,
    SAME,
    WEIGHT_DENOMINATOR,
    FusedIndex,
    WeightedFusedIndex,
    WeightedIndexUnsupported,
    dyadic_weight_numerator,
)
from .jump import _transition_ops
from .protocol import PopulationProtocol
from .sequential import SequentialEngine
from .snapshot import (
    EngineSnapshot,
    capture_rng,
    check_snapshot,
    restore_rng,
)

__all__ = [
    "AgentScheduledEngine",
    "AgentScheduler",
    "EpochBoundary",
    "EpochScheduler",
    "PairScheduler",
    "UniformScheduler",
    "ScheduledEngine",
    "WeightedScheduledEngine",
    "try_weighted_engine",
]

_ACCEPT_BATCH = 4096
_RAW_BATCH = 8192
_UNIFORM_BATCH = 8192
_RAW_SPAN = 1 << 64
# Single-raw rejection sampling stays efficient below this bound;
# larger bounds (weighted masses scale by 2⁵³) splice multiple raws.
_SINGLE_RAW_MAX = 1 << 62
# Beyond this many weight classes the blocked index stops paying off
# (slots grow as classes², updates as classes); rejection takes over.
_MAX_CLASSES = 64
# Without declared classes they are derived from the dense weight
# matrix, which is O(num_states²) — only worth it for modest spaces.
_DENSE_CLASS_LIMIT = 2048

#: Acceptance-aware engine choice.  The *acceptance mass* of a segment
#: scheduler is its weighted productive mass over the uniform
#: productive mass — the probability that a uniformly drawn productive
#: pair passes the scheduler's rejection test, estimated exactly (as a
#: ratio of integer totals) on the start configuration.  The weighted
#: index's cost grows with the scheduler's class count (slots multiply
#: as classes², updates as classes), while rejection mechanisms pay
#: 1/acceptance instead — so the routing rule is two-dimensional:
#:
#: * a segment with many classes *and* workable acceptance runs the
#:   **thinned** realisation — sample from the cheap uniform hybrid
#:   index and thin with the exact 53-bit dyadic acceptance test (the
#:   rejection engine's own mechanism, mounted on the jump clock);
#: * a *scalar* scheduler with many classes and workable acceptance is
#:   routed away from the weighted engine entirely
#:   (:func:`try_weighted_engine` returns ``None``) so callers fall
#:   back to the per-step rejection engine, which measured several
#:   times faster there;
#: * everything else (the common few-class adversaries) runs the
#:   inlined weighted jump loop, which does not pay retries at all.
#:
#: Thresholds are reference-box measurements; both realisations are
#: exact, so this is purely a constant-factor choice.
_THINNING_ACCEPTANCE = 0.4
_THINNING_CLASSES = 8
_REJECTION_ACCEPTANCE = 0.25
_REJECTION_CLASSES = 16
# How often (in productive events) a thinned segment re-partitions the
# uniform hybrid index's proposal pool (the jump engine's loop reacts
# to measured acceptance instead; here a periodic pass is enough since
# the thinned route only serves high-acceptance segments).
_THINNED_RECLASSIFY_EVENTS = 4096


class PairScheduler(ABC):
    """A fair scheduler biasing which ordered state pairs interact.

    ``pair_weight`` must return a relative selection weight in
    ``(0, 1]`` for every ordered state pair; the realised step
    distribution is proportional to it.  Weights of exactly zero would
    break fairness (a productive pair that can never fire stalls
    silence), so implementations must keep every weight positive.
    """

    #: Uniform schedulers short-circuit to the jump fast path.
    is_uniform: bool = False

    @property
    def name(self) -> str:
        """Short scheduler name used in results and tables."""
        return type(self).__name__

    @abstractmethod
    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        """Relative weight of an ordered state pair, in ``(0, 1]``."""

    def state_classes(self, num_states: int) -> Optional[List[int]]:
        """Partition of the state space under which weights are uniform.

        Returns one class id per state such that ``pair_weight(si, sj)``
        depends only on ``(class(si), class(sj))``, or ``None`` when no
        such partition is declared.  Concrete schedulers override this
        (per-state weights group by value, clustered schedulers return
        their cluster map); the weighted jump engine then compiles its
        index from class representatives without ever densifying the
        ``num_states²`` weight matrix.
        """
        return None

    def weight_matrix(self, num_states: int) -> np.ndarray:
        """Dense ``pair_weight`` table (engine precomputation)."""
        matrix = np.empty((num_states, num_states), dtype=np.float64)
        for si in range(num_states):
            for sj in range(num_states):
                matrix[si, sj] = self.pair_weight(si, sj)
        if matrix.min() <= 0.0 or matrix.max() > 1.0:
            raise SimulationError(
                f"{self.name}: pair weights must lie in (0, 1], got range "
                f"[{matrix.min()}, {matrix.max()}]"
            )
        return matrix


class UniformScheduler(PairScheduler):
    """The paper's scheduler: every ordered pair equally likely."""

    is_uniform = True

    def pair_weight(self, initiator_state: int, responder_state: int) -> float:
        return 1.0

    def state_classes(self, num_states: int) -> List[int]:
        return [0] * num_states


_BOUNDARY_KINDS = ("events", "interactions", "silence", "predicate")


@dataclass(frozen=True)
class EpochBoundary:
    """When one epoch segment ends and the next scheduler takes over.

    ``kind`` selects the trigger:

    * ``events`` — the segment ends after ``value`` *productive* events
      (counted from segment entry);
    * ``interactions`` — after ``value`` accepted scheduler steps, the
      simulated-time clock (parallel time is ``interactions / n``);
    * ``silence`` — when the population goes silent under the segment's
      scheduler (silence is scheduler-independent, so this matters for
      timelines whose later segments govern post-fault recovery);
    * ``predicate`` — when ``predicate(counts)`` first holds, checked
      every ``check_every`` productive events (the scenario layer's
      phase-stop machinery resolves named predicates into callables).
    """

    kind: str
    value: Optional[int] = None
    predicate: Optional[Callable[[Sequence[int]], bool]] = None
    check_every: int = 1024

    def __post_init__(self) -> None:
        if self.kind not in _BOUNDARY_KINDS:
            raise SimulationError(
                f"unknown epoch boundary kind {self.kind!r}; expected one "
                f"of {_BOUNDARY_KINDS}"
            )
        if self.kind in ("events", "interactions"):
            if self.value is None or self.value < 1:
                raise SimulationError(
                    f"epoch boundary on {self.kind} needs value >= 1, "
                    f"got {self.value}"
                )
        if self.kind == "predicate":
            if self.predicate is None:
                raise SimulationError(
                    "epoch boundary on predicate needs a predicate callable"
                )
            if self.check_every < 1:
                raise SimulationError(
                    f"check_every must be >= 1, got {self.check_every}"
                )


class EpochScheduler:
    """A time-varying adversary: an ordered timeline of scheduler segments.

    ``segments`` is a sequence of ``(boundary, scheduler)`` pairs; every
    segment except the last needs an :class:`EpochBoundary` (the last
    one may carry ``None`` and runs forever).  Segment schedulers are
    ordinary :class:`PairScheduler` instances — uniform segments are
    allowed and stay exact.

    The timeline itself is immutable and engine-independent: epoch
    progress (which segment is active) lives in the engine, so one
    ``EpochScheduler`` can drive many engines concurrently.  Boundary
    durations (``events`` / ``interactions``) count from segment entry.
    """

    #: Epoch timelines never short-circuit to the uniform fast path.
    is_uniform: bool = False

    def __init__(
        self,
        segments: Sequence[Tuple[Optional[EpochBoundary], PairScheduler]],
        name: Optional[str] = None,
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        segments = tuple(
            (boundary, scheduler) for boundary, scheduler in segments
        )
        if not segments:
            raise SimulationError("EpochScheduler needs at least one segment")
        for index, (boundary, scheduler) in enumerate(segments):
            if not isinstance(scheduler, PairScheduler):
                raise SimulationError(
                    f"epoch segment {index} scheduler must be a "
                    f"PairScheduler, got {type(scheduler).__name__}"
                )
            if boundary is None and index != len(segments) - 1:
                raise SimulationError(
                    f"epoch segment {index} has no boundary but is not "
                    "the last segment"
                )
        if labels is not None and len(labels) != len(segments):
            raise SimulationError(
                f"epoch timeline has {len(segments)} segments but "
                f"{len(labels)} labels"
            )
        self.segments = segments
        self._name = name
        self._labels = tuple(labels) if labels is not None else None

    @property
    def name(self) -> str:
        """Short timeline name used in results and tables."""
        if self._name is not None:
            return self._name
        inner = "->".join(s.name for _, s in self.segments)
        return f"epoch({inner})"

    @property
    def num_epochs(self) -> int:
        return len(self.segments)

    def schedulers(self) -> List[PairScheduler]:
        """The segment schedulers, in timeline order."""
        return [scheduler for _, scheduler in self.segments]

    def segment_label(self, index: int) -> str:
        """Human-readable name of one segment (its label, else the
        segment scheduler's name) — what results and tables print."""
        if self._labels is not None and self._labels[index]:
            return self._labels[index]
        return self.segments[index][1].name


class _EpochCursor:
    """Engine-side epoch bookkeeping, shared by both biased engines.

    Tracks which segment is active and the counter values at segment
    entry, so boundary durations are relative to the segment.  Keeping
    the logic in one place is what makes the rejection engine an exact
    reference for the weighted one: both consult the same cursor
    semantics (``met`` / ``caps`` / ``advance``).
    """

    __slots__ = ("segments", "epoch", "start_events", "start_interactions",
                 "next_predicate_check")

    def __init__(
        self,
        scheduler: Union[PairScheduler, EpochScheduler],
        start_epoch: int = 0,
    ) -> None:
        if isinstance(scheduler, EpochScheduler):
            self.segments = scheduler.segments
        else:
            self.segments = ((None, scheduler),)
        if not 0 <= start_epoch < len(self.segments):
            raise SimulationError(
                f"start_epoch {start_epoch} outside timeline of "
                f"{len(self.segments)} segment(s)"
            )
        self.epoch = start_epoch
        self.start_events = 0
        self.start_interactions = 0
        self.next_predicate_check = 0

    @property
    def last(self) -> bool:
        return self.epoch == len(self.segments) - 1

    @property
    def boundary(self) -> Optional[EpochBoundary]:
        return self.segments[self.epoch][0]

    @property
    def scheduler(self) -> PairScheduler:
        return self.segments[self.epoch][1]

    def met(self, events: int, interactions: int, counts, silent: bool) -> bool:
        """Has the current (non-final) segment's boundary been reached?

        Predicate boundaries are evaluated every ``check_every``
        productive events, with the window tracked *here* so the
        weighted engine and the rejection reference fire the boundary
        at the identical evaluation points regardless of how their
        loops chunk the run (a negative evaluation schedules the next
        one — this method is deliberately stateful for that kind).
        """
        if self.last:
            return False
        boundary = self.segments[self.epoch][0]
        if boundary is None:
            return False
        if boundary.kind == "events":
            return events - self.start_events >= boundary.value
        if boundary.kind == "interactions":
            return interactions - self.start_interactions >= boundary.value
        if boundary.kind == "silence":
            return silent
        if events < self.next_predicate_check:
            return False
        if boundary.predicate(counts):
            return True
        self.next_predicate_check = events + boundary.check_every
        return False

    def caps(
        self,
        events: int,
        interactions: int,
        max_interactions: Optional[int],
        max_events: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        """Effective ``(max_interactions, max_events)`` for one chunk.

        Clamps the caller's budgets to the current segment's boundary
        (or its predicate check window), so the engine's single-segment
        loop can run at full speed between boundary checks.
        """
        boundary = self.segments[self.epoch][0]
        if self.last or boundary is None or boundary.kind == "silence":
            return max_interactions, max_events
        if boundary.kind == "events":
            seg = self.start_events + boundary.value
            max_events = seg if max_events is None else min(max_events, seg)
        elif boundary.kind == "interactions":
            seg = self.start_interactions + boundary.value
            max_interactions = (
                seg if max_interactions is None
                else min(max_interactions, seg)
            )
        elif boundary.kind == "predicate":
            seg = max(self.next_predicate_check, events + 1)
            max_events = seg if max_events is None else min(max_events, seg)
        return max_interactions, max_events

    def advance(self, events: int, interactions: int) -> PairScheduler:
        """Enter the next segment; returns its scheduler."""
        self.epoch += 1
        self.start_events = events
        self.start_interactions = interactions
        # A fresh segment's predicate (if any) is checked immediately.
        self.next_predicate_check = events
        return self.segments[self.epoch][1]


def _drive_epoch_timeline(
    engine,
    run_segment: Callable[[Optional[int], Optional[Recorder], Optional[int]], bool],
    max_interactions: Optional[int],
    recorder: Optional[Recorder],
    max_events: Optional[int],
) -> bool:
    """The epoch-driver loop shared by both biased engines.

    Alternates boundary checks / epoch advances with budget-clamped
    chunks of ``run_segment`` (the engine's single-scheduler loop).
    Living in one place is what keeps the rejection engine an *exact*
    reference for the weighted one: any change to the boundary
    semantics applies to both by construction.
    """
    cursor = engine._cursor
    silent = False
    while True:
        if engine._boundary_met():
            engine._advance_epoch()
            continue
        cap_interactions, cap_events = cursor.caps(
            engine.events, engine.interactions, max_interactions, max_events
        )
        silent = run_segment(cap_interactions, recorder, cap_events)
        if silent:
            if engine._boundary_met():
                # A silence (or satisfied-predicate) boundary fires on
                # the way out; the remaining timeline segments matter
                # to callers injecting faults afterwards.
                engine._advance_epoch()
                continue
            break
        if max_events is not None and engine.events >= max_events:
            break
        if (
            max_interactions is not None
            and engine.interactions >= max_interactions
        ):
            break
        # Otherwise only a segment cap was hit; loop to re-check the
        # boundary and advance.
    return silent


def _normalise_classes(raw: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Renumber class ids by first occurrence; returns (map, representatives)."""
    remap: Dict[int, int] = {}
    class_of: List[int] = []
    reps: List[int] = []
    for state, cls in enumerate(raw):
        idx = remap.get(cls)
        if idx is None:
            idx = len(reps)
            remap[cls] = idx
            reps.append(state)
        class_of.append(idx)
    return class_of, reps


def _derive_classes(
    scheduler: PairScheduler, num_states: int
) -> Tuple[List[int], List[int]]:
    """State classes for a scheduler, declared or matrix-derived.

    Raises :class:`~repro.core.fused.WeightedIndexUnsupported` when the
    class structure cannot be obtained at acceptable cost.
    """
    declared = scheduler.state_classes(num_states)
    if declared is not None:
        if len(declared) != num_states:
            raise SimulationError(
                f"{scheduler.name}: state_classes returned "
                f"{len(declared)} entries for {num_states} states"
            )
        class_of, reps = _normalise_classes(declared)
    else:
        if num_states > _DENSE_CLASS_LIMIT:
            raise WeightedIndexUnsupported(
                f"{scheduler.name} declares no state classes and the "
                f"state space ({num_states}) is too large to derive them "
                "from the dense weight matrix"
            )
        matrix = scheduler.weight_matrix(num_states)
        # States with identical rows *and* columns are interchangeable:
        # the weight of any block pair is then constant.
        keys = [
            (matrix[s].tobytes(), np.ascontiguousarray(matrix[:, s]).tobytes())
            for s in range(num_states)
        ]
        remap: Dict[object, int] = {}
        raw: List[int] = []
        for key in keys:
            raw.append(remap.setdefault(key, len(remap)))
        class_of, reps = _normalise_classes(raw)
    if len(reps) > _MAX_CLASSES:
        raise WeightedIndexUnsupported(
            f"{scheduler.name} induces {len(reps)} weight classes "
            f"(cap {_MAX_CLASSES}); falling back to rejection"
        )
    return class_of, reps


class WeightedScheduledEngine:
    """Geometric-jump engine for biased schedulers (no rejection loop).

    Same run/step/recorder interface as the other engines.  Conditioned
    on the configuration, a scheduler step is *productive* with
    probability ``W_w / T_w`` where ``W_w`` is the weighted productive
    mass (the fused index total) and ``T_w`` the weighted mass of all
    ordered agent pairs — both exact integers maintained incrementally —
    so null steps collapse into a geometric skip exactly as in the
    uniform jump chain, and the productive pair itself is drawn from
    the weighted index in one ``find``.

    Accepts an :class:`EpochScheduler` natively: one
    :class:`~repro.core.fused.WeightedFusedIndex` is precompiled per
    *distinct* segment scheduler, and epoch boundaries hot-swap the
    active index via the in-place ``resync(counts)`` seam — no
    recompilation, every segment runs the full-speed jump loop.
    ``start_epoch`` resumes a timeline mid-way (the scenario engine uses
    it to carry the epoch across churn-induced engine rebuilds; the
    current segment's elapsed duration restarts with the new engine's
    counters).

    Raises :class:`~repro.core.fused.WeightedIndexUnsupported` when any
    scheduler/protocol combination cannot be compiled exactly (use
    :func:`try_weighted_engine` for transparent fallback).
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: Union[PairScheduler, EpochScheduler],
        start_epoch: int = 0,
        instrumentation=None,
    ) -> None:
        protocol.validate_configuration(configuration)
        self._protocol = protocol
        self._rng = rng
        self._scheduler = scheduler
        # Optional telemetry bag (see repro.obs); the segment loops
        # flush chunk-level deltas, never per-event increments.
        self._instr = instrumentation
        self.counts: List[int] = configuration.counts_list()
        self._num_states = protocol.num_states
        self.interactions = 0
        self.events = 0
        self._cursor = _EpochCursor(scheduler, start_epoch=start_epoch)
        families = protocol.build_families(self.counts)
        # Deduplicate on the *derived* (classes, dyadic matrix): the
        # scenario layer builds a fresh scheduler object per timeline
        # segment, so value-equal segments (the common "flip back"
        # pattern) must still share one compiled index.
        compiled: Dict[tuple, WeightedFusedIndex] = {}
        self._indices: List[WeightedFusedIndex] = []
        for _, segment_scheduler in self._cursor.segments:
            class_of, reps = _derive_classes(
                segment_scheduler, self._num_states
            )
            matrix = [
                [
                    dyadic_weight_numerator(
                        segment_scheduler.pair_weight(ri, rj)
                    )
                    for rj in reps
                ]
                for ri in reps
            ]
            key = (
                tuple(class_of),
                tuple(tuple(row) for row in matrix),
            )
            if key not in compiled:
                compiled[key] = WeightedFusedIndex(
                    families,
                    self._num_states,
                    self.counts,
                    class_of,
                    matrix,
                )
            self._indices.append(compiled[key])
        self._index = self._indices[self._cursor.epoch]
        # Acceptance-aware engine choice per segment: estimate each
        # segment's acceptance mass at compile time (both totals are
        # exact integers over the *start* configuration — the choice is
        # a constant-factor routing decision, both realisations are
        # exact) and route high-acceptance segments to the thinned
        # rejection mechanism, low-acceptance ones to the weighted
        # index.
        uniform_total = sum(family.weight for family in families)
        self.acceptance_estimates = [
            (
                index.total / (WEIGHT_DENOMINATOR * uniform_total)
                if uniform_total > 0 else 0.0
            )
            for index in self._indices
        ]
        self._thinned = [
            estimate >= _THINNING_ACCEPTANCE
            and len(index._class_matrix) >= _THINNING_CLASSES
            for estimate, index in zip(
                self.acceptance_estimates, self._indices
            )
        ]
        # The thinned loops sample productive pairs from the uniform
        # hybrid fused index (proposal pool included), resynced at
        # segment entry.
        self._uniform: Optional[FusedIndex] = (
            FusedIndex(families, self._num_states, self.counts)
            if any(self._thinned) else None
        )
        self._uniforms = rng.random(_UNIFORM_BATCH)
        self._uniform_pos = 0
        self._raws: List[int] = []
        self._raw_pos = 0
        self._pair_table: Optional[Dict[int, tuple]] = (
            {} if protocol.compile_transitions else None
        )
        # Thinned-segment rejection tally (only ticks when instrumented;
        # read as a delta by the _run_segment flush).
        self._thinned_rejects = 0

    @property
    def scheduler(self) -> Union[PairScheduler, EpochScheduler]:
        """The scheduler (or epoch timeline) this engine realises."""
        return self._scheduler

    @property
    def epoch(self) -> int:
        """Index of the active timeline segment (0 for plain schedulers)."""
        return self._cursor.epoch

    @property
    def current_scheduler(self) -> PairScheduler:
        """The segment scheduler currently driving pair selection."""
        return self._cursor.scheduler

    def _advance_epoch(self) -> None:
        """Enter the next segment, hot-swapping its precompiled index."""
        self._cursor.advance(self.events, self.interactions)
        index = self._indices[self._cursor.epoch]
        swapped = index is not self._index
        if swapped:
            # The incoming index went stale while another segment ran;
            # one in-place resync from the live counts revalidates it.
            index.resync(self.counts)
            self._index = index
        if self._instr is not None:
            self._instr.add("epoch_switches")
            if swapped:
                self._instr.add("resyncs")
            self._instr.mark(
                "epoch_switch",
                epoch=self._cursor.epoch,
                events=self.events,
                interactions=self.interactions,
            )

    def _boundary_met(self) -> bool:
        return self._cursor.met(
            self.events, self.interactions, self.counts,
            self._index.total == 0,
        )

    @property
    def productive_weight(self) -> int:
        """Weighted mass of productive ordered pairs (scaled by 2⁵³)."""
        return self._index.total

    def total_mass(self) -> int:
        """Weighted mass of all ordered pairs (scaled by 2⁵³)."""
        return self._index.total_mass()

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self._index.total == 0

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def _next_uniform(self) -> float:
        pos = self._uniform_pos
        if pos == _UNIFORM_BATCH:
            self._uniforms = self._rng.random(_UNIFORM_BATCH)
            pos = 0
        self._uniform_pos = pos + 1
        return self._uniforms[pos]

    def _next_raw(self) -> int:
        pos = self._raw_pos
        if pos >= len(self._raws):
            self._raws = self._rng.integers(
                0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
            ).tolist()
            pos = 0
        self._raw_pos = pos + 1
        return self._raws[pos]

    def rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``, exact for arbitrary bounds.

        Weighted masses carry the 2⁵³ scale, so bounds can exceed the
        single-raw range; larger bounds splice multiple 64-bit raws and
        reject into the largest multiple of ``bound``.
        """
        if bound < _SINGLE_RAW_MAX:
            limit = _RAW_SPAN - bound
            while True:
                raw = self._next_raw()
                value = raw % bound
                if raw - value <= limit:
                    return value
        words = (bound.bit_length() + 63) // 64
        span = 1 << (64 * words)
        limit = span - span % bound
        while True:
            value = 0
            for _ in range(words):
                value = (value << 64) | self._next_raw()
            if value < limit:
                return value % bound

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _geometric_skip(self, weight: int, mass: int) -> int:
        """Accepted steps until the next productive one (>= 1), exact."""
        p = weight / mass
        if p >= 1.0:
            return 1
        u = self._next_uniform()
        if u <= p:
            return 1
        skip = math.ceil(math.log(1.0 - u) / math.log1p(-p))
        return skip if skip >= 1 else 1

    def _transition(self, si: int, sj: int) -> tuple:
        table = self._pair_table
        if table is not None:
            entry = table.get(si * self._num_states + sj)
            if entry is not None:
                return entry
        out = self._protocol.delta(si, sj)
        if out is None:
            raise SimulationError(
                f"weighted index sampled null pair ({si}, {sj}) — "
                "family coverage does not match delta"
            )
        ti, tj = out
        delta: Dict[int, int] = {}
        for state, change in ((si, -1), (sj, -1), (ti, 1), (tj, 1)):
            delta[state] = delta.get(state, 0) + change
        entry = (ti, tj, tuple((s, d) for s, d in delta.items() if d != 0))
        if table is not None:
            table[si * self._num_states + sj] = entry
        return entry

    def _apply_ops(self, ops) -> None:
        counts = self.counts
        index = self._index
        for state, delta in ops:
            old = counts[state]
            new = old + delta
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying transition"
                )
            counts[state] = new
            index.apply_count_change(state, old, new)

    def reset_configuration(self, configuration) -> None:
        """Adopt an externally mutated configuration mid-run.

        Fault-injection seam mirroring the other engines: the *active*
        weighted index is resynced in place from the new counts (slot
        layouts are count-independent); counters, the epoch cursor, the
        compiled pair table, and the generator stream are preserved.
        Inactive segment indexes stay stale — the epoch swap resyncs the
        incoming index anyway.
        """
        counts = (
            configuration.counts_list()
            if isinstance(configuration, Configuration)
            else [int(c) for c in configuration]
        )
        if len(counts) != self._num_states:
            raise SimulationError(
                f"reset configuration has {len(counts)} states, "
                f"engine has {self._num_states}"
            )
        if any(c < 0 for c in counts):
            raise SimulationError("reset configuration has negative counts")
        if sum(counts) != self._protocol.num_agents:
            raise SimulationError(
                f"reset configuration has {sum(counts)} agents, "
                f"engine has {self._protocol.num_agents}"
            )
        self.counts = counts
        self._index.resync(counts)
        if self._instr is not None:
            self._instr.add("resyncs")
            self._instr.mark(
                "resync", events=self.events, interactions=self.interactions
            )

    def snapshot(self) -> EngineSnapshot:
        """Plain-data checkpoint for bit-exact resumption.

        Resyncs the active weighted index first (deterministic — no
        randomness is consumed, and the refilled trees equal what lazy
        rebuilds would produce), then captures counts, counters, the
        epoch cursor, the per-segment routing decisions (made from the
        *start* configuration, so they must travel with the snapshot),
        and the exact generator state.
        """
        self._index.resync(self.counts)
        if self._instr is not None:
            self._instr.add("snapshots")
            self._instr.mark(
                "snapshot", events=self.events, interactions=self.interactions
            )
        cursor = self._cursor
        exhausted = self._uniform_pos >= _UNIFORM_BATCH
        return EngineSnapshot(
            kind="weighted",
            num_states=self._num_states,
            num_agents=self._protocol.num_agents,
            counts=tuple(self.counts),
            interactions=self.interactions,
            events=self.events,
            rng_state=capture_rng(self._rng),
            uniforms=(
                () if exhausted
                else tuple(float(u) for u in self._uniforms)
            ),
            uniform_pos=_UNIFORM_BATCH if exhausted else self._uniform_pos,
            raws=tuple(int(r) for r in self._raws[self._raw_pos:]),
            epoch=cursor.epoch,
            start_events=cursor.start_events,
            start_interactions=cursor.start_interactions,
            next_predicate_check=cursor.next_predicate_check,
            thinned=tuple(self._thinned),
            acceptance_estimates=tuple(self.acceptance_estimates),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Adopt a snapshot in place; continues bit-for-bit.

        The segment indices stay as compiled at construction — only the
        incoming epoch's index is resynced from the restored counts
        (the epoch hot-swap seam); the rest resync at their swap, like
        in an uninterrupted run.
        """
        check_snapshot(
            snapshot, "weighted", self._num_states,
            self._protocol.num_agents,
        )
        cursor = self._cursor
        if not 0 <= snapshot.epoch < len(cursor.segments):
            raise SimulationError(
                f"snapshot epoch {snapshot.epoch} outside timeline of "
                f"{len(cursor.segments)} segment(s)"
            )
        self.counts = [int(c) for c in snapshot.counts]
        cursor.epoch = snapshot.epoch
        cursor.start_events = snapshot.start_events
        cursor.start_interactions = snapshot.start_interactions
        cursor.next_predicate_check = snapshot.next_predicate_check
        self._index = self._indices[snapshot.epoch]
        self._index.resync(self.counts)
        if snapshot.thinned is not None:
            self._thinned = [bool(flag) for flag in snapshot.thinned]
            self.acceptance_estimates = [
                float(e) for e in snapshot.acceptance_estimates or ()
            ]
            if any(self._thinned) and self._uniform is None:
                self._uniform = FusedIndex(
                    self._protocol.build_families(self.counts),
                    self._num_states,
                    self.counts,
                )
        self.interactions = snapshot.interactions
        self.events = snapshot.events
        restore_rng(self._rng, snapshot.rng_state)
        if snapshot.uniforms:
            self._uniforms = np.asarray(snapshot.uniforms, dtype=np.float64)
            self._uniform_pos = snapshot.uniform_pos
        else:
            self._uniform_pos = _UNIFORM_BATCH
        self._raws = [int(r) for r in snapshot.raws]
        self._raw_pos = 0
        if self._instr is not None:
            self._instr.add("restores")
            self._instr.mark(
                "restore", events=self.events, interactions=self.interactions
            )

    def step(self) -> Optional[Event]:
        """Advance to (and apply) the next productive interaction.

        Epoch boundaries already met are crossed first; a geometric
        skip overshooting an ``interactions`` boundary clamps there and
        redraws under the next segment (exact, by memorylessness).
        Predicate boundaries are evaluated every ``check_every``
        productive events — the window lives in the cursor, so run- and
        step-driven execution (and both engines) fire them identically.
        """
        while self._boundary_met():
            self._advance_epoch()
        index = self._index
        weight = index.total
        if weight == 0:
            return None
        skip = self._geometric_skip(weight, index.total_mass())
        boundary = self._cursor.boundary
        if (
            not self._cursor.last
            and boundary is not None
            and boundary.kind == "interactions"
        ):
            limit = self._cursor.start_interactions + boundary.value
            if self.interactions + skip > limit:
                self.interactions = limit
                self._advance_epoch()
                return self.step()
        self.interactions += skip
        si, sj = index.sample(self.rand_below)
        ti, tj, ops = self._transition(si, sj)
        self._apply_ops(ops)
        self.events += 1
        return Event(self.interactions, si, sj, ti, tj)

    def _run_segment(
        self,
        max_interactions: Optional[int],
        recorder: Optional[Recorder],
        max_events: Optional[int],
    ) -> bool:
        """One epoch-segment chunk, routed to the segment's realisation.

        Recorder-free chunks dispatch on the segment's compile-time
        acceptance estimate: high-acceptance segments run the thinned
        rejection loop over the uniform hybrid index, the rest the
        inlined weighted jump loop.  Both realise the identical step
        distribution, and segment boundaries are stopping times, so the
        per-segment choice is exact.
        """
        ins = self._instr
        if ins is None:
            if recorder is None:
                if self._thinned[self._cursor.epoch]:
                    return self._run_segment_thinned(
                        max_interactions, max_events
                    )
                return self._run_segment_weighted(max_interactions, max_events)
            return self._run_segment_slow(max_interactions, recorder, max_events)
        # Instrumented: route identically, then flush this chunk's event
        # delta under the realisation that produced it.
        events0 = self.events
        interactions0 = self.interactions
        rejects0 = self._thinned_rejects
        if recorder is None and self._thinned[self._cursor.epoch]:
            name = "thinned_events"
            silent = self._run_segment_thinned(max_interactions, max_events)
        elif recorder is None:
            name = "weighted_events"
            silent = self._run_segment_weighted(max_interactions, max_events)
        else:
            name = "slow_events"
            silent = self._run_segment_slow(
                max_interactions, recorder, max_events
            )
        deltas = {
            "events": self.events - events0,
            "interactions": self.interactions - interactions0,
            name: self.events - events0,
        }
        if name == "thinned_events":
            # One acceptance test per accepted event plus one per reject.
            rejects = self._thinned_rejects - rejects0
            deltas["accept_tests"] = (self.events - events0) + rejects
            deltas["accept_rejects"] = rejects
        ins.add_counters(**deltas)
        return silent

    def _run_segment_slow(
        self,
        max_interactions: Optional[int],
        recorder: Optional[Recorder],
        max_events: Optional[int],
    ) -> bool:
        """The instrumented single-scheduler jump loop (recorders)."""
        index = self._index
        while True:
            weight = index.total
            if weight == 0:
                return True
            if max_events is not None and self.events >= max_events:
                return False
            skip = self._geometric_skip(weight, index.total_mass())
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                return False
            self.interactions += skip
            si, sj = index.sample(self.rand_below)
            ti, tj, ops = self._transition(si, sj)
            self._apply_ops(ops)
            self.events += 1
            if recorder is not None:
                recorder.on_event(
                    Event(self.interactions, si, sj, ti, tj), self.counts
                )

    def _run_segment_thinned(
        self,
        max_interactions: Optional[int],
        max_events: Optional[int],
    ) -> bool:
        """High-acceptance segments: the rejection mechanism on the jump
        clock.

        Null steps still collapse into the geometric skip (the weighted
        totals are maintained as scalars), but the productive pair is
        drawn from the *uniform* hybrid fused index — proposal pool and
        all — and thinned by the exact 53-bit dyadic acceptance test,
        exactly the probability the rejection engine realises.  The
        weighted index's big-integer Fenwick is left dirty and refills
        lazily on its next ``find``.
        """
        index = self._index
        uniform = self._uniform
        counts = self.counts
        if not uniform.resync(counts):  # pragma: no cover — defensive
            return self._run_segment_slow(max_interactions, None, max_events)
        class_of = index.class_of
        matrix = index._class_matrix
        index.tree_dirty = True
        rand_below = self.rand_below
        next_raw = self._next_raw
        transition = self._transition
        full = WEIGHT_DENOMINATOR
        instr_on = self._instr is not None
        reclassify_left = _THINNED_RECLASSIFY_EVENTS
        while True:
            weight = index.total
            if weight == 0:
                return True
            if max_events is not None and self.events >= max_events:
                return False
            reclassify_left -= 1
            if reclassify_left <= 0:
                # The uniform hybrid's proposal-pool bound m̂ only
                # stretches within a segment; a periodic re-partition
                # keeps long `until=silence` segments from degrading.
                reclassify_left = _THINNED_RECLASSIFY_EVENTS
                uniform.reclassify(counts)
            skip = self._geometric_skip(weight, index.total_mass())
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                return False
            self.interactions += skip
            while True:
                si, sj = uniform.sample(rand_below)
                numerator = matrix[class_of[si]][class_of[sj]]
                # 53 top bits of one raw are a uniform dyadic threshold.
                if numerator >= full or (next_raw() >> 11) < numerator:
                    break
                if instr_on:
                    self._thinned_rejects += 1
            _, _, ops = transition(si, sj)
            for state, delta in ops:
                old = counts[state]
                new = old + delta
                if new < 0:
                    raise SimulationError(
                        f"state {state} count went negative applying "
                        "transition"
                    )
                counts[state] = new
                uniform.apply_count_change(state, old, new)
                index.apply_count_change_flat(state, old, new)
            self.events += 1

    def _run_segment_weighted(
        self,
        max_interactions: Optional[int],
        max_events: Optional[int],
    ) -> bool:
        """Low-acceptance segments: the inlined weighted jump loop.

        The method-dispatch loop is unrolled: batched skip draws, a
        spliced two-raw exact target, an inlined Fenwick find, and
        transitions compiled to straight-line programs cached on the
        index (:attr:`~repro.core.fused.WeightedFusedIndex.prog_cache`)
        with pre-resolved class-sum columns.
        """
        index = self._index
        cap = WEIGHT_DENOMINATOR * self._protocol.num_agents ** 2
        if cap >= (1 << 126):  # pragma: no cover — absurd populations
            return self._run_segment_slow(max_interactions, None, max_events)
        if self._pair_table is None:
            # The protocol opted out of transition compilation (its
            # delta is not a pure function) — caching straight-line
            # programs would freeze the first-sampled outcome, so stay
            # on the dynamic-dispatch loop.
            return self._run_segment_slow(max_interactions, None, max_events)
        if index.tree_dirty:
            from .fenwick import fill_tree

            fill_tree(index.tree, index.num_slots, index.values)
            index.tree_dirty = False
        counts = self.counts
        tree = index.tree
        values = index.values
        num_slots = index.num_slots
        highbit = 1 << (num_slots.bit_length() - 1) if num_slots else 0
        slot_kind = index.slot_kind
        slot_payload = index.slot_payload
        class_counts = index.class_counts
        row_dot = index._row_dot
        u = index._class_matrix
        num_classes = len(u)
        prog_cache = index.prog_cache
        num_states = self._num_states
        rng = self._rng
        log1p, ceil = math.log1p, math.ceil
        span = 1 << 128
        total = index.total
        interactions = self.interactions
        events = self.events
        remaining = -1 if max_events is None else max(0, max_events - events)
        lus: List[float] = []
        upos = _UNIFORM_BATCH
        raws: List[int] = []
        raw_len = 0
        rpos = 0
        silent = False
        while remaining != 0:
            if total == 0:
                silent = True
                break
            # Total step mass over all ordered pairs, O(#classes).
            mass = 0
            diag = 0
            for p in range(num_classes):
                cp = class_counts[p]
                mass += cp * row_dot[p]
                diag += u[p][p] * cp
            mass -= diag
            # Geometric skip over accepted scheduler steps.
            ratio = total / mass
            if ratio >= 1.0:
                skip = 1
            else:
                if upos == _UNIFORM_BATCH:
                    lus = np.log1p(-rng.random(_UNIFORM_BATCH)).tolist()
                    upos = 0
                lu = lus[upos]
                upos += 1
                lp = log1p(-ratio)
                skip = 1 if lu >= lp else ceil(lu / lp)
            if (
                max_interactions is not None
                and interactions + skip > max_interactions
            ):
                interactions = max_interactions
                break
            interactions += skip
            # Exact uniform target in [0, total): two spliced raws cover
            # any mass the dyadic scale can reach at sane populations.
            while True:
                if rpos >= raw_len - 1:
                    raws = rng.integers(
                        0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
                    ).tolist()
                    raw_len = _RAW_BATCH
                    rpos = 0
                draw = (raws[rpos] << 64) | raws[rpos + 1]
                rpos += 2
                target = draw % total
                if draw - target <= span - total:
                    break
            # Inlined Fenwick find over all slots.
            pos = 0
            bit = highbit
            while bit:
                nxt = pos + bit
                if nxt <= num_slots:
                    below = tree[nxt]
                    if below <= target:
                        target -= below
                        pos = nxt
                bit >>= 1
            kind = slot_kind[pos]
            payload = slot_payload[pos]
            if kind == SAME:
                si = sj = payload[0]
            elif kind == PRODUCT:
                si, sj = payload.pair_from_target(target)
            elif type(payload) is tuple:  # weighted per-position line
                si, sj = payload[0].pair_from_target(payload[1], target)
            else:
                si, sj = payload.pair_from_target(target)
            # Transition via the index's compiled-program cache.
            key = si * num_states + sj
            entry = prog_cache.get(key)
            if entry is None:
                entry = self._compile_weighted_pair(si, sj, index)
                prog_cache[key] = entry
            prog = entry[2]
            if prog is None:
                # Weighted-line fan-out: generic method path.
                for state, delta in entry[3]:
                    old = counts[state]
                    new = old + delta
                    if new < 0:
                        raise SimulationError(
                            f"state {state} count went negative applying "
                            "transition"
                        )
                    counts[state] = new
                    index.apply_count_change(state, old, new)
                total = index.total
            else:
                dtotal = 0
                for state, delta, steps, cls, col in prog:
                    old = counts[state]
                    new = old + delta
                    if new < 0:
                        raise SimulationError(
                            f"state {state} count went negative applying "
                            "transition"
                        )
                    counts[state] = new
                    class_counts[cls] += delta
                    qi = 0
                    for column in col:
                        row_dot[qi] += column * delta
                        qi += 1
                    for step in steps:
                        code = step[0]
                        if code == SAME:
                            slot = step[1]
                            w = step[2] * new * (new - 1)
                            dv = w - values[slot]
                            if dv:
                                values[slot] = w
                                dtotal += dv
                                node = slot + 1
                                while node <= num_slots:
                                    tree[node] += dv
                                    node += node & -node
                        elif code == PRODUCT:
                            step[1].add(step[2], step[3], delta)
                        else:  # TRIANGULAR (no weighted-line here)
                            pay = step[1]
                            pay.counts[step[2]] = new
                            pay.s += delta
                            pay.q += new * new - old * old
                for slot, rkind, pay, factor in entry[3]:
                    if rkind == PRODUCT:
                        w = factor * pay.init_total * pay.resp_total
                    else:
                        s_ = pay.s
                        q_ = pay.q
                        w = factor * ((q_ - s_) + (s_ * s_ - q_) // 2)
                    dv = w - values[slot]
                    if dv:
                        values[slot] = w
                        dtotal += dv
                        node = slot + 1
                        while node <= num_slots:
                            tree[node] += dv
                            node += node & -node
                if dtotal:
                    total += dtotal
                    index.total = total
            events += 1
            remaining -= 1
        self.interactions = interactions
        self.events = events
        index.total = total
        return silent

    def _compile_weighted_pair(
        self, si: int, sj: int, index: WeightedFusedIndex
    ) -> tuple:
        """``(ti, tj, prog, refresh_or_ops)`` for the inlined loop."""
        out = self._protocol.delta(si, sj)
        if out is None:
            raise SimulationError(
                f"weighted index sampled null pair ({si}, {sj}) — "
                "family coverage does not match delta"
            )
        ti, tj = out
        ops = _transition_ops(si, sj, ti, tj)
        compiled = index.compile_transition(ops)
        if compiled is None:
            return (ti, tj, None, ops)
        prog, refresh = compiled
        return (ti, tj, prog, refresh)

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent.

        ``interactions`` counts the scheduler's accepted steps (null
        ones included) — the same clock the rejection engine reports.
        A skip overshooting ``max_interactions`` (or an epoch boundary
        on interactions) clamps there without applying the pending
        event; at an epoch boundary the next draw then happens under
        the new segment's weights, which is exact because the geometric
        skip is memoryless.
        """
        if recorder is not None:
            recorder.on_start(self.counts)
        silent = _drive_epoch_timeline(
            self, self._run_segment, max_interactions, recorder, max_events
        )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent

    def configuration(self) -> Configuration:
        """Snapshot of the current configuration."""
        return Configuration(self.counts)


def try_weighted_engine(
    protocol: PopulationProtocol,
    configuration: Configuration,
    rng: np.random.Generator,
    scheduler: Union[PairScheduler, EpochScheduler],
    start_epoch: int = 0,
    instrumentation=None,
) -> Optional[WeightedScheduledEngine]:
    """Weighted jump engine, or ``None`` when it cannot apply exactly.

    Callers fall back to the rejection :class:`ScheduledEngine`, which
    handles any scheduler/protocol combination.  For an epoch timeline,
    *every* segment scheduler must compile — a single unsupported
    segment sends the whole timeline to the rejection engine, so the
    step distribution never changes mid-run for engine reasons.

    The fallback is also **acceptance-aware**: a scalar scheduler whose
    estimated acceptance mass is workable but whose class count bloats
    the weighted index (slots grow as classes²) measures several times
    faster on the per-step rejection engine, so ``None`` is returned
    even though the index *could* compile.  Both engines are exact;
    this only picks the cheaper realisation.
    """
    try:
        engine = WeightedScheduledEngine(
            protocol, configuration, rng, scheduler, start_epoch=start_epoch,
            instrumentation=instrumentation,
        )
    except WeightedIndexUnsupported:
        return None
    if (
        len(engine._indices) == 1
        and engine.acceptance_estimates[0] >= _REJECTION_ACCEPTANCE
        and len(engine._indices[0]._class_matrix) >= _REJECTION_CLASSES
    ):
        return None
    return engine


class _AcceptStream:
    """Batched uniform thresholds for rejection acceptance tests.

    One shared implementation for both rejection engines — the
    acceptance-draw semantics (53-bit uniforms, batch refill order) are
    part of the exactness contract with the weighted index's dyadic
    numerators, so they must never diverge between engines.
    """

    __slots__ = ("_rng", "_accepts", "_pos", "drawn")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._accepts = np.empty(0)
        self._pos = 0
        # Cumulative thresholds handed out, maintained by batch
        # arithmetic at refill (telemetry reads it as a delta).
        self.drawn = 0

    def next(self) -> float:
        if self._pos >= len(self._accepts):
            self.drawn += len(self._accepts)
            self._accepts = self._rng.random(_ACCEPT_BATCH)
            self._pos = 0
        u = self._accepts[self._pos]
        self._pos += 1
        return u

    def consumed(self) -> int:
        """Total thresholds consumed so far (exhausted batches + head)."""
        return self.drawn + self._pos

    def tail(self) -> tuple:
        """Unconsumed buffered thresholds (checkpoint capture)."""
        return tuple(float(u) for u in self._accepts[self._pos:])

    def restore_tail(self, accepts) -> None:
        """Adopt captured thresholds; the next draws consume them first."""
        self._accepts = np.asarray(accepts, dtype=np.float64)
        self._pos = 0


class ScheduledEngine(SequentialEngine):
    """Per-interaction rejection engine honouring an arbitrary scheduler.

    Extends :class:`~repro.core.sequential.SequentialEngine` (explicit
    agent identities, same run/recorder interface) with a rejection
    filter on the uniform pair stream: each candidate pair is accepted
    with probability ``scheduler.pair_weight(si, sj)``, so accepted
    draws — the steps this engine counts — follow the scheduler's
    distribution exactly.  Cost per step is ``O(1/acceptance-rate)``;
    budgets (``max_interactions`` / ``max_events``) remain the guard
    against schedulers that slow convergence arbitrarily.  The weighted
    jump engine above is the fast path; this engine is the obviously
    correct reference and the fallback for exotic schedulers.

    Accepts an :class:`EpochScheduler` through the same seam as the
    weighted engine: one dense weight matrix is precomputed per
    distinct segment scheduler and the active matrix swaps at each
    boundary (the same :class:`_EpochCursor` semantics, step by step —
    which is what makes this the exact reference for the weighted
    engine's epoch hot-swap).
    """

    snapshot_kind = "scheduled"

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: Union[PairScheduler, EpochScheduler],
        start_epoch: int = 0,
        instrumentation=None,
    ) -> None:
        super().__init__(
            protocol, configuration, rng, instrumentation=instrumentation
        )
        self._scheduler = scheduler
        self._cursor = _EpochCursor(scheduler, start_epoch=start_epoch)
        # Value-level dedup (matrix bytes): value-equal segments built
        # as distinct objects by the scenario layer share one matrix.
        matrices: Dict[bytes, np.ndarray] = {}
        self._matrices: List[np.ndarray] = []
        for _, segment_scheduler in self._cursor.segments:
            matrix = segment_scheduler.weight_matrix(protocol.num_states)
            self._matrices.append(
                matrices.setdefault(matrix.tobytes(), matrix)
            )
        self._weights = self._matrices[self._cursor.epoch]
        self._accept = _AcceptStream(self._rng)

    @property
    def scheduler(self) -> Union[PairScheduler, EpochScheduler]:
        """The scheduler (or epoch timeline) this engine realises."""
        return self._scheduler

    @property
    def epoch(self) -> int:
        """Index of the active timeline segment (0 for plain schedulers)."""
        return self._cursor.epoch

    @property
    def current_scheduler(self) -> PairScheduler:
        """The segment scheduler currently driving pair selection."""
        return self._cursor.scheduler

    def _advance_epoch(self) -> None:
        self._cursor.advance(self.events, self.interactions)
        self._weights = self._matrices[self._cursor.epoch]
        if self._instr is not None:
            self._instr.add("epoch_switches")
            self._instr.mark(
                "epoch_switch",
                epoch=self._cursor.epoch,
                events=self.events,
                interactions=self.interactions,
            )

    def _boundary_met(self) -> bool:
        return self._cursor.met(
            self.events, self.interactions, self.counts, self.is_silent()
        )

    def _next_pair(self) -> tuple:
        """One *accepted* ordered pair of distinct agent indices."""
        weights = self._weights
        states = self.agent_states
        accept = self._accept
        while True:
            a, b = super()._next_pair()
            if accept.next() < weights[states[a], states[b]]:
                return a, b

    def _snapshot_fields(self) -> dict:
        cursor = self._cursor
        return {
            "accepts": self._accept.tail(),
            "epoch": cursor.epoch,
            "start_events": cursor.start_events,
            "start_interactions": cursor.start_interactions,
            "next_predicate_check": cursor.next_predicate_check,
        }

    def _restore_fields(self, snapshot: EngineSnapshot) -> None:
        cursor = self._cursor
        if not 0 <= snapshot.epoch < len(cursor.segments):
            raise SimulationError(
                f"snapshot epoch {snapshot.epoch} outside timeline of "
                f"{len(cursor.segments)} segment(s)"
            )
        cursor.epoch = snapshot.epoch
        cursor.start_events = snapshot.start_events
        cursor.start_interactions = snapshot.start_interactions
        cursor.next_predicate_check = snapshot.next_predicate_check
        self._weights = self._matrices[snapshot.epoch]
        self._accept.restore_tail(snapshot.accepts)

    def step(self) -> Optional[Event]:
        """One accepted scheduler step under the active epoch segment."""
        while self._boundary_met():
            self._advance_epoch()
        return super().step()

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent."""
        if recorder is not None:
            recorder.on_start(self.counts)
        events0 = self.events
        interactions0 = self.interactions
        accepts0 = self._accept.consumed()
        silent = _drive_epoch_timeline(
            self, self._run_loop, max_interactions, recorder, max_events
        )
        if self._instr is not None:
            # Every accepted step is one consumed threshold; the rest
            # were rejections of the uniform candidate stream.
            tests = self._accept.consumed() - accepts0
            self._instr.add_counters(
                events=self.events - events0,
                interactions=self.interactions - interactions0,
                accept_tests=tests,
                accept_rejects=tests - (self.interactions - interactions0),
            )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent


class AgentScheduler(ABC):
    """A fair scheduler biasing which *agents* (by identity) interact.

    State-level schedulers cannot express adversaries that care about
    identity — a jammed sensor that is rarely scheduled regardless of
    its state, or a contact graph where some agents are hubs.  An
    ``AgentScheduler`` assigns each agent a selection weight in
    ``(0, 1]``; an ordered pair ``(a, b)`` of distinct agents fires
    with relative weight ``agent_weight(a) · agent_weight(b)``
    (initiator and responder drawn independently under the same bias).

    Count-based engines collapse agent identities away, so these
    schedulers run on the explicit-agent
    :class:`~repro.core.sequential.SequentialEngine` via
    :class:`AgentScheduledEngine` — an exact rejection filter, the same
    construction as :class:`ScheduledEngine` one level down.  Weights
    must stay strictly positive: fairness (and therefore the
    self-stabilisation contract) survives arbitrary slow-down but not
    starvation.
    """

    #: Agent schedulers never short-circuit to the uniform fast path.
    is_uniform: bool = False

    @property
    def name(self) -> str:
        """Short scheduler name used in results and tables."""
        return type(self).__name__

    @abstractmethod
    def agent_weight(self, agent: int, num_agents: int) -> float:
        """Relative selection weight of one agent, in ``(0, 1]``."""

    def weight_vector(self, num_agents: int) -> np.ndarray:
        """Dense per-agent weight table (engine precomputation)."""
        weights = np.empty(num_agents, dtype=np.float64)
        for agent in range(num_agents):
            weights[agent] = self.agent_weight(agent, num_agents)
        if weights.min() <= 0.0 or weights.max() > 1.0:
            raise SimulationError(
                f"{self.name}: agent weights must lie in (0, 1], got range "
                f"[{weights.min()}, {weights.max()}]"
            )
        return weights


class AgentScheduledEngine(SequentialEngine):
    """Rejection engine honouring an agent-identity scheduler.

    Each uniform candidate pair ``(a, b)`` is accepted with probability
    ``agent_weight(a) · agent_weight(b)``, so accepted steps follow the
    agent-level distribution exactly.  Agent identities are positional:
    agent ``i`` is the ``i``-th slot of the explicit agent array (the
    initial configuration lays agents out in state order; faults through
    ``reset_configuration`` relabel states but keep the weights attached
    to positions, which is the point — the adversary targets devices,
    not their current memory).
    """

    snapshot_kind = "agent"

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        scheduler: AgentScheduler,
        instrumentation=None,
    ) -> None:
        super().__init__(
            protocol, configuration, rng, instrumentation=instrumentation
        )
        self._scheduler = scheduler
        self._agent_weights = scheduler.weight_vector(protocol.num_agents)
        self._accept = _AcceptStream(self._rng)

    @property
    def scheduler(self) -> AgentScheduler:
        """The agent scheduler this engine realises."""
        return self._scheduler

    def _snapshot_fields(self) -> dict:
        return {"accepts": self._accept.tail()}

    def _restore_fields(self, snapshot: EngineSnapshot) -> None:
        self._accept.restore_tail(snapshot.accepts)

    def _next_pair(self) -> tuple:
        """One *accepted* ordered pair of distinct agent indices."""
        weights = self._agent_weights
        accept = self._accept
        while True:
            a, b = super()._next_pair()
            if accept.next() < weights[a] * weights[b]:
                return a, b

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent."""
        interactions0 = self.interactions
        accepts0 = self._accept.consumed()
        silent = super().run(max_interactions, recorder, max_events)
        if self._instr is not None:
            tests = self._accept.consumed() - accepts0
            self._instr.add_counters(
                accept_tests=tests,
                accept_rejects=tests - (self.interactions - interactions0),
            )
        return silent
