"""Protocol-agnostic simulation substrate.

Public surface:

* :class:`~repro.core.configuration.Configuration` — multiset of states.
* :class:`~repro.core.protocol.PopulationProtocol` /
  :class:`~repro.core.protocol.RankingProtocol` — protocol ABCs.
* :func:`~repro.core.engine.run_protocol` — run to silence with either
  engine; returns a :class:`~repro.core.engine.RunResult`.
* :mod:`~repro.core.faults` — fault injection helpers.
"""

from .configuration import Configuration
from .engine import (
    Event,
    MetricRecorder,
    Recorder,
    RunResult,
    TrajectoryRecorder,
    make_rng,
    run_protocol,
)
from .families import (
    Family,
    OrderedProduct,
    SameStatePairs,
    TriangularLine,
    check_family_coverage,
)
from .faults import adversarial_swap, corrupt_agents, crash_and_replace
from .fenwick import FenwickTree
from .jump import JumpEngine
from .protocol import PopulationProtocol, RankingProtocol, Transition
from .sequential import SequentialEngine

__all__ = [
    "Configuration",
    "Event",
    "Family",
    "FenwickTree",
    "JumpEngine",
    "MetricRecorder",
    "OrderedProduct",
    "PopulationProtocol",
    "RankingProtocol",
    "Recorder",
    "RunResult",
    "SameStatePairs",
    "SequentialEngine",
    "TrajectoryRecorder",
    "Transition",
    "TriangularLine",
    "adversarial_swap",
    "check_family_coverage",
    "corrupt_agents",
    "crash_and_replace",
    "make_rng",
    "run_protocol",
]
