"""Protocol-agnostic simulation substrate.

Public surface:

* :class:`~repro.core.configuration.Configuration` — multiset of states.
* :class:`~repro.core.protocol.PopulationProtocol` /
  :class:`~repro.core.protocol.RankingProtocol` — protocol ABCs.
* :func:`~repro.core.engine.run_protocol` — run to silence with either
  engine; returns a :class:`~repro.core.engine.RunResult`.
* :mod:`~repro.core.faults` — fault injection helpers.
"""

from .configuration import Configuration
from .engine import (
    Event,
    MetricRecorder,
    Recorder,
    RunResult,
    TrajectoryRecorder,
    build_engine,
    make_rng,
    run_protocol,
)
from .families import (
    Family,
    OrderedProduct,
    SameStatePairs,
    TriangularLine,
    check_family_coverage,
)
from .faults import (
    adversarial_swap,
    arrive_agents,
    corrupt_agents,
    crash_and_replace,
    depart_agents,
)
from .fenwick import FenwickTree
from .fused import FusedIndex, WeightedFusedIndex
from .jump import JumpEngine
from .protocol import PopulationProtocol, RankingProtocol, Transition
from .scheduler import (
    AgentScheduledEngine,
    AgentScheduler,
    EpochBoundary,
    EpochScheduler,
    PairScheduler,
    ScheduledEngine,
    UniformScheduler,
    WeightedScheduledEngine,
    try_weighted_engine,
)
from .sequential import SequentialEngine
from .snapshot import EngineSnapshot, resume_engine

__all__ = [
    "AgentScheduledEngine",
    "AgentScheduler",
    "Configuration",
    "EngineSnapshot",
    "EpochBoundary",
    "EpochScheduler",
    "Event",
    "Family",
    "FenwickTree",
    "FusedIndex",
    "JumpEngine",
    "MetricRecorder",
    "OrderedProduct",
    "PairScheduler",
    "PopulationProtocol",
    "RankingProtocol",
    "Recorder",
    "RunResult",
    "SameStatePairs",
    "ScheduledEngine",
    "SequentialEngine",
    "TrajectoryRecorder",
    "Transition",
    "TriangularLine",
    "UniformScheduler",
    "WeightedFusedIndex",
    "WeightedScheduledEngine",
    "adversarial_swap",
    "arrive_agents",
    "build_engine",
    "check_family_coverage",
    "corrupt_agents",
    "crash_and_replace",
    "depart_agents",
    "make_rng",
    "resume_engine",
    "run_protocol",
    "try_weighted_engine",
]
