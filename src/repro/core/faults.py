"""Fault injection for self-stabilisation experiments.

Self-stabilising protocols recover from *any* configuration, so the
natural way to exercise them is to let a population stabilise, corrupt
part of it, and measure re-stabilisation.  These helpers produce the
corrupted configurations; they never mutate their input.

The §3 experiments also need *k-distant* configurations (exactly ``k``
rank states unoccupied) as recovery targets — those live in
:mod:`repro.configurations.generators`; the functions here model
transient faults hitting a running population.  ``depart_agents`` and
``arrive_agents`` additionally model *churn* (agents leaving/joining a
running population, changing ``n``); the scenario engine in
:mod:`repro.scenarios` composes them into mid-run fault campaigns.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro._deps import np

from ..exceptions import ConfigurationError
from .configuration import Configuration
from .engine import make_rng

__all__ = [
    "corrupt_agents",
    "crash_and_replace",
    "adversarial_swap",
    "depart_agents",
    "arrive_agents",
]


def _victims_per_state(
    configuration: Configuration, num_agents: int, rng: np.random.Generator
) -> np.ndarray:
    """How many of ``num_agents`` uniformly chosen victims sit in each state.

    Agents are anonymous, so sampling agents without replacement is
    sampling states with multiplicity — exactly a multivariate
    hypergeometric draw on the counts vector.  O(num_states), no O(n)
    per-agent list.
    """
    counts = configuration.counts_array()
    total = int(counts.sum())
    if num_agents < 0:
        raise ConfigurationError(f"cannot corrupt {num_agents} agents")
    if num_agents > total:
        raise ConfigurationError(
            f"cannot corrupt {num_agents} of {total} agents"
        )
    if num_agents == 0:
        return np.zeros(len(counts), dtype=np.int64)
    return rng.multivariate_hypergeometric(counts, num_agents)


def corrupt_agents(
    configuration: Configuration,
    num_agents: int,
    seed: Union[int, np.random.Generator, None] = None,
    target_states: Optional[Sequence[int]] = None,
) -> Configuration:
    """Reassign ``num_agents`` random agents to uniformly random states.

    ``target_states`` restricts where corrupted agents may land
    (default: anywhere in the state space).  Models transient memory
    faults: the population size is preserved, states are arbitrary.
    """
    rng = make_rng(seed)
    victims = _victims_per_state(configuration, num_agents, rng)
    targets = (
        np.asarray(list(target_states), dtype=np.int64)
        if target_states is not None
        else np.arange(configuration.num_states, dtype=np.int64)
    )
    counts = configuration.counts_array()
    counts -= victims
    if num_agents:
        landed = rng.choice(targets, size=num_agents, replace=True)
        np.add.at(counts, landed, 1)
    return Configuration(counts.tolist())


def crash_and_replace(
    configuration: Configuration,
    num_agents: int,
    replacement_state: int,
    seed: Union[int, np.random.Generator, None] = None,
) -> Configuration:
    """Crash ``num_agents`` random agents and reboot them in one state.

    Models the classical fail-and-rejoin scenario: rebooted agents come
    back with a fixed default state (e.g. rank 0 or the extra state X),
    leaving up to ``num_agents`` rank states unoccupied — a ``k``-distant
    configuration with ``k <= num_agents`` for state-optimal protocols.
    """
    rng = make_rng(seed)
    if not 0 <= replacement_state < configuration.num_states:
        raise ConfigurationError(
            f"replacement state {replacement_state} outside state space"
        )
    victims = _victims_per_state(configuration, num_agents, rng)
    counts = configuration.counts_array()
    counts -= victims
    counts[replacement_state] += num_agents
    return Configuration(counts.tolist())


def adversarial_swap(
    configuration: Configuration,
    state_a: int,
    state_b: int,
) -> Configuration:
    """Swap the populations of two states (worst-case, deterministic).

    Useful for constructing specific distances from the solved
    configuration in tests.
    """
    counts = configuration.counts_list()
    counts[state_a], counts[state_b] = counts[state_b], counts[state_a]
    return Configuration(counts)


def depart_agents(
    configuration: Configuration,
    num_agents: int,
    seed: Union[int, np.random.Generator, None] = None,
) -> Configuration:
    """Remove ``num_agents`` uniformly random agents (churn: departures).

    The state space is unchanged; the population shrinks.  Callers that
    simulate a fixed-``n`` protocol must rebuild the protocol for the
    new population size (the scenario engine does this automatically).
    """
    rng = make_rng(seed)
    victims = _victims_per_state(configuration, num_agents, rng)
    counts = configuration.counts_array()
    counts -= victims
    return Configuration(counts.tolist())


def arrive_agents(
    configuration: Configuration,
    num_agents: int,
    arrival_states: Union[int, Sequence[int]],
    seed: Union[int, np.random.Generator, None] = None,
) -> Configuration:
    """Add ``num_agents`` new agents (churn: arrivals).

    Each arrival boots in a state drawn uniformly from
    ``arrival_states`` (a single state is accepted as shorthand) —
    joining agents know nothing, so their states are adversarial like
    any transient fault.
    """
    if num_agents < 0:
        raise ConfigurationError(f"cannot add {num_agents} agents")
    rng = make_rng(seed)
    if isinstance(arrival_states, (int, np.integer)):
        states = np.asarray([arrival_states], dtype=np.int64)
    else:
        states = np.asarray(list(arrival_states), dtype=np.int64)
    if len(states) == 0:
        raise ConfigurationError("arrival_states must be non-empty")
    if states.min() < 0 or states.max() >= configuration.num_states:
        raise ConfigurationError(
            f"arrival states {states.tolist()} outside state space "
            f"[0, {configuration.num_states})"
        )
    counts = configuration.counts_array()
    if num_agents:
        landed = rng.choice(states, size=num_agents, replace=True)
        np.add.at(counts, landed, 1)
    return Configuration(counts.tolist())
