"""Fault injection for self-stabilisation experiments.

Self-stabilising protocols recover from *any* configuration, so the
natural way to exercise them is to let a population stabilise, corrupt
part of it, and measure re-stabilisation.  These helpers produce the
corrupted configurations; they never mutate their input.

The §3 experiments also need *k-distant* configurations (exactly ``k``
rank states unoccupied) as recovery targets — those live in
:mod:`repro.configurations.generators`; the functions here model
transient faults hitting a running population.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from .configuration import Configuration
from .engine import make_rng

__all__ = [
    "corrupt_agents",
    "crash_and_replace",
    "adversarial_swap",
]


def _pick_agents(
    configuration: Configuration, num_agents: int, rng: np.random.Generator
) -> list:
    """Sample ``num_agents`` distinct agents; returns their current states.

    Agents are anonymous, so sampling agents is sampling states with
    multiplicity: we draw without replacement from the multiset.
    """
    population = []
    for state, count in enumerate(configuration):
        population.extend([state] * count)
    if num_agents > len(population):
        raise ConfigurationError(
            f"cannot corrupt {num_agents} of {len(population)} agents"
        )
    chosen = rng.choice(len(population), size=num_agents, replace=False)
    return [population[i] for i in chosen]


def corrupt_agents(
    configuration: Configuration,
    num_agents: int,
    seed: Union[int, np.random.Generator, None] = None,
    target_states: Optional[Sequence[int]] = None,
) -> Configuration:
    """Reassign ``num_agents`` random agents to uniformly random states.

    ``target_states`` restricts where corrupted agents may land
    (default: anywhere in the state space).  Models transient memory
    faults: the population size is preserved, states are arbitrary.
    """
    rng = make_rng(seed)
    victims = _pick_agents(configuration, num_agents, rng)
    targets = (
        list(target_states)
        if target_states is not None
        else list(range(configuration.num_states))
    )
    counts = configuration.counts_list()
    for state in victims:
        counts[state] -= 1
        counts[int(rng.choice(targets))] += 1
    return Configuration(counts)


def crash_and_replace(
    configuration: Configuration,
    num_agents: int,
    replacement_state: int,
    seed: Union[int, np.random.Generator, None] = None,
) -> Configuration:
    """Crash ``num_agents`` random agents and reboot them in one state.

    Models the classical fail-and-rejoin scenario: rebooted agents come
    back with a fixed default state (e.g. rank 0 or the extra state X),
    leaving up to ``num_agents`` rank states unoccupied — a ``k``-distant
    configuration with ``k <= num_agents`` for state-optimal protocols.
    """
    rng = make_rng(seed)
    victims = _pick_agents(configuration, num_agents, rng)
    counts = configuration.counts_list()
    if not 0 <= replacement_state < configuration.num_states:
        raise ConfigurationError(
            f"replacement state {replacement_state} outside state space"
        )
    for state in victims:
        counts[state] -= 1
        counts[replacement_state] += 1
    return Configuration(counts)


def adversarial_swap(
    configuration: Configuration,
    state_a: int,
    state_b: int,
) -> Configuration:
    """Swap the populations of two states (worst-case, deterministic).

    Useful for constructing specific distances from the solved
    configuration in tests.
    """
    counts = configuration.counts_list()
    counts[state_a], counts[state_b] = counts[state_b], counts[state_a]
    return Configuration(counts)
