"""Vectorised numpy batch kernel: the ``backend="numpy"`` jump engine.

The scalar :class:`~repro.core.jump.JumpEngine` already pays O(1) per
productive event, but that O(1) is a Python-interpreter constant —
per-event proposal draws, dict dispatch, Fenwick walks.  This kernel
amortises those constants by drawing **event-pair proposals in bulk
with numpy** and committing them through a much thinner scalar loop.

The algorithm — *frozen-stratum rejection with modified-agent
correction* — simulates the exact jump chain (skip ~ Geometric(W/T),
then a uniform productive ordered pair):

* At each *epoch* the configuration is frozen: per-state counts ``c⁰``
  define canonical agent ids (state ``s`` owns the contiguous id block
  ``[start⁰_s, start⁰_s + c⁰_s)``; agents are exchangeable, so any
  consistent identification realises the exact law).  An agent is
  *modified* once an event changes its state; unmodified agents
  provably still hold their frozen state.
* Live productive ordered pairs split into **K1** (both endpoints
  unmodified — mass ``W1``, maintained in O(1) per event from the
  per-state unmodified counts ``c̃`` through the same family weight
  formulas the fused index uses) and **K2** (at least one modified
  endpoint — mass ``W − W1``, never enumerated).
* K1 pairs are served from a **vectorised proposal buffer**: thousands
  of candidate pairs drawn at once from the frozen-count envelope of
  each family slot (same-state / ordered-product / triangular-line
  decodes, all ``searchsorted``/``divmod`` array arithmetic) and then
  confirmed at commit time with two dict lookups (both endpoints still
  unmodified).  The envelope equals the frozen family weights exactly
  and ``c̃`` only decreases, so the confirm test is a valid rejection
  sampler for uniform-over-K1 and consumes no chain time.
* K2 events are resolved by an exact *group-structured* decomposition:
  ``W − W1`` splits per family into closed-form strata (modified
  initiator × live partners, unmodified initiator × modified
  responders), with modified agents indexed by live state and by
  product side in O(1)-maintained groups — no walk over the modified
  set, so K2 stays cheap even when epochs run long.

Per-event work between Python-level batch refills is then: one exact
``rand_below(W)`` (buffered raw 64-bit draws), one geometric skip
(buffered ``log1p`` uniforms, the same formula as the scalar engine),
a candidate confirm, and a handful of integer aggregate updates.

The slot structure is **compiled from the fused index's layout export**
(:meth:`~repro.core.fused.FusedIndex.layout`) — one source of truth for
how productive pairs decompose — and cached across runs keyed by
protocol shape (:data:`_PROGRAM_CACHE`).  Protocols whose families fall
outside the supported kinds (opaque adapters) are reported by
:func:`batch_supported` and routed to the scalar engines by
:func:`~repro.core.engine.build_engine`.

Equivalence contract: **step-distribution-identical** to the scalar
engines (every draw is exact — integer rejection sampling, the scalar
engine's own geometric-skip formula), not bit-identical: the RNG
consumption pattern differs.  ``snapshot()`` canonicalises (buffered
draws are discarded — memorylessness makes that distribution-exact), so
the engine that took a snapshot and any engine restored from it
continue bit-identically to *each other*.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._deps import np

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .fused import FusedIndex
from .protocol import PopulationProtocol
from .snapshot import (
    EngineSnapshot,
    capture_rng,
    check_snapshot,
    restore_rng,
)

__all__ = ["BatchEngine", "batch_supported"]

_RAW_SPAN = 1 << 64
_RAW_BATCH = 8192
_UNIFORM_BATCH = 8192
#: Overflow guard for exact integer draws (matches the jump engine).
_MAX_EXACT = 1 << 62

#: Refresh when the unmodified stratum drops under half the live mass
#: (bounds the K2 fraction — K2 selection is cheap group arithmetic, so
#: the kernel tolerates a large modified stratum) …
_REFRESH_NUM, _REFRESH_DEN = 1, 2
#: … or when the frozen envelope exceeds this multiple of ``W1`` (bounds
#: expected proposal candidates per confirmed K1 event at ≥ 1/8).
_ENVELOPE_FACTOR = 8

#: Proposal batch sizing: first refill of an epoch, growth cap.
_MIN_BATCH = 256
_MAX_BATCH = 16384

# Aggregate-update step codes (per-state compiled programs).
_ST_SAME, _ST_PROD_I, _ST_PROD_R, _ST_TRI = 0, 1, 2, 3


def _tri_term(s: int, q: int) -> int:
    """Triangular family weight from its (sum, sum-of-squares) stats."""
    return (q - s) + (s * s - q) // 2


class _BatchProgram:
    """Compiled, count-independent structure shared across runs.

    Built from :meth:`FusedIndex.layout` — the same slot decomposition
    the scalar fast path compiles against — plus the lazily filled
    transition table (``(s1, s2) -> (t1, t2, merged count deltas)``).
    """

    __slots__ = (
        "num_states", "same_states", "same_rule", "products", "tris",
        "same_idx", "prod_idx", "tri_idx", "tri_pos",
        "state_steps", "state_prod_sides", "state_tri_pos", "transitions",
    )

    def __init__(self, num_states: int, layout: tuple) -> None:
        self.num_states = num_states
        self.same_states: List[int] = []
        self.same_rule = bytearray(num_states)
        #: per product: (initiator states, responder states)
        self.products: List[Tuple[tuple, tuple]] = []
        #: per triangular: the line (position-ordered state tuple)
        self.tris: List[tuple] = []
        for slot in layout:
            kind = slot[0]
            if kind == "same":
                state = slot[1]
                if not self.same_rule[state]:
                    self.same_rule[state] = 1
                    self.same_states.append(state)
            elif kind == "product":
                _, initiators, responders = slot
                self.products.append((initiators, responders))
            elif kind == "triangular":
                _, line = slot
                self.tris.append(line)
            elif kind == "proposal-pool":
                continue  # sampling detail of the scalar hot loop
            else:
                raise SimulationError(
                    f"batch kernel cannot compile {kind!r} slots"
                )
        # Static decode-index arrays (counts are gathered per epoch).
        self.same_idx = np.asarray(self.same_states, dtype=np.int64)
        self.prod_idx = [
            (
                np.asarray(initiators, dtype=np.int64),
                np.asarray(responders, dtype=np.int64),
            )
            for initiators, responders in self.products
        ]
        self.tri_idx = [
            np.asarray(line, dtype=np.int64) for line in self.tris
        ]
        self.tri_pos = [
            np.arange(len(line), dtype=np.int64) for line in self.tris
        ]
        # Per-state aggregate-update steps, product-side memberships,
        # and triangular-line positions.
        steps: List[List[tuple]] = [[] for _ in range(num_states)]
        sides: List[List[tuple]] = [[] for _ in range(num_states)]
        tripos: List[List[tuple]] = [[] for _ in range(num_states)]
        for s in self.same_states:
            steps[s].append((_ST_SAME, 0))
        for p, (initiators, responders) in enumerate(self.products):
            for s in initiators:
                steps[s].append((_ST_PROD_I, p))
                sides[s].append((p, 0))
            for s in responders:
                steps[s].append((_ST_PROD_R, p))
                sides[s].append((p, 1))
        for t, line in enumerate(self.tris):
            for q, s in enumerate(line):
                steps[s].append((_ST_TRI, t))
                tripos[s].append((t, q))
        self.state_steps = [tuple(e) for e in steps]
        self.state_prod_sides = [tuple(e) for e in sides]
        self.state_tri_pos = [tuple(e) for e in tripos]
        #: (s1, s2) -> (t1, t2, ops) — filled lazily from protocol.delta.
        self.transitions: Dict[Tuple[int, int], tuple] = {}

    def transition(self, protocol, s1: int, s2: int) -> tuple:
        entry = self.transitions.get((s1, s2))
        if entry is None:
            out = protocol.delta(s1, s2)
            if out is None:
                raise SimulationError(
                    f"family coverage violated: pair ({s1}, {s2}) was "
                    "sampled but delta is silent"
                )
            t1, t2 = out
            deltas: Dict[int, int] = {}
            for state, d in ((s1, -1), (s2, -1), (t1, 1), (t2, 1)):
                deltas[state] = deltas.get(state, 0) + d
            ops = tuple(
                (state, d) for state, d in deltas.items() if d != 0
            )
            entry = (t1, t2, ops)
            self.transitions[(s1, s2)] = entry
        return entry


#: Cross-run program cache.  Keyed by the protocol's *shape* — type,
#: name, population, and state count — so two equal-shaped protocol
#: instances share one compiled program (and its transition table).
_PROGRAM_CACHE: Dict[tuple, object] = {}
_UNSUPPORTED = object()


def _layout_for(protocol: PopulationProtocol) -> tuple:
    """The fused slot layout of ``protocol`` (count-independent)."""
    zeros = [0] * protocol.num_states
    families = protocol.build_families(zeros)
    index = FusedIndex(families, protocol.num_states, zeros)
    return index.layout()


def _program_for(protocol: PopulationProtocol) -> Optional[_BatchProgram]:
    """Compiled batch program for ``protocol``, or None if unsupported."""
    n = protocol.num_agents
    if n * (n - 1) >= _MAX_EXACT:
        return None
    key = (
        type(protocol).__name__,
        protocol.name,
        n,
        protocol.num_states,
    )
    cached = _PROGRAM_CACHE.get(key)
    if cached is _UNSUPPORTED:
        return None
    if cached is not None:
        return cached
    try:
        layout = _layout_for(protocol)
        program = _BatchProgram(protocol.num_states, layout)
    except SimulationError:
        _PROGRAM_CACHE[key] = _UNSUPPORTED
        return None
    _PROGRAM_CACHE[key] = program
    return program


def batch_supported(protocol: PopulationProtocol) -> bool:
    """True iff the batch kernel can compile this protocol's families.

    Supported slot kinds: same-state rules, ordered products, and
    triangular lines — everything the paper's protocols use.  Opaque
    family adapters (custom :class:`~repro.core.families.Family`
    subclasses) fall back to the scalar engines.
    """
    return _program_for(protocol) is not None


class BatchEngine:
    """Numpy-vectorised exact jump-chain engine (uniform scheduler).

    Same driver interface as the scalar engines: ``run`` / ``step`` /
    ``snapshot`` / ``restore`` / ``reset_configuration`` /
    ``configuration``, plus the ``counts`` / ``interactions`` /
    ``events`` result fields.  Construct through
    :func:`~repro.core.engine.build_engine` with ``backend="numpy"``.
    """

    snapshot_kind = "batch"

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng,
        instrumentation=None,
    ) -> None:
        protocol.validate_configuration(configuration)
        program = _program_for(protocol)
        if program is None:
            raise SimulationError(
                f"protocol {protocol.name!r} is not supported by the "
                "batch kernel (use the scalar engines)"
            )
        self._protocol = protocol
        self._program = program
        self._rng = rng
        self._instr = instrumentation
        self._n = protocol.num_agents
        self._total_pairs = self._n * (self._n - 1)
        self.counts: List[int] = configuration.counts_list()
        self._counts_np = np.asarray(self.counts, dtype=np.int64)
        self.interactions = 0
        self.events = 0
        # Buffered exact draws (consumed scalar, refilled vectorised).
        self._raws: List[int] = []
        self._raw_pos = 0
        self._raw_batches = 0
        self._lus: List[float] = []
        self._lu_pos = 0
        self._lu_batches = 0
        self._lp_weight = -1
        self._lp = 0.0
        # Telemetry (flushed into the Instrumentation bag per run).
        self._c_refreshes = 0
        self._c_refills = 0
        self._c_proposals = 0
        self._c_candidates = 0
        self._c_confirm_rejects = 0
        self._c_k2 = 0
        self._epoch_candidates_mark = 0
        self._batch_size = _MIN_BATCH
        self._live_from_counts()
        self._refresh()

    # ------------------------------------------------------------------
    # Aggregates: live and unmodified-stratum family weights
    # ------------------------------------------------------------------
    def _live_from_counts(self) -> None:
        """Rebuild the live weight aggregates (and ``W``) from counts."""
        counts = self.counts
        program = self._program
        self._sw = sum(
            counts[s] * (counts[s] - 1) for s in program.same_states
        )
        self._it = [
            sum(counts[s] for s in initiators)
            for initiators, _ in program.products
        ]
        self._rt = [
            sum(counts[s] for s in responders)
            for _, responders in program.products
        ]
        self._ts = [sum(counts[s] for s in line) for line in program.tris]
        self._tq = [
            sum(counts[s] * counts[s] for s in line)
            for line in program.tris
        ]
        self._tterm = [
            _tri_term(s, q) for s, q in zip(self._ts, self._tq)
        ]
        self._w = (
            self._sw
            + sum(i * r for i, r in zip(self._it, self._rt))
            + sum(self._tterm)
        )

    @property
    def productive_weight(self) -> int:
        """Current number of productive ordered pairs ``W``."""
        return self._w

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self._w == 0

    def _retire_unmod(self, state: int) -> None:
        """One frozen-state-``state`` agent left the unmodified stratum."""
        ctilde = self._ctilde
        old = ctilde[state]
        new = old - 1
        ctilde[state] = new
        w1 = self._w1
        for code, idx in self._program.state_steps[state]:
            if code == 0:  # same
                d = new * (new - 1) - old * (old - 1)
                self._sw1 += d
                w1 += d
            elif code == 1:  # product initiator side
                self._it1[idx] -= 1
                w1 -= self._rt1[idx]
            elif code == 2:  # product responder side
                self._rt1[idx] -= 1
                w1 -= self._it1[idx]
            else:  # triangular
                sv = self._ts1[idx] - 1
                self._ts1[idx] = sv
                qv = self._tq1[idx] + new * new - old * old
                self._tq1[idx] = qv
                nt = (qv - sv) + (sv * sv - qv) // 2
                w1 += nt - self._tterm1[idx]
                self._tterm1[idx] = nt
        self._w1 = w1

    # ------------------------------------------------------------------
    # Epochs: freeze, envelopes, vectorised proposal refills
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Start a new epoch: freeze counts, rebuild envelopes.

        Deterministic (consumes no randomness — proposals are drawn
        lazily by :meth:`_refill`), so snapshot canonicalisation can
        schedule one on both the live and the restored engine.  All
        count-dependent decode tables are numpy gathers over static
        per-slot index arrays — O(states) of C work, no Python loops.
        """
        program = self._program
        cnp = self._counts_np
        self._c0 = self.counts.copy()
        ends = np.cumsum(cnp)
        self._start0 = ends - cnp  # frozen id-block starts, per state
        self._ctilde = self.counts.copy()
        # Modified-agent groups: live state -> [agent ids], plus each
        # agent's position for O(1) swap-removal; product-side mirrors.
        self._modified: Dict[int, int] = {}
        self._by_state: Dict[int, List[int]] = {}
        self._state_pos: Dict[int, int] = {}
        self._pgroups = [
            ([], []) for _ in program.products
        ]
        self._ppos = [
            ({}, {}) for _ in program.products
        ]
        # Per-line modified counts by position (mirrors the by-state
        # group sizes for triangular states, maintained incrementally).
        self._mod_tri = [[0] * len(line) for line in program.tris]
        # Unmodified aggregates start equal to the live ones.
        self._sw1 = self._sw
        self._it1 = list(self._it)
        self._rt1 = list(self._rt)
        self._ts1 = list(self._ts)
        self._tq1 = list(self._tq)
        self._tterm1 = list(self._tterm)
        self._w1 = self._w
        # Frozen-envelope decode tables, one branch per fused slot.
        # Zero-count states stay in the arrays: they decode to
        # zero-width cumsum segments that searchsorted never selects.
        branches = []
        sizes = []
        if len(program.same_idx):
            c0s = cnp[program.same_idx]
            w = c0s * (c0s - 1)
            cum = np.cumsum(w)
            total = int(cum[-1])
            if total:
                branches.append(
                    ("same", program.same_idx, c0s,
                     self._start0[program.same_idx], cum)
                )
                sizes.append(total)
        side_tables = []
        for p, (iidx, ridx) in enumerate(program.prod_idx):
            tables = []
            for idx in (iidx, ridx):
                cc = cnp[idx]
                cum = np.cumsum(cc)
                pad = cum - cc
                tables.append(
                    (idx, cum, pad, self._start0[idx], int(cum[-1]))
                )
            side_tables.append(tuple(tables))
            total = tables[0][4] * tables[1][4]
            if total:
                branches.append(("prod", tables[0], tables[1]))
                sizes.append(total)
        self._side0 = side_tables
        for t, idx in enumerate(program.tri_idx):
            cc = cnp[idx]
            cum = np.cumsum(cc)
            members = int(cum[-1])
            if members >= 2:
                branches.append(
                    ("tri", idx, program.tri_pos[t], cum,
                     self._start0[idx], members)
                )
                sizes.append(members * members)
        self._branches = branches
        self._env_total = sum(sizes)
        self._branch_cum = (
            np.cumsum(np.asarray(sizes, dtype=np.int64)) if sizes else None
        )
        # Candidate buffer: drop leftovers (i.i.d. — discard is exact);
        # size the next epoch's first refill from this epoch's demand.
        used = self._c_candidates - self._epoch_candidates_mark
        self._epoch_candidates_mark = self._c_candidates
        self._batch_size = min(_MAX_BATCH, max(_MIN_BATCH, used))
        self._cand_s1: List[int] = []
        self._cand_s2: List[int] = []
        self._cand_id1: List[int] = []
        self._cand_id2: List[int] = []
        self._cand_pos = 0
        self._c_refreshes += 1

    def _refill(self) -> None:
        """Draw one vectorised proposal batch from the frozen envelope.

        All decodes are array arithmetic; acceptance masks keep the
        candidates in draw order, so the surviving stream is i.i.d.
        uniform over the frozen productive support.
        """
        total = self._env_total
        if total <= 0:
            raise SimulationError("batch refill with an empty envelope")
        size = self._batch_size
        self._batch_size = min(_MAX_BATCH, size * 2)
        r = self._rng.integers(0, total, size=size, dtype=np.int64)
        s1 = np.zeros(size, dtype=np.int64)
        s2 = np.zeros(size, dtype=np.int64)
        id1 = np.zeros(size, dtype=np.int64)
        id2 = np.zeros(size, dtype=np.int64)
        ok = np.ones(size, dtype=bool)
        cum = self._branch_cum
        branch = np.searchsorted(cum, r, side="right")
        base = np.concatenate((np.zeros(1, dtype=np.int64), cum))
        offset = r - base[branch]
        for b, spec in enumerate(self._branches):
            mask = branch == b
            if not mask.any():
                continue
            x = offset[mask]
            kind = spec[0]
            if kind == "same":
                _, st, c0, start, wcum = spec
                pad = np.concatenate((np.zeros(1, dtype=np.int64), wcum))
                k = np.searchsorted(wcum, x, side="right")
                rem = x - pad[k]
                c = c0[k]
                u = rem // (c - 1)
                t = rem % (c - 1)
                v = t + (t >= u)
                s1[mask] = st[k]
                s2[mask] = st[k]
                id1[mask] = start[k] + u
                id2[mask] = start[k] + v
            elif kind == "prod":
                _, (ist, icum, ipad, istart, _itot), \
                    (rst, rcum, rpad, rstart, rtot) = spec
                ipart = x // rtot
                rpart = x - ipart * rtot
                ki = np.searchsorted(icum, ipart, side="right")
                kr = np.searchsorted(rcum, rpart, side="right")
                s1[mask] = ist[ki]
                s2[mask] = rst[kr]
                id1[mask] = istart[ki] + (ipart - ipad[ki])
                id2[mask] = rstart[kr] + (rpart - rpad[kr])
            else:  # triangular
                _, st, pos, ccum, start, members = spec
                u = x // members
                v = x - u * members
                pad = np.concatenate((np.zeros(1, dtype=np.int64), ccum))
                ku = np.searchsorted(ccum, u, side="right")
                kv = np.searchsorted(ccum, v, side="right")
                pu = pos[ku]
                pv = pos[kv]
                s1[mask] = st[ku]
                s2[mask] = st[kv]
                id1[mask] = start[ku] + (u - pad[ku])
                id2[mask] = start[kv] + (v - pad[kv])
                # Ordered-pair envelope: initiator position must not
                # exceed the responder's; the diagonal needs distinct
                # member indices.
                ok[mask] = (pu < pv) | ((ku == kv) & (u != v))
        acc = np.flatnonzero(ok)
        self._cand_s1 = s1[acc].tolist()
        self._cand_s2 = s2[acc].tolist()
        self._cand_id1 = id1[acc].tolist()
        self._cand_id2 = id2[acc].tolist()
        self._cand_pos = 0
        self._c_proposals += size
        self._c_refills += 1

    # ------------------------------------------------------------------
    # Buffered exact scalar draws
    # ------------------------------------------------------------------
    def _next_raw(self) -> int:
        pos = self._raw_pos
        if pos >= len(self._raws):
            self._raws = self._rng.integers(
                0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
            ).tolist()
            pos = 0
            self._raw_batches += 1
        self._raw_pos = pos + 1
        return self._raws[pos]

    def _rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``, exact (rejection on raws)."""
        limit = _RAW_SPAN - bound
        while True:
            raw = self._next_raw()
            value = raw % bound
            if raw - value <= limit:
                return value

    def _geometric_skip(self, weight: int) -> int:
        """Steps to the next productive interaction — the jump formula."""
        if weight != self._lp_weight:
            self._lp_weight = weight
            p = weight / self._total_pairs
            self._lp = math.log1p(-p) if p < 1.0 else -math.inf
        pos = self._lu_pos
        if pos >= len(self._lus):
            self._lus = np.log1p(
                -self._rng.random(_UNIFORM_BATCH)
            ).tolist()
            pos = 0
            self._lu_batches += 1
        lu = self._lus[pos]
        self._lu_pos = pos + 1
        lp = self._lp
        if lp == -math.inf:
            return 1
        skip = math.ceil(lu / lp)
        return skip if skip >= 1 else 1

    # ------------------------------------------------------------------
    # Modified-agent groups (live-state and product-side indexes)
    # ------------------------------------------------------------------
    def _group_add(self, aid: int, state: int) -> None:
        lst = self._by_state.get(state)
        if lst is None:
            lst = self._by_state[state] = []
        self._state_pos[aid] = len(lst)
        lst.append(aid)
        program = self._program
        for p, side in program.state_prod_sides[state]:
            g = self._pgroups[p][side]
            self._ppos[p][side][aid] = len(g)
            g.append(aid)
        for t, q in program.state_tri_pos[state]:
            self._mod_tri[t][q] += 1

    def _group_remove(self, aid: int, state: int) -> None:
        lst = self._by_state[state]
        pos = self._state_pos.pop(aid)
        last = lst.pop()
        if last != aid:
            lst[pos] = last
            self._state_pos[last] = pos
        if not lst:
            del self._by_state[state]
        program = self._program
        for p, side in program.state_prod_sides[state]:
            g = self._pgroups[p][side]
            pm = self._ppos[p][side]
            gpos = pm.pop(aid)
            glast = g.pop()
            if glast != aid:
                g[gpos] = glast
                pm[glast] = gpos
        for t, q in program.state_tri_pos[state]:
            self._mod_tri[t][q] -= 1

    # ------------------------------------------------------------------
    # Uniform draws over the unmodified stratum
    # ------------------------------------------------------------------
    def _draw_unmod(self, state: int) -> int:
        """Uniform unmodified agent of frozen state ``state`` (id).

        Rejection against the frozen id block; after a pathological run
        of hits on modified agents, falls back to an exact indexed scan.
        """
        c0 = self._c0[state]
        base = int(self._start0[state])
        modified = self._modified
        for _ in range(64):
            aid = base + self._rand_below(c0)
            if aid not in modified:
                return aid
        return self._nth_unmod(state, self._rand_below(self._ctilde[state]))

    def _nth_unmod(self, state: int, k: int) -> int:
        base = int(self._start0[state])
        modified = self._modified
        for aid in range(base, base + self._c0[state]):
            if aid not in modified:
                if k == 0:
                    return aid
                k -= 1
        raise SimulationError("unmodified stratum exhausted mid-scan")

    def _draw_unmod_side(self, p: int, side: int) -> Tuple[int, int]:
        """Uniform unmodified agent over a product side: (id, state).

        Rejection against the frozen side envelope (scalar searchsorted
        decode); exact mass-indexed scan as the pathological fallback.
        """
        idx, cum, pad, start, total0 = self._side0[p][side]
        modified = self._modified
        for _ in range(64):
            x = self._rand_below(total0)
            k = int(np.searchsorted(cum, x, side="right"))
            aid = int(start[k]) + x - int(pad[k])
            if aid not in modified:
                return aid, int(idx[k])
        states = self._program.products[p][side]
        ctilde = self._ctilde
        k = self._rand_below(sum(ctilde[s] for s in states))
        for s in states:
            c = ctilde[s]
            if k < c:
                return self._nth_unmod(s, k), s
            k -= c
        raise SimulationError("unmodified side mass exhausted mid-draw")

    # ------------------------------------------------------------------
    # K2: pairs touching the modified stratum (group-structured, exact)
    # ------------------------------------------------------------------
    def _k2_sample(self, x: int) -> tuple:
        """Resolve a draw landing in the modified stratum.

        ``x`` is uniform on ``[0, W − W1)``.  The mass splits per family
        into closed-form strata — for each, "initiator modified" counts
        every live partner and "initiator unmodified" counts modified
        responders only, so every K2 ordered pair is covered exactly
        once.  Group lookups replace any walk over the modified set.
        Returns ``(s1, s2, id1, id2)``.
        """
        program = self._program
        counts = self.counts
        ctilde = self._ctilde
        by_state = self._by_state
        m_same = self._sw - self._sw1
        if x < m_same:
            for s, lst in by_state.items():
                if not program.same_rule[s]:
                    continue
                m = len(lst)
                c = counts[s]
                ct = ctilde[s]
                mass = m * (c - 1) + ct * m
                if x < mass:
                    a_mass = m * (c - 1)
                    if x < a_mass:
                        i = x // (c - 1)
                        y = x % (c - 1)
                        id1 = lst[i]
                        if y < ct:
                            return s, s, id1, self._draw_unmod(s)
                        z = y - ct
                        return s, s, id1, lst[z + (z >= i)]
                    xx = x - a_mass
                    return s, s, self._draw_unmod(s), lst[xx // ct]
                x -= mass
            raise SimulationError("K2 same-state walk overflow")
        x -= m_same
        for p in range(len(program.products)):
            gi, gr = self._pgroups[p]
            itm = len(gi)
            rtm = len(gr)
            rt = self._rt[p]
            it1 = self._it1[p]
            rt1 = self._rt1[p]
            a_mass = itm * rt
            if x < a_mass:
                id1 = gi[x // rt]
                y = x % rt
                s1 = self._modified[id1]
                if y < rt1:
                    id2, s2 = self._draw_unmod_side(p, 1)
                else:
                    id2 = gr[y - rt1]
                    s2 = self._modified[id2]
                return s1, s2, id1, id2
            x -= a_mass
            b_mass = it1 * rtm
            if x < b_mass:
                id2 = gr[x // it1]
                id1, s1 = self._draw_unmod_side(p, 0)
                return s1, self._modified[id2], id1, id2
            x -= b_mass
        for t in range(len(program.tris)):
            mass_t = self._tterm[t] - self._tterm1[t]
            if x < mass_t:
                return self._k2_tri(t, x)
            x -= mass_t
        raise SimulationError("K2 walk overflow (mass accounting broken)")

    def _k2_tri(self, t: int, x: int) -> tuple:
        """K2 pair within one triangular line, ``x`` uniform on its mass.

        Per position ``q`` (modified count ``m_q``, unmodified ``c̃_q``):
        stratum A — modified initiator at ``q`` with any live partner at
        the same state or a later position, mass ``m_q(c_q − 1 +
        suffix_live)``; stratum B — unmodified initiator at ``q`` with a
        modified responder at the same state or later, mass
        ``c̃_q(m_q + suffix_mod)``.  Summed over ``q`` these masses
        telescope to exactly ``T(live) − T(unmodified)``.
        """
        counts = self.counts
        ctilde = self._ctilde
        by_state = self._by_state
        line = self._program.tris[t]
        length = len(line)
        m = self._mod_tri[t]
        suff_live = [0] * (length + 1)
        suff_mod = [0] * (length + 1)
        for q in range(length - 1, -1, -1):
            suff_live[q] = suff_live[q + 1] + counts[line[q]]
            suff_mod[q] = suff_mod[q + 1] + m[q]
        for q in range(length):
            mq = m[q]
            s = line[q]
            c = counts[s]
            ct = ctilde[s]
            if mq:
                a_span = (c - 1) + suff_live[q + 1]
                a_mass = mq * a_span
                if x < a_mass:
                    lst = by_state[s]
                    i = x // a_span
                    y = x % a_span
                    id1 = lst[i]
                    if y < c - 1:
                        if y < ct:
                            return s, s, id1, self._draw_unmod(s)
                        z = y - ct
                        return s, s, id1, lst[z + (z >= i)]
                    y -= c - 1
                    for r in range(q + 1, length):
                        sr = line[r]
                        cr = counts[sr]
                        if y < cr:
                            ctr = ctilde[sr]
                            if y < ctr:
                                return s, sr, id1, self._draw_unmod(sr)
                            return s, sr, id1, by_state[sr][y - ctr]
                        y -= cr
                    raise SimulationError("K2 tri suffix overflow")
                x -= a_mass
            if ct:
                b_mass = ct * (mq + suff_mod[q + 1])
                if x < b_mass:
                    y = x // ct
                    id1 = self._draw_unmod(s)
                    if y < mq:
                        return s, s, id1, by_state[s][y]
                    y -= mq
                    for r in range(q + 1, length):
                        sr = line[r]
                        mr = m[r]
                        if y < mr:
                            return s, line[r], id1, by_state[sr][y]
                        y -= mr
                    raise SimulationError("K2 tri mod-suffix overflow")
                x -= b_mass
        raise SimulationError("K2 tri walk overflow")

    # ------------------------------------------------------------------
    # The commit loop
    # ------------------------------------------------------------------
    def _next_k1(self) -> tuple:
        """Next confirmed candidate — uniform over K1."""
        modified = self._modified
        pos = self._cand_pos
        id1s = self._cand_id1
        id2s = self._cand_id2
        size = len(id1s)
        rejects = 0
        while True:
            if pos >= size:
                self._refill()
                pos = 0
                id1s = self._cand_id1
                id2s = self._cand_id2
                size = len(id1s)
                continue
            a = id1s[pos]
            b = id2s[pos]
            if a not in modified and b not in modified:
                self._c_candidates += pos - self._cand_pos + 1
                self._c_confirm_rejects += rejects
                s1 = self._cand_s1[pos]
                s2 = self._cand_s2[pos]
                self._cand_pos = pos + 1
                return s1, s2, a, b
            rejects += 1
            pos += 1

    def _commit(self, s1: int, s2: int, id1: int, id2: int) -> tuple:
        """Apply the transition for the sampled pair; returns (t1, t2).

        Updates counts, the live aggregates (and ``W``) incrementally,
        and the modified-stratum bookkeeping for any agent whose state
        actually changed.
        """
        t1, t2, ops = self._program.transition(self._protocol, s1, s2)
        counts = self.counts
        cnp = self._counts_np
        steps = self._program.state_steps
        it = self._it
        rt = self._rt
        ts = self._ts
        tq = self._tq
        tterm = self._tterm
        w = self._w
        sw = self._sw
        for state, d in ops:
            old = counts[state]
            new = old + d
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying transition"
                )
            counts[state] = new
            cnp[state] = new
            for code, idx in steps[state]:
                if code == 0:  # same
                    dd = new * (new - 1) - old * (old - 1)
                    sw += dd
                    w += dd
                elif code == 1:  # product initiator side
                    it[idx] += d
                    w += d * rt[idx]
                elif code == 2:  # product responder side
                    rt[idx] += d
                    w += d * it[idx]
                else:  # triangular
                    sv = ts[idx] + d
                    ts[idx] = sv
                    qv = tq[idx] + new * new - old * old
                    tq[idx] = qv
                    nt = (qv - sv) + (sv * sv - qv) // 2
                    w += nt - tterm[idx]
                    tterm[idx] = nt
        self._w = w
        self._sw = sw
        modified = self._modified
        if t1 != s1:
            if id1 in modified:
                self._group_remove(id1, s1)
            else:
                self._retire_unmod(s1)
            modified[id1] = t1
            self._group_add(id1, t1)
        if t2 != s2:
            if id2 in modified:
                self._group_remove(id2, s2)
            else:
                self._retire_unmod(s2)
            modified[id2] = t2
            self._group_add(id2, t2)
        self.events += 1
        return t1, t2

    def _run_loop(
        self,
        max_interactions: Optional[int],
        recorder: Optional[Recorder],
        max_events: Optional[int],
    ) -> bool:
        total_pairs = self._total_pairs
        raw_limit_base = _RAW_SPAN
        ceil = math.ceil
        neg_inf = -math.inf
        while True:
            w = self._w
            if w == 0:
                return True
            if max_events is not None and self.events >= max_events:
                return False
            w1 = self._w1
            if self._modified and (
                _REFRESH_DEN * w1 < _REFRESH_NUM * w
                or self._env_total > _ENVELOPE_FACTOR * w1
            ):
                self._refresh()
                w1 = w
            # Geometric skip, inlined (the jump engine's exact formula).
            if w != self._lp_weight:
                self._lp_weight = w
                p = w / total_pairs
                self._lp = math.log1p(-p) if p < 1.0 else neg_inf
            pos = self._lu_pos
            if pos >= len(self._lus):
                self._lus = np.log1p(
                    -self._rng.random(_UNIFORM_BATCH)
                ).tolist()
                pos = 0
                self._lu_batches += 1
            lu = self._lus[pos]
            self._lu_pos = pos + 1
            lp = self._lp
            if lp == neg_inf:
                skip = 1
            else:
                skip = ceil(lu / lp)
                if skip < 1:
                    skip = 1
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                return False
            self.interactions += skip
            # Exact uniform in [0, W) — inlined rand_below.
            limit = raw_limit_base - w
            rpos = self._raw_pos
            raws = self._raws
            rsize = len(raws)
            while True:
                if rpos >= rsize:
                    raws = self._raws = self._rng.integers(
                        0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
                    ).tolist()
                    rpos = 0
                    rsize = _RAW_BATCH
                    self._raw_batches += 1
                raw = raws[rpos]
                rpos += 1
                u = raw % w
                if raw - u <= limit:
                    break
            self._raw_pos = rpos
            if u < w1:
                s1, s2, id1, id2 = self._next_k1()
            else:
                s1, s2, id1, id2 = self._k2_sample(u - w1)
                self._c_k2 += 1
            t1, t2 = self._commit(s1, s2, id1, id2)
            if recorder is not None:
                recorder.on_event(
                    Event(self.interactions, s1, s2, t1, t2), self.counts
                )

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent."""
        if recorder is not None:
            recorder.on_start(self.counts)
        events0 = self.events
        interactions0 = self.interactions
        marks = (
            self._c_refreshes, self._c_refills, self._c_proposals,
            self._c_candidates, self._c_confirm_rejects, self._c_k2,
            self._raw_batches, self._lu_batches,
        )
        silent = self._run_loop(max_interactions, recorder, max_events)
        if self._instr is not None:
            events = self.events - events0
            self._instr.add_counters(
                events=events,
                interactions=self.interactions - interactions0,
                skip_draws=events,
                batch_refreshes=self._c_refreshes - marks[0],
                batch_refills=self._c_refills - marks[1],
                proposal_draws=self._c_proposals - marks[2],
                batch_candidates=self._c_candidates - marks[3],
                batch_confirm_rejects=self._c_confirm_rejects - marks[4],
                batch_k2_events=self._c_k2 - marks[5],
                raw_draws=(self._raw_batches - marks[6]) * _RAW_BATCH,
                uniform_draws=(self._lu_batches - marks[7])
                * _UNIFORM_BATCH,
            )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent

    def step(self) -> Optional[Event]:
        """Advance to (and apply) the next productive interaction.

        Returns ``None`` when the configuration is silent.  One event
        per call — the batch machinery still amortises the draws.
        """
        w = self._w
        if w == 0:
            return None
        w1 = self._w1
        if self._modified and (
            _REFRESH_DEN * w1 < _REFRESH_NUM * w
            or self._env_total > _ENVELOPE_FACTOR * w1
        ):
            self._refresh()
            w1 = w
        self.interactions += self._geometric_skip(w)
        u = self._rand_below(w)
        if u < w1:
            s1, s2, id1, id2 = self._next_k1()
        else:
            s1, s2, id1, id2 = self._k2_sample(u - w1)
            self._c_k2 += 1
        t1, t2 = self._commit(s1, s2, id1, id2)
        return Event(self.interactions, s1, s2, t1, t2)

    # ------------------------------------------------------------------
    # Fault seam / checkpoints
    # ------------------------------------------------------------------
    def reset_configuration(self, configuration) -> None:
        """Adopt an externally mutated configuration mid-run.

        The fault-injection ``resync`` seam: counts, aggregates, and
        the frozen epoch are rebuilt from the new configuration; the
        counters and the generator stream are preserved.
        """
        counts = (
            configuration.counts_list()
            if isinstance(configuration, Configuration)
            else [int(c) for c in configuration]
        )
        if len(counts) != self._protocol.num_states:
            raise SimulationError(
                f"reset configuration has {len(counts)} states, "
                f"engine has {self._protocol.num_states}"
            )
        if any(c < 0 for c in counts):
            raise SimulationError("reset configuration has negative counts")
        if sum(counts) != self._n:
            raise SimulationError(
                f"reset configuration has {sum(counts)} agents, "
                f"engine has {self._n}"
            )
        self.counts = counts
        self._counts_np = np.asarray(counts, dtype=np.int64)
        self._live_from_counts()
        self._refresh()
        if self._instr is not None:
            self._instr.add("resyncs")
            self._instr.mark(
                "resync", events=self.events, interactions=self.interactions
            )

    def snapshot(self) -> EngineSnapshot:
        """Plain-data checkpoint (canonicalising — see module docstring).

        Buffered draws and the candidate batch are discarded (exact by
        memorylessness) and a fresh epoch is started on *this* engine
        too, so the snapshotting engine and any engine restored from
        the snapshot continue bit-identically to each other.
        """
        self._raws = []
        self._raw_pos = 0
        self._lus = []
        self._lu_pos = 0
        self._lp_weight = -1
        self._refresh()
        self._c_refreshes -= 1  # canonicalisation, not a policy refresh
        # Pin the adaptive proposal sizing: the taker and any restored
        # engine must consume the generator stream identically.
        self._batch_size = _MIN_BATCH
        if self._instr is not None:
            self._instr.add("snapshots")
            self._instr.mark(
                "snapshot", events=self.events, interactions=self.interactions
            )
        return EngineSnapshot(
            kind=self.snapshot_kind,
            num_states=self._protocol.num_states,
            num_agents=self._n,
            counts=tuple(self.counts),
            interactions=self.interactions,
            events=self.events,
            rng_state=capture_rng(self._rng),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Adopt a snapshot in place; continues identically to the taker."""
        check_snapshot(
            snapshot, self.snapshot_kind, self._protocol.num_states, self._n
        )
        self.counts = [int(c) for c in snapshot.counts]
        self._counts_np = np.asarray(self.counts, dtype=np.int64)
        self.interactions = snapshot.interactions
        self.events = snapshot.events
        restore_rng(self._rng, snapshot.rng_state)
        self._raws = []
        self._raw_pos = 0
        self._lus = []
        self._lu_pos = 0
        self._lp_weight = -1
        self._live_from_counts()
        self._refresh()
        self._c_refreshes -= 1
        self._batch_size = _MIN_BATCH
        if self._instr is not None:
            self._instr.add("restores")
            self._instr.mark(
                "restore", events=self.events, interactions=self.interactions
            )

    def configuration(self) -> Configuration:
        """Snapshot of the current configuration."""
        return Configuration(self.counts)

    # ------------------------------------------------------------------
    # Test hook
    # ------------------------------------------------------------------
    def _check_invariants(self) -> None:
        """Assert the incremental aggregates match a full recompute.

        Property-test hook — not used on any hot path.
        """
        live = (
            self._sw, list(self._it), list(self._rt), list(self._ts),
            list(self._tq), list(self._tterm), self._w,
        )
        self._live_from_counts()
        fresh = (
            self._sw, self._it, self._rt, self._ts, self._tq,
            self._tterm, self._w,
        )
        if live != fresh:
            raise AssertionError(
                f"live aggregates drifted: {live} != {fresh}"
            )
        program = self._program
        ctilde = self._ctilde
        sw1 = sum(ctilde[s] * (ctilde[s] - 1) for s in program.same_states)
        it1 = [
            sum(ctilde[s] for s in initiators)
            for initiators, _ in program.products
        ]
        rt1 = [
            sum(ctilde[s] for s in responders)
            for _, responders in program.products
        ]
        ts1 = [sum(ctilde[s] for s in line) for line in program.tris]
        tq1 = [
            sum(ctilde[s] * ctilde[s] for s in line)
            for line in program.tris
        ]
        tterm1 = [_tri_term(s, q) for s, q in zip(ts1, tq1)]
        w1 = sw1 + sum(i * r for i, r in zip(it1, rt1)) + sum(tterm1)
        unmod = (sw1, it1, rt1, ts1, tq1, tterm1, w1)
        held = (
            self._sw1, self._it1, self._rt1, self._ts1, self._tq1,
            self._tterm1, self._w1,
        )
        if held != unmod:
            raise AssertionError(
                f"unmodified aggregates drifted: {held} != {unmod}"
            )
        for s, lst in self._by_state.items():
            if self.counts[s] != ctilde[s] + len(lst):
                raise AssertionError(
                    f"state {s}: live {self.counts[s]} != unmodified "
                    f"{ctilde[s]} + modified {len(lst)}"
                )
        grouped = sum(len(lst) for lst in self._by_state.values())
        if grouped != len(self._modified):
            raise AssertionError(
                f"{grouped} grouped agents != {len(self._modified)} modified"
            )
        for t, line in enumerate(program.tris):
            expected = [
                len(self._by_state.get(s, ())) for s in line
            ]
            if self._mod_tri[t] != expected:
                raise AssertionError(
                    f"line {t} modified-count mirror drifted: "
                    f"{self._mod_tri[t]} != {expected}"
                )
