"""Engine checkpoints: plain-data snapshots with exact resumption.

An :class:`EngineSnapshot` captures everything an engine needs to
continue a run bit-for-bit — the counts, the interaction/event
counters, the epoch cursor, the exact bit-generator state, and any
buffered batched draws — while staying **compiled-index-free**: no
Fenwick trees, transition programs, or family objects are serialised.
Restoration reuses the engines' in-place ``resync(counts)`` fault seam,
so restoring never recompiles anything the constructor did not already
build.

The exactness contract (property-tested in
``tests/property/test_prop_snapshot.py``):

* ``snapshot()`` first *canonicalises* the live sampler through the
  resync seam — the same legal re-partition the fast loops already
  perform periodically, so the step distribution is untouched — and
  then captures plain data.  At a recorder-free ``run()`` boundary the
  engine is already canonical, making ``snapshot()`` state-preserving
  there: ``run → continue`` and ``run → snapshot → restore → continue``
  produce identical trajectories and final counts.
* After manual ``step()`` driving the sampler may hold a drifted
  (history-dependent) partition; ``snapshot()`` canonicalises it, so
  the engine that took the snapshot and any engine restored from it
  still continue identically to *each other*.

Snapshots are picklable and JSON-serialisable (:meth:`~EngineSnapshot.to_dict`
/ :meth:`~EngineSnapshot.from_dict` — numpy bit-generator states are
plain nested dicts of ints, and Python floats round-trip JSON exactly),
which is what lets the ensemble runner park jobs on disk and migrate
them between processes.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro._deps import np

from ..exceptions import SimulationError

__all__ = ["EngineSnapshot", "resume_engine"]

#: Snapshot schema version — bumped on any incompatible field change.
SNAPSHOT_VERSION = 1

_KINDS = ("jump", "sequential", "scheduled", "agent", "weighted", "batch")

#: Kinds a snapshot can be converted between via :meth:`EngineSnapshot.rehost`
#: — the uniform-scheduler engines, whose dynamical state is fully
#: determined by the counts (agents are exchangeable; buffered draws are
#: discardable by memorylessness).  Scheduled/weighted/agent snapshots
#: carry epoch cursors tied to their scheduler and stay host-locked.
_REHOSTABLE = ("jump", "sequential", "batch")


@dataclass(frozen=True)
class EngineSnapshot:
    """Plain-data checkpoint of a running engine.

    Only the ``kind``-relevant fields are populated; the rest keep
    their defaults.  All fields are built-in scalars, tuples, or dicts
    of ints — nothing compiled, nothing holding object references.
    """

    kind: str
    num_states: int
    num_agents: int
    counts: Tuple[int, ...]
    interactions: int
    events: int
    #: Full ``rng.bit_generator.state`` dict (includes the generator name).
    rng_state: Dict = field(default_factory=dict)
    #: Buffered float-uniform batch (jump/weighted engines). Empty means
    #: exhausted — the next draw refills from the restored stream.
    uniforms: Tuple[float, ...] = ()
    uniform_pos: int = 0
    #: Remaining buffered 64-bit raws (stored as the unconsumed tail).
    raws: Tuple[int, ...] = ()
    #: Remaining buffered ordered-pair draws, flattened (sequential family).
    pair_buffer: Tuple[int, ...] = ()
    #: Remaining buffered acceptance uniforms (rejection engines).
    accepts: Tuple[float, ...] = ()
    #: Explicit per-agent states (sequential family only).
    agent_states: Optional[Tuple[int, ...]] = None
    # Epoch cursor (scheduled/weighted engines).
    epoch: int = 0
    start_events: int = 0
    start_interactions: int = 0
    next_predicate_check: int = 0
    #: Per-segment thinned-routing flags (weighted engine) — decided
    #: from the *start* configuration, so they must travel with the
    #: snapshot for the restored engine to realise the same loop.
    thinned: Optional[Tuple[bool, ...]] = None
    acceptance_estimates: Optional[Tuple[float, ...]] = None
    version: int = SNAPSHOT_VERSION

    def to_dict(self) -> Dict:
        """JSON-safe dict (tuples become lists; ints stay exact)."""
        return asdict(self)

    def rehost(self, kind: str) -> "EngineSnapshot":
        """Convert this snapshot for restoration onto another backend.

        Cross-backend restore seam: a snapshot taken on one
        uniform-scheduler engine (``jump`` / ``sequential`` / ``batch``)
        becomes restorable on another.  Backend-specific buffered draws
        are dropped — discarding unconsumed i.i.d. draws at a stopping
        time is distribution-exact — and a target that needs explicit
        agent identities (``sequential``) gets the canonical
        state-sorted agent array, which realises the same law because
        agents are exchangeable.  The continuation is therefore
        *step-distribution-identical* to the source engine's, not
        bit-identical: the new host consumes the restored generator
        stream in its own pattern.
        """
        if self.kind not in _REHOSTABLE:
            raise SimulationError(
                f"cannot rehost a {self.kind!r} snapshot; only "
                f"{_REHOSTABLE} interconvert"
            )
        if kind not in _REHOSTABLE:
            raise SimulationError(
                f"cannot rehost onto {kind!r}; expected one of {_REHOSTABLE}"
            )
        if kind == self.kind:
            return self
        agent_states: Optional[Tuple[int, ...]] = None
        if kind == "sequential":
            agent_states = tuple(
                state
                for state, count in enumerate(self.counts)
                for _ in range(count)
            )
        return EngineSnapshot(
            kind=kind,
            num_states=self.num_states,
            num_agents=self.num_agents,
            counts=self.counts,
            interactions=self.interactions,
            events=self.events,
            rng_state=copy.deepcopy(self.rng_state),
            agent_states=agent_states,
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "EngineSnapshot":
        """Inverse of :meth:`to_dict`; coerces sequences back to tuples."""
        data = dict(data)
        version = int(data.get("version", SNAPSHOT_VERSION))
        if version != SNAPSHOT_VERSION:
            raise SimulationError(
                f"snapshot version {version} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        for key in ("counts", "uniforms", "raws", "pair_buffer", "accepts"):
            data[key] = tuple(data.get(key) or ())
        for key in ("agent_states", "thinned", "acceptance_estimates"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)


def check_snapshot(
    snapshot: EngineSnapshot, kind: str, num_states: int, num_agents: int
) -> None:
    """Validate a snapshot against the engine about to adopt it."""
    if snapshot.kind != kind:
        raise SimulationError(
            f"snapshot of a {snapshot.kind!r} engine cannot restore a "
            f"{kind!r} engine"
        )
    if snapshot.num_states != num_states:
        raise SimulationError(
            f"snapshot has {snapshot.num_states} states, "
            f"engine has {num_states}"
        )
    if snapshot.num_agents != num_agents:
        raise SimulationError(
            f"snapshot has {snapshot.num_agents} agents, "
            f"engine has {num_agents}"
        )
    if len(snapshot.counts) != num_states:
        raise SimulationError(
            f"snapshot counts cover {len(snapshot.counts)} states, "
            f"engine has {num_states}"
        )
    if any(c < 0 for c in snapshot.counts):
        raise SimulationError("snapshot has negative counts")
    if sum(snapshot.counts) != num_agents:
        raise SimulationError(
            f"snapshot counts sum to {sum(snapshot.counts)}, "
            f"engine has {num_agents} agents"
        )
    if not snapshot.rng_state:
        raise SimulationError("snapshot carries no generator state")


def restore_rng(rng: np.random.Generator, state: Dict) -> None:
    """Install a captured bit-generator state into a live generator."""
    expected = type(rng.bit_generator).__name__
    name = state.get("bit_generator")
    if name != expected:
        raise SimulationError(
            f"snapshot generator is {name!r}, engine uses {expected!r}"
        )
    rng.bit_generator.state = copy.deepcopy(state)


def capture_rng(rng: np.random.Generator) -> Dict:
    """Deep copy of the generator's exact bit-generator state."""
    return copy.deepcopy(rng.bit_generator.state)


def resume_engine(protocol, snapshot: EngineSnapshot, scheduler=None):
    """Build a fresh engine of ``snapshot.kind`` and restore it.

    The engine class is chosen by the snapshot's ``kind`` tag directly
    — **not** re-routed through the acceptance heuristics of
    :func:`~repro.core.scheduler.try_weighted_engine`, whose decision
    depends on the configuration and could diverge mid-run.  Scheduled,
    agent, and weighted kinds need the original ``scheduler`` (or epoch
    timeline) object back; it is deliberately not serialised in the
    snapshot, which stays plain data.
    """
    # Local imports: snapshot.py sits below the engine modules.
    from .configuration import Configuration
    from .jump import JumpEngine
    from .scheduler import (
        AgentScheduledEngine,
        ScheduledEngine,
        WeightedScheduledEngine,
    )
    from .sequential import SequentialEngine

    if snapshot.kind not in _KINDS:
        raise SimulationError(
            f"unknown snapshot kind {snapshot.kind!r}; "
            f"expected one of {_KINDS}"
        )
    if protocol.num_states != snapshot.num_states:
        raise SimulationError(
            f"protocol has {protocol.num_states} states, "
            f"snapshot has {snapshot.num_states}"
        )
    if protocol.num_agents != snapshot.num_agents:
        raise SimulationError(
            f"protocol has {protocol.num_agents} agents, "
            f"snapshot has {snapshot.num_agents}"
        )
    configuration = Configuration(list(snapshot.counts))
    # Throwaway stream: restore() installs the captured state.  Routed
    # through make_rng so the numpy-free fallback generator works too.
    from .engine import make_rng

    rng = make_rng(0)
    if snapshot.kind == "jump":
        engine = JumpEngine(protocol, configuration, rng)
    elif snapshot.kind == "sequential":
        engine = SequentialEngine(protocol, configuration, rng)
    elif snapshot.kind == "batch":
        from .batch import BatchEngine

        engine = BatchEngine(protocol, configuration, rng)
    else:
        if scheduler is None:
            raise SimulationError(
                f"restoring a {snapshot.kind!r} engine needs the original "
                "scheduler (it is not part of the snapshot)"
            )
        if snapshot.kind == "scheduled":
            engine = ScheduledEngine(
                protocol, configuration, rng, scheduler,
                start_epoch=snapshot.epoch,
            )
        elif snapshot.kind == "agent":
            engine = AgentScheduledEngine(
                protocol, configuration, rng, scheduler
            )
        else:  # weighted
            engine = WeightedScheduledEngine(
                protocol, configuration, rng, scheduler,
                start_epoch=snapshot.epoch,
            )
    engine.restore(snapshot)
    return engine
