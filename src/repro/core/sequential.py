"""Naive per-interaction simulation of the random pairwise scheduler.

Every scheduler step draws an ordered pair of distinct agents uniformly
at random and applies the transition function.  This is the literal
model from the paper, simulated without any shortcut.  It is
``O(interactions)`` and therefore only suitable for small populations —
its purpose is to cross-validate the :class:`~repro.core.jump.JumpEngine`
(same interface, same result shape) and to serve as an obviously-correct
reference in tests.

Agent identities are explicit here (a state per agent), which also makes
this engine the natural place for agent-level observations in examples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .protocol import PopulationProtocol
from .snapshot import (
    EngineSnapshot,
    capture_rng,
    check_snapshot,
    restore_rng,
)

__all__ = ["SequentialEngine"]

_PAIR_BATCH = 4096


class SequentialEngine:
    """Drives one protocol run, one interaction at a time."""

    #: Snapshot tag — subclasses (the rejection engines) override it.
    snapshot_kind = "sequential"

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        instrumentation=None,
    ) -> None:
        protocol.validate_configuration(configuration)
        self._protocol = protocol
        self._rng = rng
        # Optional telemetry bag (see repro.obs); counters are flushed
        # per run from batch arithmetic, never per step.
        self._instr = instrumentation
        self._pair_batches = 0
        self.counts: List[int] = configuration.counts_list()
        # Explicit agent array: agent i holds state agent_states[i].
        self.agent_states: List[int] = []
        for state, count in enumerate(self.counts):
            self.agent_states.extend([state] * count)
        self._n = protocol.num_agents
        self._families = protocol.build_families(self.counts)
        self._weight = sum(family.weight for family in self._families)
        self._state_families = self._compile_state_families()
        self.interactions = 0
        self.events = 0
        self._pair_buffer: List[Tuple[int, int]] = []
        self._pair_pos = 0

    def _compile_state_families(self):
        """Per-state tuple of the families whose weight the state touches.

        Count-change notifications then skip families structurally
        indifferent to a state (e.g. the reset line for rank moves)
        instead of asking every family every time.
        """
        by_state = [[] for _ in range(self._protocol.num_states)]
        for family in self._families:
            for state in family.states():
                by_state[state].append(family)
        return [tuple(families) for families in by_state]

    def _next_pair(self) -> tuple:
        """Uniform ordered pair of distinct agent indices.

        Buffered as plain int tuples — the same code serves numpy
        generators (whose ``integers`` returns arrays) and the
        pure-Python fallback generator (which returns lists), keeping
        this the engine that runs when numpy is absent.
        """
        if self._pair_pos >= len(self._pair_buffer):
            first = self._rng.integers(0, self._n, size=_PAIR_BATCH)
            second = self._rng.integers(0, self._n - 1, size=_PAIR_BATCH)
            self._pair_buffer = [
                (int(a), int(b + (b >= a))) for a, b in zip(first, second)
            ]
            self._pair_pos = 0
            self._pair_batches += 1
        a, b = self._pair_buffer[self._pair_pos]
        self._pair_pos += 1
        return a, b

    @property
    def productive_weight(self) -> int:
        """Current number of productive ordered pairs ``W`` (cached)."""
        return self._weight

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self._weight == 0

    def _move_agent(self, agent: int, new_state: int) -> None:
        old_state = self.agent_states[agent]
        if old_state == new_state:
            return
        self.agent_states[agent] = new_state
        delta_w = 0
        state_families = self._state_families
        for state, old, new in (
            (old_state, self.counts[old_state], self.counts[old_state] - 1),
            (new_state, self.counts[new_state], self.counts[new_state] + 1),
        ):
            self.counts[state] = new
            for family in state_families[state]:
                delta_w += family.on_count_change(state, old, new)
        self._weight += delta_w

    def reset_configuration(self, configuration) -> None:
        """Adopt an externally mutated configuration mid-run.

        Fault-injection seam mirroring
        :meth:`repro.core.jump.JumpEngine.reset_configuration`: counts,
        agent array, families, and the cached weight are rebuilt; the
        counters and the generator stream are preserved.  The population
        size and state space must not change.
        """
        counts = (
            configuration.counts_list()
            if isinstance(configuration, Configuration)
            else [int(c) for c in configuration]
        )
        if len(counts) != self._protocol.num_states:
            raise SimulationError(
                f"reset configuration has {len(counts)} states, "
                f"engine has {self._protocol.num_states}"
            )
        if any(c < 0 for c in counts):
            raise SimulationError("reset configuration has negative counts")
        if sum(counts) != self._n:
            raise SimulationError(
                f"reset configuration has {sum(counts)} agents, "
                f"engine has {self._n}"
            )
        self.counts = counts
        self.agent_states = []
        for state, count in enumerate(counts):
            self.agent_states.extend([state] * count)
        self._families = self._protocol.build_families(counts)
        self._weight = sum(family.weight for family in self._families)
        self._state_families = self._compile_state_families()
        if self._instr is not None:
            self._instr.add("resyncs")
            self._instr.mark(
                "resync", events=self.events, interactions=self.interactions
            )

    def _snapshot_fields(self) -> dict:
        """Subclass hook: extra plain-data fields for :meth:`snapshot`."""
        return {}

    def _restore_fields(self, snapshot: EngineSnapshot) -> None:
        """Subclass hook: adopt the extra fields captured above."""

    def snapshot(self) -> EngineSnapshot:
        """Plain-data checkpoint for bit-exact resumption.

        The explicit agent array *is* the engine's dynamical state (no
        compiled sampler to canonicalise), so a sequential snapshot is
        always state-preserving: the unconsumed pair draws and the
        exact generator state travel along, and the restored engine
        continues identically to the uninterrupted one.
        """
        if self._instr is not None:
            self._instr.add("snapshots")
            self._instr.mark(
                "snapshot", events=self.events, interactions=self.interactions
            )
        return EngineSnapshot(
            kind=self.snapshot_kind,
            num_states=self._protocol.num_states,
            num_agents=self._n,
            counts=tuple(self.counts),
            interactions=self.interactions,
            events=self.events,
            rng_state=capture_rng(self._rng),
            agent_states=tuple(self.agent_states),
            pair_buffer=tuple(
                v
                for row in self._pair_buffer[self._pair_pos:]
                for v in row
            ),
            **self._snapshot_fields(),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Adopt a snapshot in place; continues bit-for-bit.

        Families are rebuilt from the restored counts (a deterministic,
        count-pure construction — the ``reset_configuration`` seam),
        never serialised.
        """
        check_snapshot(
            snapshot, self.snapshot_kind, self._protocol.num_states, self._n
        )
        if snapshot.agent_states is None:
            raise SimulationError(
                "sequential snapshot carries no agent states"
            )
        counts = [int(c) for c in snapshot.counts]
        agent_states = [int(s) for s in snapshot.agent_states]
        tally = [0] * self._protocol.num_states
        for state in agent_states:
            tally[state] += 1
        if tally != counts:
            raise SimulationError(
                "snapshot agent states disagree with its counts"
            )
        self.counts = counts
        self.agent_states = agent_states
        self._families = self._protocol.build_families(counts)
        self._weight = sum(family.weight for family in self._families)
        self._state_families = self._compile_state_families()
        self.interactions = snapshot.interactions
        self.events = snapshot.events
        restore_rng(self._rng, snapshot.rng_state)
        flat = [int(v) for v in snapshot.pair_buffer]
        self._pair_buffer = list(zip(flat[0::2], flat[1::2]))
        self._pair_pos = 0
        self._restore_fields(snapshot)
        if self._instr is not None:
            self._instr.add("restores")
            self._instr.mark(
                "restore", events=self.events, interactions=self.interactions
            )

    def step(self) -> Optional[Event]:
        """One scheduler step; returns the event if it was productive."""
        initiator, responder = self._next_pair()
        self.interactions += 1
        si = self.agent_states[initiator]
        sj = self.agent_states[responder]
        out = self._protocol.delta(si, sj)
        if out is None:
            return None
        ti, tj = out
        self._move_agent(initiator, ti)
        self._move_agent(responder, tj)
        self.events += 1
        return Event(self.interactions, si, sj, ti, tj)

    def _run_loop(
        self,
        max_interactions: Optional[int],
        recorder: Optional[Recorder],
        max_events: Optional[int],
    ) -> bool:
        """The budgeted step loop, without the recorder start/finish hooks.

        Factored out so subclasses driving several segments per run (the
        epoch-switching rejection engine) can reuse it without firing
        ``on_start``/``on_finish`` once per segment.
        """
        while True:
            if self.is_silent():
                return True
            if max_interactions is not None and self.interactions >= max_interactions:
                return False
            if max_events is not None and self.events >= max_events:
                return False
            event = self.step()
            if event is not None and recorder is not None:
                recorder.on_event(event, self.counts)

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent."""
        if recorder is not None:
            recorder.on_start(self.counts)
        events0 = self.events
        interactions0 = self.interactions
        batches0 = self._pair_batches
        avail0 = len(self._pair_buffer) - self._pair_pos
        silent = self._run_loop(max_interactions, recorder, max_events)
        if self._instr is not None:
            avail = len(self._pair_buffer) - self._pair_pos
            self._instr.add_counters(
                events=self.events - events0,
                interactions=self.interactions - interactions0,
                pair_draws=(
                    (self._pair_batches - batches0) * _PAIR_BATCH
                    + avail0 - avail
                ),
            )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent

    def configuration(self) -> Configuration:
        """Snapshot of the current configuration."""
        return Configuration(self.counts)
