"""Configurations of agent states.

A *configuration* in the population protocol model is a multiset of
states: it records, for each state of the protocol's state space, how
many (anonymous, indistinguishable) agents currently hold it.  The class
below is the user-facing value type; the simulation engines operate on a
plain list of counts internally and wrap it back into a
:class:`Configuration` at the end of a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro._deps import np

from ..exceptions import ConfigurationError

__all__ = ["Configuration"]


class Configuration:
    """Immutable-by-convention multiset of agent states.

    Parameters
    ----------
    counts:
        ``counts[s]`` is the number of agents in state ``s``.  The length
        of the sequence fixes the number of states.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Sequence[int]) -> None:
        values = [int(c) for c in counts]
        for state, count in enumerate(values):
            if count < 0:
                raise ConfigurationError(
                    f"state {state} has negative count {count}"
                )
        self._counts = values

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_agents(cls, states: Iterable[int], num_states: int) -> "Configuration":
        """Build a configuration from one state per agent."""
        counts = [0] * num_states
        for state in states:
            if not 0 <= state < num_states:
                raise ConfigurationError(
                    f"agent state {state} outside [0, {num_states})"
                )
            counts[state] += 1
        return cls(counts)

    @classmethod
    def all_in_state(cls, state: int, num_agents: int, num_states: int) -> "Configuration":
        """Every agent in a single state — a canonical adversarial start."""
        if not 0 <= state < num_states:
            raise ConfigurationError(f"state {state} outside [0, {num_states})")
        counts = [0] * num_states
        counts[state] = num_agents
        return cls(counts)

    @classmethod
    def one_per_state(cls, num_states: int) -> "Configuration":
        """One agent in every state — the solved/silent ranking layout."""
        return cls([1] * num_states)

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Size of the state space."""
        return len(self._counts)

    @property
    def num_agents(self) -> int:
        """Total number of agents (multiset cardinality)."""
        return sum(self._counts)

    def count(self, state: int) -> int:
        """Number of agents currently in ``state``."""
        return self._counts[state]

    def counts_list(self) -> List[int]:
        """A *copy* of the counts as a plain list (engine entry point)."""
        return list(self._counts)

    def counts_array(self) -> np.ndarray:
        """A *copy* of the counts as an ``int64`` numpy array."""
        return np.asarray(self._counts, dtype=np.int64)

    def as_tuple(self) -> Tuple[int, ...]:
        """Hashable snapshot of the counts."""
        return tuple(self._counts)

    # ------------------------------------------------------------------
    # Multiset queries used throughout the protocols and tests
    # ------------------------------------------------------------------
    def occupied_states(self) -> List[int]:
        """States holding at least one agent."""
        return [s for s, c in enumerate(self._counts) if c > 0]

    def unoccupied_states(self) -> List[int]:
        """States holding no agent."""
        return [s for s, c in enumerate(self._counts) if c == 0]

    def overloaded_states(self) -> List[int]:
        """States holding two or more agents."""
        return [s for s, c in enumerate(self._counts) if c >= 2]

    def support_size(self) -> int:
        """Number of distinct occupied states."""
        return sum(1 for c in self._counts if c > 0)

    def missing_within(self, states: Iterable[int]) -> List[int]:
        """Subset of ``states`` that are unoccupied."""
        return [s for s in states if self._counts[s] == 0]

    def restricted_to(self, states: Iterable[int]) -> Dict[int, int]:
        """Mapping ``state -> count`` over the given subset, occupied only."""
        return {s: self._counts[s] for s in states if self._counts[s] > 0}

    def agents_within(self, states: Iterable[int]) -> int:
        """Total number of agents across the given subset of states."""
        return sum(self._counts[s] for s in states)

    def is_ranked(self, num_ranks: int) -> bool:
        """True iff ranks ``0..num_ranks-1`` hold exactly one agent each
        and every other state is empty."""
        counts = self._counts
        if any(counts[s] != 1 for s in range(num_ranks)):
            return False
        return all(c == 0 for c in counts[num_ranks:])

    # ------------------------------------------------------------------
    # Functional updates (configurations are treated as values)
    # ------------------------------------------------------------------
    def with_move(self, src: int, dst: int, agents: int = 1) -> "Configuration":
        """A new configuration with ``agents`` agents moved ``src → dst``."""
        if self._counts[src] < agents:
            raise ConfigurationError(
                f"cannot move {agents} agents out of state {src} "
                f"holding {self._counts[src]}"
            )
        counts = list(self._counts)
        counts[src] -= agents
        counts[dst] += agents
        return Configuration(counts)

    def copy(self) -> "Configuration":
        """Independent copy."""
        return Configuration(self._counts)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(tuple(self._counts))

    def __repr__(self) -> str:
        occupied = {s: c for s, c in enumerate(self._counts) if c > 0}
        if len(occupied) > 12:
            head = dict(list(occupied.items())[:12])
            body = f"{head} ... ({len(occupied)} occupied)"
        else:
            body = repr(occupied)
        return (
            f"Configuration(agents={self.num_agents}, "
            f"states={self.num_states}, occupied={body})"
        )
