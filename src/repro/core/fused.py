"""Fused cross-family sampler: one compiled weight index per protocol.

The jump engine's general loop used to dispatch every productive event
across the protocol's :mod:`~repro.core.families` — re-walking the
family list to locate the sampled pair, then notifying *every* family of
*every* count change.  For the multi-family protocols (the §4 line and
§5 tree constructions, the whole point of the paper) that dispatch, plus
``TriangularLine``'s per-change recompute, dominated the hot path.

:class:`FusedIndex` compiles the families once into a single flat
integer weight index:

* every same-state rule gets its **own slot** (weight ``c(c−1)``), so a
  single weighted ``find`` yields the pair directly;
* each :class:`~repro.core.families.OrderedProduct` family collapses to
  **one slot** of weight ``A·B`` (the side sums), with the two side
  draws decoded from the *residual* find target — no extra randomness;
* each :class:`~repro.core.families.TriangularLine` family collapses to
  **one slot** whose weight follows from the count moments ``S``/``Q``
  in O(1) per change;
* unknown :class:`~repro.core.families.Family` subclasses keep working
  through an opaque one-slot adapter.

Composite slots (product / triangular / opaque) are laid out *first*,
so the engine's hot loop resolves the overwhelmingly common draws (the
reset line during a §5 reset storm) with a couple of comparisons before
falling back to the Fenwick walk over the same-state block.  Side
Fenwick trees are padded to powers of two so their top node *is* the
side total — updates become bare add-delta walks with no bookkeeping.

Per-state **update plans** are precompiled from the families' membership
(:meth:`~repro.core.families.Family.states`), and whole transitions
compile to straight-line programs (:meth:`FusedIndex.compile_transition`)
that the engine's fast loop executes without any per-event family
dispatch.  All weights stay exact Python integers.

**Hybrid proposal/Fenwick sampling.**  Same-state slots are further
split into two pools.  Slots whose counts sit near the current maximum
are *proposal-mode*: their combined mass lives in one pseudo-slot
(:class:`_ProposalPool`) sampled by O(1) agent-proposal rejection — draw
a uniform agent of the pool, accept against a per-pool count bound
``m̂`` — and updated in O(1) per count change with no Fenwick writes at
all.  The remaining *tree-mode* slots keep the Fenwick walk, which
stays cheap as their mass drains toward silence.  The pseudo-slot sits
in the composite block, so the index's one residual draw routes to the
right regime with a single comparison.  Any partition is exact (the
rejection draw realises ``c(c−1)/W_pool`` within the pool, and the
top-level split weights the pools exactly); classification only moves
constants, and is re-evaluated cheaply on :meth:`FusedIndex.resync` and
by the engines' periodic :meth:`FusedIndex.reclassify` calls.

:class:`WeightedFusedIndex` extends the same machinery to *biased* pair
schedulers: every slot weight is scaled by the scheduler's pair weight,
kept exact as a dyadic rational numerator (denominator ``2⁵³`` — the
resolution of the rejection engine's float acceptance test, so both
engines realise the *identical* step distribution).  See
:mod:`repro.core.scheduler` for the engine built on top of it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from .families import Family, OrderedProduct, SameStatePairs, TriangularLine
from .fenwick import FenwickTree, fill_tree

__all__ = [
    "FusedIndex",
    "WeightedFusedIndex",
    "WeightedIndexUnsupported",
    "WEIGHT_DENOMINATOR",
    "dyadic_weight_numerator",
]


class WeightedIndexUnsupported(SimulationError):
    """The weighted fused index cannot realise this scheduler exactly.

    Raised during compilation (custom family types, underivable state
    classes, too many classes).  Callers fall back to the rejection
    engine, which handles any scheduler.
    """

# Slot kinds (also the dispatch codes burned into compiled programs).
SAME, PRODUCT, TRIANGULAR, OPAQUE = 0, 1, 2, 3
# Step code for per-position weighted line slots (weighted index only).
_WEIGHTED_LINE = 4
# Slot kind of a proposal-pool pseudo-slot (hybrid same-state sampling).
PROPOSAL = 5

#: Relative cost of serving one unit of same-state mass through the
#: Fenwick walk versus one O(1) proposal — the constant in the window
#: classifier's cost model (a find plus its update walks run a few
#: dozen list ops, a proposal roughly a dozen).
_POOL_TREE_COST_RATIO = 4
#: Windows whose expected proposals per draw exceed this are never
#: selected, so the classifier cannot install a partition that the
#: engines' acceptance trigger would immediately tear down.
_POOL_MAX_PROPOSALS = 16

#: Acceptance thresholds in the rejection engine are 53-bit uniforms
#: (``k·2⁻⁵³``), so every float pair weight acts with effective
#: probability ``ceil(w·2⁵³)/2⁵³``.  Scaling slot weights by the same
#: dyadic numerators makes the weighted index *exactly* equivalent.
WEIGHT_DENOMINATOR = 1 << 53


def dyadic_weight_numerator(weight: float) -> int:
    """``ceil(weight · 2⁵³)`` computed exactly (no float rounding).

    This is the number of 53-bit uniform thresholds a rejection test
    with probability ``weight`` accepts — the exact effective weight of
    the pair under the rejection engine.
    """
    if not 0.0 < weight <= 1.0:
        raise SimulationError(
            f"scheduler pair weight {weight} outside (0, 1]"
        )
    scaled = Fraction(weight) * WEIGHT_DENOMINATOR
    return -(-scaled.numerator // scaled.denominator)


def _padded_tree(values: Sequence[int]) -> Tuple[List[int], int]:
    """Fenwick array padded to a power-of-two size.

    With ``size`` a power of two, ``tree[size]`` is the total weight, so
    callers need no separate total bookkeeping; updates are bare
    add-delta walks.
    """
    values = list(values)
    size = 1
    while size < len(values):
        size <<= 1
    tree = [0] * (size + 1)
    fill_tree(tree, size, values)
    return tree, size


def _tree_find(tree: List[int], size: int, target: int) -> int:
    """Weighted-draw slot of a padded Fenwick array (``size`` = pow2)."""
    pos = 0
    bit = size
    while bit:
        nxt = pos + bit
        if nxt <= size:
            below = tree[nxt]
            if below <= target:
                target -= below
                pos = nxt
        bit >>= 1
    return pos


class _ProposalPool:
    """Proposal-mode same-state slots, sampled by O(1) agent rejection.

    The pool owns an explicit agent array over its *member* states
    (agents are exchangeable, so any assignment consistent with the
    counts realises the exact law): ``agents[p]`` is the state of the
    agent at flat position ``p``, ``positions[s]`` lists the flat
    positions currently holding state ``s`` (``None`` marks a candidate
    state that is tree-mode right now), and ``where[p]`` is ``p``'s
    index inside its state's position list — the indexed-multiset trick
    that makes both insertion and swap-removal O(1).

    Sampling: one draw ``v`` uniform on ``[0, N·m̂)`` fuses the agent
    proposal with its acceptance test (``p = v // m̂`` is a uniform
    pool agent, ``v % m̂`` an independent uniform threshold), so state
    ``s`` is returned with probability exactly ``c_s(c_s−1)/(N·m̂)``
    per attempt — proportional to its slot weight.  ``m̂`` only ever
    grows between reclassifications (set on every count increase), so
    the bound ``m̂ >= c_s`` can never be violated mid-run.

    ``weight`` is the raw pooled mass ``Σ c(c−1)``; the owning index
    scales it by ``factor`` (1 for the uniform index, the scheduler's
    dyadic diagonal numerator for a weighted class group) when writing
    the pseudo-slot value.
    """

    __slots__ = ("slot", "factor", "states", "positions", "agents",
                 "where", "weight", "mhat", "lo", "hi")

    def __init__(
        self,
        num_states: int,
        candidate_states: Sequence[int],
        factor: int = 1,
    ) -> None:
        self.slot = -1  # pseudo-slot id, assigned by the owning index
        self.factor = factor
        self.states = list(candidate_states)
        self.positions: List[Optional[List[int]]] = [None] * num_states
        self.agents: List[int] = []
        self.where: List[int] = []
        self.weight = 0
        self.mhat = 1
        self.lo = 2
        self.hi = 0

    def classify(self, counts: Sequence[int]) -> None:
        """(Re)partition candidate states by count, in place.

        Members are the count *window* ``[lo, hi]`` minimising the cost
        model ``hi·Σc + R·(T − Σc(c−1))``: the first term is the
        expected proposal work of serving the pooled mass (``hi`` is
        the acceptance bound ``m̂``, ``Σc`` the proposal targets), the
        second the Fenwick work for whatever is left tree-mode (``T``
        the total same-state mass, ``R`` the relative walk cost).  A
        window (rather than a plain threshold) matters: one high-count
        outlier would otherwise inflate ``m̂`` for every small member,
        while the Fenwick walk serves a lone fat slot perfectly well.
        Counts drifting *into* the window after classification are
        migrated eagerly by the update paths (see ``lo``/``hi``);
        drifting out is harmless (drained members are expelled on the
        spot and overgrown ones only stretch ``m̂``) until the next
        reclassification re-balances.  The agent array is rebuilt via
        in-place list mutation so hot loops holding references stay
        valid.
        """
        positions = self.positions
        agents = self.agents
        # Histogram of candidate counts (counts >= 2 carry weight).
        by_count: Dict[int, List[int]] = {}
        for state in self.states:
            count = counts[state]
            if count >= 2:
                by_count.setdefault(count, []).append(state)
            else:
                positions[state] = None
        del agents[:]
        del self.where[:]
        window = None
        if by_count:
            distinct = sorted(by_count)
            pair_mass = [
                len(by_count[c]) * c * (c - 1) for c in distinct
            ]
            agent_mass = [len(by_count[c]) * c for c in distinct]
            total_pairs = sum(pair_mass)
            best = _POOL_TREE_COST_RATIO * total_pairs  # empty pool
            # O(distinct²) window search — distinct counts are few (the
            # profile at any moment clusters around a handful of
            # values), and reclassification is off the per-event path.
            for hi_idx in range(len(distinct) - 1, -1, -1):
                hi = distinct[hi_idx]
                pairs = 0
                members = 0
                for lo_idx in range(hi_idx, -1, -1):
                    pairs += pair_mass[lo_idx]
                    members += agent_mass[lo_idx]
                    if hi * members > _POOL_MAX_PROPOSALS * pairs:
                        break
                    cost = (
                        hi * members
                        + _POOL_TREE_COST_RATIO * (total_pairs - pairs)
                    )
                    if cost < best:
                        best = cost
                        window = (distinct[lo_idx], hi)
        weight = 0
        if window is not None:
            lo, hi = window
            for count, bucket in by_count.items():
                if not lo <= count <= hi:
                    for state in bucket:
                        positions[state] = None
                    continue
                for state in bucket:
                    base = len(agents)
                    positions[state] = list(range(base, base + count))
                    agents.extend([state] * count)
                    self.where.extend(range(count))
                weight += len(bucket) * count * (count - 1)
            self.lo, self.hi = lo, hi
            self.mhat = hi
        else:
            for bucket in by_count.values():
                for state in bucket:
                    positions[state] = None
            self.lo, self.hi = 2, 0  # empty window: nothing migrates in
            self.mhat = 1
        self.weight = weight

    def count_change(self, state: int, old: int, new: int) -> Optional[int]:
        """Adopt a member state's new count; returns the raw weight delta.

        Returns ``None`` when ``state`` is tree-mode (caller falls back
        to the Fenwick update).  Members draining below a pair are
        expelled on the spot — a weightless member only dilutes the
        proposal acceptance, and with eager expulsion the pool never
        accumulates drag between reclassifications.
        """
        plist = self.positions[state]
        if plist is None:
            return None
        agents = self.agents
        where = self.where
        if new > old:
            for _ in range(new - old):
                pos = len(agents)
                where.append(len(plist))
                plist.append(pos)
                agents.append(state)
            if new > self.mhat:
                self.mhat = new
        else:
            removals = old - new if new >= 2 else old
            for _ in range(removals):
                pos = plist.pop()
                last = len(agents) - 1
                if pos != last:
                    moved = agents[last]
                    moved_where = where[last]
                    agents[pos] = moved
                    where[pos] = moved_where
                    self.positions[moved][moved_where] = pos
                agents.pop()
                where.pop()
            if new < 2:
                self.positions[state] = None
        delta = new * (new - 1) - old * (old - 1)
        self.weight += delta
        return delta

    def migrate_in(self, state: int, count: int) -> int:
        """Adopt a tree-mode state whose count drifted into the window.

        Returns the raw weight gained by the pool; the caller zeroes the
        state's Fenwick slot, so subsequent updates to this state are
        O(1) member moves instead of tree walks.
        """
        agents = self.agents
        base = len(agents)
        self.positions[state] = list(range(base, base + count))
        agents.extend([state] * count)
        self.where.extend(range(count))
        if count > self.mhat:
            self.mhat = count
        gained = count * (count - 1)
        self.weight += gained
        return gained

    def sample_state(self, rand_below) -> int:
        """One member state, drawn ∝ ``c(c−1)`` (callers ensure weight > 0)."""
        agents = self.agents
        positions = self.positions
        mhat = self.mhat
        bound = len(agents) * mhat
        while True:
            draw = rand_below(bound)
            state = agents[draw // mhat]
            if draw % mhat < len(positions[state]) - 1:
                return state


class _ProductSlot:
    """One fused slot for an ``OrderedProduct`` family (or class block).

    Weight is ``factor · A · B`` where ``A``/``B`` are the side totals,
    maintained as O(1) scalars.  ``factor`` is 1 for the uniform index
    and the scheduler's dyadic numerator otherwise.  The two private
    padded Fenwick arrays are needed only to *decode* a draw, so their
    maintenance is **gated**: while the opposite side's total is zero
    the slot cannot be sampled (weight 0), updates skip the tree walk
    and mark the side stale, and the first decode after reactivation
    rebuilds the stale side from the live counts — which turns the §4
    line's per-event routing-tree writes into no-ops for the whole
    X-empty drain toward silence.
    """

    __slots__ = ("initiators", "responders", "init_tree", "init_size",
                 "resp_tree", "resp_size", "init_total", "resp_total",
                 "stale", "counts", "factor")

    def __init__(
        self,
        counts: Sequence[int],
        initiators: Sequence[int],
        responders: Sequence[int],
        factor: int = 1,
    ) -> None:
        self.initiators = list(initiators)
        self.responders = list(responders)
        self.init_tree, self.init_size = _padded_tree(
            [counts[s] for s in self.initiators]
        )
        self.resp_tree, self.resp_size = _padded_tree(
            [counts[s] for s in self.responders]
        )
        self.init_total = self.init_tree[self.init_size]
        self.resp_total = self.resp_tree[self.resp_size]
        self.stale = 0  # bit 1: init tree stale, bit 2: resp tree stale
        self.counts = counts  # live engine counts (re-captured on resync)
        self.factor = factor

    def weight(self) -> int:
        return self.factor * self.init_total * self.resp_total

    def add(self, side: int, pos: int, delta: int) -> None:
        """Add a count delta on one side (generic update path)."""
        if side == OrderedProduct.INITIATOR:
            self.init_total += delta
            if self.stale & 1 or self.resp_total == 0:
                self.stale |= 1
                return
            tree, size = self.init_tree, self.init_size
        else:
            self.resp_total += delta
            if self.stale & 2 or self.init_total == 0:
                self.stale |= 2
                return
            tree, size = self.resp_tree, self.resp_size
        node = pos + 1
        while node <= size:
            tree[node] += delta
            node += node & -node

    def sample_stale(self, bound: int, rand_below) -> Tuple[int, int]:
        """Decode a draw while some side tree is stale, without rebuilding.

        Each stale side is sampled by rejection against ``bound`` (any
        upper bound on every state count): propose a uniform side state,
        accept with probability ``count/bound`` — exactly proportional
        to the counts, which is all the tree find realises.  In the
        steady gated cycle (a line drain whose X excursions reactivate
        the slot for one event at a time) this replaces an O(side)
        rebuild per excursion with a handful of O(1) proposals.  When
        the count profile is too skewed for rejection (a reset storm
        piling agents onto a few states) the escape hatch rebuilds the
        trees once and the eager walks keep them live from then on.
        A clean side keeps the ordinary tree find (fresh randomness is
        fine: the two side draws just need to be independent and
        count-proportional).
        """
        counts = self.counts
        pair = []
        for states, stale_bit, tree, size in (
            (self.initiators, 1, self.init_tree, self.init_size),
            (self.responders, 2, self.resp_tree, self.resp_size),
        ):
            if len(states) == 1:
                pair.append(states[0])
                continue
            if self.stale & stale_bit:
                span = len(states) * bound
                proposals = 0
                choice = -1
                while True:
                    draw = rand_below(span)
                    state = states[draw // bound]
                    if draw % bound < counts[state]:
                        choice = state
                        break
                    proposals += 1
                    if proposals > 64:
                        # Rejection sampling is memoryless: abandoning
                        # it for an exact tree draw is still exact.
                        self.rebuild_stale()
                        break
                if choice >= 0:
                    pair.append(choice)
                    continue
            total = tree[size]
            pair.append(states[_tree_find(tree, size, rand_below(total))])
        return pair[0], pair[1]

    def rebuild_stale(self) -> None:
        """Refill stale side trees from the live counts (decode guard)."""
        counts = self.counts
        if self.stale & 1:
            fill_tree(
                self.init_tree, self.init_size,
                [counts[s] for s in self.initiators],
            )
        if self.stale & 2:
            fill_tree(
                self.resp_tree, self.resp_size,
                [counts[s] for s in self.responders],
            )
        self.stale = 0

    def resync(self, counts: Sequence[int]) -> None:
        """Reload both side trees from a counts list, in place.

        Compiled transition programs hold direct references to the tree
        lists, so a resync must refill rather than replace them.  The
        counts reference is re-captured — this is the seam through
        which engines adopt an externally supplied configuration.
        """
        self.counts = counts
        self.init_total = fill_tree(
            self.init_tree, self.init_size,
            [counts[s] for s in self.initiators],
        )
        self.resp_total = fill_tree(
            self.resp_tree, self.resp_size,
            [counts[s] for s in self.responders],
        )
        self.stale = 0

    def pair_from_target(self, target: int) -> Tuple[int, int]:
        """Decode both side draws from a residual target in ``[0, w)``.

        ``target`` uniform on ``[0, f·A·B)`` factors into independent
        uniforms for the two sides — an exact bijection, so no fresh
        randomness is needed.
        """
        if self.stale:
            self.rebuild_stale()
        span = self.factor * self.resp_total
        initiator = self.initiators[
            _tree_find(self.init_tree, self.init_size, target // span)
        ]
        responder = self.responders[
            _tree_find(
                self.resp_tree, self.resp_size, (target % span) // self.factor
            )
        ]
        return initiator, responder


class _TriangularSlot:
    """One fused slot for a ``TriangularLine`` family.

    Weight ``factor · [(Q − S) + (S² − Q)/2]`` from the running count
    moments ``S = Σc``, ``Q = Σc²`` — O(1) per count change, the fix for
    the old per-change O(len) recompute.  Only valid when the scheduler
    weight is constant across the line (always true for the uniform
    index); the weighted index falls back to per-position slots
    otherwise.
    """

    __slots__ = ("line", "counts", "s", "q", "factor")

    def __init__(
        self, counts: Sequence[int], line: Sequence[int], factor: int = 1
    ) -> None:
        self.line = list(line)
        self.counts = [counts[s] for s in self.line]
        self.s = sum(self.counts)
        self.q = sum(c * c for c in self.counts)
        self.factor = factor

    def weight(self) -> int:
        s, q = self.s, self.q
        return self.factor * ((q - s) + (s * s - q) // 2)

    def resync(self, counts: Sequence[int]) -> None:
        """Reload line counts and moments from a counts list, in place."""
        line_counts = self.counts
        for pos, state in enumerate(self.line):
            line_counts[pos] = counts[state]
        self.s = sum(line_counts)
        self.q = sum(c * c for c in line_counts)

    def pair_from_target(self, target: int) -> Tuple[int, int]:
        """Decode a line pair from a residual target in ``[0, w)``."""
        target //= self.factor
        counts = self.counts
        line = self.line
        suffix = self.s
        for i in range(len(counts)):
            c = counts[i]
            if c == 0:
                continue
            suffix -= c
            block = c * (c - 1 + suffix)
            if target < block:
                same = c * (c - 1)
                if target < same:
                    return line[i], line[i]
                j_target = (target - same) // c
                for j in range(i + 1, len(counts)):
                    if j_target < counts[j]:
                        return line[i], line[j]
                    j_target -= counts[j]
                raise SimulationError("fused triangular sample overflow")
            target -= block
        raise SimulationError("fused triangular sample out of range")


class FusedIndex:
    """Flat integer weight index over all productive pair slots.

    Built once per engine from ``protocol.build_families(counts)``; the
    families are only *read* during compilation — the index owns all
    mutable sampling state afterwards (the engine may let the family
    objects go stale).

    Layout: composite slots (product / triangular / opaque) occupy
    ``0..num_composite-1`` and live *outside* the Fenwick tree — their
    weights change on almost every event, the linear ``find`` pre-scan
    resolves them anyway, and keeping them out makes their per-event
    refresh an O(1) ``values[]`` write instead of a full tree walk.  The
    Fenwick tree covers only the same-state block (slot ``s`` maps to
    tree position ``s - num_composite``), whose per-slot weights change
    far less often than the composite aggregates.

    Attributes exposed for the engine's inlined hot loop: ``tree`` /
    ``values``, ``num_slots``, ``num_composite``, ``fenwick_size``
    (``num_slots - num_composite``), ``slot_kind``, ``slot_payload``,
    and ``total`` (the cached total weight ``W``).
    """

    __slots__ = ("num_slots", "num_composite", "fenwick_size", "tree",
                 "values", "total", "slot_kind", "slot_payload",
                 "state_steps", "pool", "_num_states")

    def __init__(
        self,
        families: Sequence[Family],
        num_states: int,
        counts: Sequence[int],
    ) -> None:
        self._num_states = num_states
        kinds: List[int] = []
        payloads: List[object] = []
        weights: List[int] = []
        steps: List[List[tuple]] = [[] for _ in range(num_states)]

        # Composite slots first: the hot loop short-circuits the find
        # for them, and a handful of comparisons resolves the draws that
        # dominate reset-heavy runs.
        same_state: List[SameStatePairs] = []
        for family in families:
            if type(family) is SameStatePairs:
                same_state.append(family)
            elif type(family) is OrderedProduct:
                slot = len(kinds)
                payload = _ProductSlot(
                    counts, family.initiators, family.responders
                )
                kinds.append(PRODUCT)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(payload.initiators):
                    steps[state].append(
                        (PRODUCT, payload.init_tree, pos + 1,
                         payload.init_size, slot, payload, True)
                    )
                for pos, state in enumerate(payload.responders):
                    steps[state].append(
                        (PRODUCT, payload.resp_tree, pos + 1,
                         payload.resp_size, slot, payload, False)
                    )
            elif type(family) is TriangularLine:
                slot = len(kinds)
                payload = _TriangularSlot(counts, family.line_states())
                kinds.append(TRIANGULAR)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(payload.line):
                    steps[state].append((TRIANGULAR, payload, pos, slot))
            else:
                # Opaque adapter: the family keeps maintaining its own
                # weight; the index mirrors it in one slot.
                slot = len(kinds)
                kinds.append(OPAQUE)
                payloads.append(family)
                weights.append(family.weight)
                for state in family.states():
                    steps[state].append((OPAQUE, family, slot))
        # Hybrid same-state sampling: one proposal-pool pseudo-slot at
        # the end of the composite block carries the pooled mass; the
        # per-state slots below hold only the tree-mode residue (value 0
        # while pooled — exact for any partition).
        rule_states = [
            state
            for family in same_state
            for state in family.rule_states()
        ]
        pool: Optional[_ProposalPool] = None
        if rule_states:
            pool = _ProposalPool(num_states, rule_states)
            pool.classify(counts)
            pool.slot = len(kinds)
            kinds.append(PROPOSAL)
            payloads.append(pool)
            weights.append(pool.weight)
        self.pool = pool
        num_composite = len(kinds)
        self.num_composite = num_composite
        pool_positions = pool.positions if pool is not None else None
        for family in same_state:
            for state in family.rule_states():
                slot = len(kinds)
                kinds.append(SAME)
                payloads.append(state)
                weights.append(
                    0 if pool_positions[state] is not None
                    else counts[state] * (counts[state] - 1)
                )
                # Third field: the slot's first Fenwick node (the tree
                # only spans the same-state block).
                steps[state].append((SAME, slot, slot - num_composite + 1))

        self.num_slots = len(kinds)
        self.fenwick_size = self.num_slots - num_composite
        self.slot_kind = kinds
        self.slot_payload = payloads
        self.values = weights
        fenwick = FenwickTree.from_values(weights[num_composite:])
        self.tree = fenwick._tree
        self.total = sum(weights[:num_composite]) + fenwick.total
        self.state_steps = [tuple(entries) for entries in steps]

    def layout(self) -> tuple:
        """Plain structural description of the slot layout.

        One hashable tuple per slot, count-independent — the structural
        skeleton the compiled index is built around.  The batch backend
        (:mod:`repro.core.batch`) compiles its weight bookkeeping from
        this export and uses it as the cross-run program-cache key, so
        both backends share one source of truth for how productive
        pairs decompose into slots:

        * ``("same", state)`` — one same-state rule slot;
        * ``("product", initiators, responders)`` — an ordered-product
          family slot (disjoint side tuples);
        * ``("triangular", line)`` — a triangular line family slot (the
          line in position order);
        * ``("proposal-pool", states)`` — the hybrid same-state pool
          pseudo-slot (candidate states);
        * ``("opaque", states)`` — an opaque family adapter.
        """
        slots = []
        for slot in range(self.num_slots):
            kind = self.slot_kind[slot]
            payload = self.slot_payload[slot]
            if kind == SAME:
                slots.append(("same", payload))
            elif kind == PRODUCT:
                slots.append(
                    (
                        "product",
                        tuple(payload.initiators),
                        tuple(payload.responders),
                    )
                )
            elif kind == TRIANGULAR:
                slots.append(("triangular", tuple(payload.line)))
            elif kind == PROPOSAL:
                slots.append(("proposal-pool", tuple(payload.states)))
            else:
                slots.append(("opaque", tuple(sorted(payload.states()))))
        return tuple(slots)

    # ------------------------------------------------------------------
    # Slot-level primitives
    # ------------------------------------------------------------------
    def _set(self, slot: int, weight: int) -> int:
        """Set one slot's weight; returns the delta applied."""
        values = self.values
        delta = weight - values[slot]
        if delta == 0:
            return 0
        values[slot] = weight
        self.total += delta
        num_composite = self.num_composite
        if slot >= num_composite:
            tree = self.tree
            node = slot - num_composite + 1
            size = self.fenwick_size
            while node <= size:
                tree[node] += delta
                node += node & -node
        return delta

    def find(self, target: int) -> Tuple[int, int]:
        """Slot hit by a weighted draw, plus the residual target.

        The handful of composite slots resolve with a linear scan; only
        draws landing in the same-state block walk the Fenwick tree.
        """
        if not 0 <= target < self.total:
            raise SimulationError(
                f"fused find target {target} outside [0, {self.total})"
            )
        values = self.values
        residual = target
        for slot in range(self.num_composite):
            value = values[slot]
            if residual < value:
                return slot, residual
            residual -= value
        tree = self.tree
        size = self.fenwick_size
        pos = 0
        bit = 1 << (size.bit_length() - 1) if size else 0
        while bit:
            nxt = pos + bit
            if nxt <= size:
                below = tree[nxt]
                if below <= residual:
                    residual -= below
                    pos = nxt
            bit >>= 1
        return pos + self.num_composite, residual

    def pair_from_slot(
        self, slot: int, residual: int, rand_below
    ) -> Tuple[int, int]:
        """Decode the sampled ordered state pair of one slot."""
        kind = self.slot_kind[slot]
        payload = self.slot_payload[slot]
        if kind == SAME:
            return payload, payload
        if kind == PROPOSAL:
            state = payload.sample_state(rand_below)
            return state, state
        if kind == PRODUCT or kind == TRIANGULAR:
            return payload.pair_from_target(residual)
        return payload.sample(rand_below)

    def sample(self, rand_below) -> Tuple[int, int]:
        """Draw a productive ordered state pair ∝ its slot weight."""
        slot, residual = self.find(rand_below(self.total))
        return self.pair_from_slot(slot, residual, rand_below)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def resync(self, counts: Sequence[int]) -> bool:
        """Reload every slot weight from a counts list, in place (O(n)).

        The slot layout, payload objects, and any compiled transition
        programs stay valid — only the weights move.  This is the
        fault-injection seam: adopting an externally mutated
        configuration costs one pass, with no program recompilation.
        Returns ``False`` when the index contains opaque family slots
        (their internal state cannot be resynced from counts — the
        caller must rebuild the index from fresh families instead).

        Resync is also the **canonicalisation seam** the checkpoint
        layer relies on: the proposal/Fenwick partition and product
        stale-flags it produces are a pure function of ``counts``
        (history-independent), so an engine that resyncs at a run
        boundary holds exactly the state a fresh engine (or one
        restored from an :class:`~repro.core.snapshot.EngineSnapshot`)
        would compile from the same counts.  That is what lets
        snapshots stay compiled-index-free while restores stay
        bit-exact.
        """
        kinds = self.slot_kind
        payloads = self.slot_payload
        if any(kinds[slot] == OPAQUE for slot in range(self.num_composite)):
            return False
        values = self.values
        pool = self.pool
        pool_positions = None
        total = 0
        for slot in range(self.num_composite):
            payload = payloads[slot]
            if kinds[slot] == PROPOSAL:
                # Resync doubles as reclassification: the new counts
                # decide which same-state slots are proposal-mode.
                payload.classify(counts)
                pool_positions = payload.positions
                weight = payload.weight
            else:
                payload.resync(counts)
                weight = payload.weight()
            values[slot] = weight
            total += weight
        for slot in range(self.num_composite, self.num_slots):
            state = payloads[slot]
            if pool_positions is not None and pool_positions[state] is not None:
                values[slot] = 0
            else:
                values[slot] = counts[state] * (counts[state] - 1)
        total += fill_tree(
            self.tree, self.fenwick_size, values[self.num_composite:]
        )
        self.total = total
        return True

    def reclassify(self, counts: Sequence[int]) -> None:
        """Re-partition same-state slots between the pools, in place.

        Periodically called by the engines' fast loops so the proposal
        pool tracks the drifting count profile (its members drain, new
        mass grows in tree-mode slots).  Moves weight between the pool
        pseudo-slot and the per-state Fenwick slots without changing
        :attr:`total` — classification is a constant-factor choice, the
        sampled distribution is identical for any partition.
        """
        pool = self.pool
        if pool is None:
            return
        pool.classify(counts)
        values = self.values
        values[pool.slot] = pool.weight
        positions = pool.positions
        payloads = self.slot_payload
        for slot in range(self.num_composite, self.num_slots):
            state = payloads[slot]
            if positions[state] is not None:
                values[slot] = 0
            else:
                values[slot] = counts[state] * (counts[state] - 1)
        fill_tree(self.tree, self.fenwick_size, values[self.num_composite:])

    def apply_count_change(self, state: int, old: int, new: int) -> int:
        """Route one count change to every structure touching ``state``.

        Returns the total-weight delta (also applied to :attr:`total`).
        This is the generic path used by ``step()`` and by protocols
        that opt out of transition compilation; hot loops execute the
        precompiled programs from :meth:`compile_transition` instead.
        """
        delta = new - old
        delta_w = 0
        pool = self.pool
        for step in self.state_steps[state]:
            kind = step[0]
            if kind == SAME:
                pooled = (
                    pool.count_change(state, old, new)
                    if pool is not None else None
                )
                if pooled is not None:
                    if pooled:
                        self.values[pool.slot] += pooled
                        self.total += pooled
                        delta_w += pooled
                elif pool is not None and pool.lo <= new <= pool.hi:
                    # Count drifted into the pool window: migrate now so
                    # further updates are O(1) member moves.
                    gained = pool.migrate_in(state, new)
                    self.values[pool.slot] += gained
                    self.total += gained
                    delta_w += gained + self._set(step[1], 0)
                else:
                    delta_w += self._set(step[1], new * (new - 1))
            elif kind == PRODUCT:
                tree, node, size, slot, payload = (
                    step[1], step[2], step[3], step[4], step[5]
                )
                if step[6]:
                    payload.init_total += delta
                    if payload.stale & 1 or payload.resp_total == 0:
                        payload.stale |= 1
                        node = size + 1  # gated: skip the walk
                else:
                    payload.resp_total += delta
                    if payload.stale & 2 or payload.init_total == 0:
                        payload.stale |= 2
                        node = size + 1  # gated: skip the walk
                while node <= size:
                    tree[node] += delta
                    node += node & -node
                delta_w += self._set(slot, payload.weight())
            elif kind == TRIANGULAR:
                payload, pos, slot = step[1], step[2], step[3]
                payload.counts[pos] = new
                payload.s += delta
                payload.q += new * new - old * old
                delta_w += self._set(slot, payload.weight())
            else:
                family, slot = step[1], step[2]
                family.on_count_change(state, old, new)
                delta_w += self._set(slot, family.weight)
        return delta_w

    def compile_transition(
        self, ops: Sequence[Tuple[int, int]], full: bool = True
    ) -> Tuple[Optional[tuple], Optional[tuple], Optional[tuple]]:
        """Compile one transition into a (prog, refresh, fast) triple.

        ``prog`` lists ``(state, delta, steps)`` with each state's
        precompiled update steps; ``refresh`` is the *deduplicated* set
        of composite slots whose fused weight must be recomputed once
        after all payload updates — so a transition touching three line
        states costs one slot refresh, not three.  Refresh entries are
        pre-resolved per kind:

        * triangular — ``(slot, TRIANGULAR, payload)``
        * product — ``(slot, PRODUCT, payload)`` (the weight is the
          product of the two maintained side totals)
        * opaque — ``(slot, OPAQUE, family)``

        ``fast`` is the transition's *same-state sprint* variant, or
        ``None`` when it has no such variant.  It exists for
        transitions touching only SAME and PRODUCT steps and compiles
        to ``(sops, prods, transfer)`` with ``sops = ((state, delta,
        slot, node), …)`` and ``prods = ((payload, net_init_delta,
        net_resp_delta), …)``.  The engine may execute it *only* while
        every listed product slot has ``net_resp_delta == 0`` and
        ``resp_total == 0``: the slot then weighs zero throughout, so
        the whole product update collapses to one stale-mark plus a
        scalar add, and the refresh pass disappears — which is what
        lets the §4 line's drain run at the same-state loop's
        O(1)-per-event pace.  ``transfer`` additionally pre-resolves
        the dominant −1/+1 shape (``(src, dst, src_slot, src_node,
        dst_slot, dst_node)``): one agent moves between two states, so
        when both are pool members the whole update is a single flat
        re-label instead of a removal plus an insertion.

        With ``full=False`` only ``fast`` is built (``prog``/``refresh``
        come back ``None``) — engines compile the sprint variant up
        front and fill in the general program lazily on the first draw
        whose guard fails, which keeps the per-pair compile cost off
        runs that never leave the sprint.
        """
        prog = None
        if full:
            prog = tuple(
                (state, delta, self.state_steps[state])
                for state, delta in ops
            )
        refresh: Dict[int, tuple] = {}
        fast_ok = True
        sops: List[tuple] = []
        prods: Dict[int, list] = {}
        for state, delta in ops:
            for step in self.state_steps[state]:
                kind = step[0]
                if kind == SAME:
                    sops.append((state, delta, step[1], step[2]))
                    continue
                if kind == PRODUCT:
                    slot, payload = step[4], step[5]
                    if full and slot not in refresh:
                        refresh[slot] = (slot, PRODUCT, payload)
                    entry = prods.setdefault(slot, [payload, 0, 0])
                    entry[1 if step[6] else 2] += delta
                elif kind == TRIANGULAR:
                    fast_ok = False
                    slot = step[3]
                    if full and slot not in refresh:
                        refresh[slot] = (slot, TRIANGULAR, step[1])
                else:
                    fast_ok = False
                    slot = step[2]
                    if full and slot not in refresh:
                        refresh[slot] = (slot, OPAQUE, step[1])
        fast = None
        if fast_ok:
            transfer = None
            if len(sops) == 2:
                deltas = (sops[0][1], sops[1][1])
                if deltas == (-1, 1):
                    src, dst = sops
                elif deltas == (1, -1):
                    dst, src = sops
                else:
                    src = None
                if src is not None:
                    transfer = (
                        src[0], dst[0], src[2], src[3], dst[2], dst[3]
                    )
            fast = (
                tuple(sops),
                tuple((p, di, dr) for p, di, dr in prods.values()),
                transfer,
            )
        return prog, tuple(refresh.values()) if full else None, fast


class WeightedFusedIndex:
    """Fused index with every slot scaled by a scheduler's pair weight.

    Exactness contract: pair weights enter as dyadic numerators
    (:func:`dyadic_weight_numerator`), and the scheduler must be
    *class-uniform* — its ``pair_weight`` depends only on the (state
    class, state class) pair for a given partition of the state space
    (see ``PairScheduler.state_classes``).  Slot layout per family:

    * ``SameStatePairs`` — per-state slots, weight ``c(c−1)·u(s,s)``;
    * ``OrderedProduct`` — the sides are split into per-class blocks and
      every (initiator block, responder block) pair gets one slot of
      weight ``u(p,q)·A_p·B_q`` — single-sided O(#classes) updates
      instead of rejection;
    * ``TriangularLine`` — one O(1) moment slot when the whole line
      shares a class (the common case: reset-line states are all
      "extra" states), else exact per-position slots.

    The index also tracks the scheduler's **total step mass** over all
    ordered agent pairs (productive or not) through per-class count
    sums, which is what turns the rejection loop into a geometric jump:
    the probability of a step being productive is
    ``total / total_mass()``, both exact integers.
    """

    __slots__ = ("num_slots", "tree", "values", "total", "slot_kind",
                 "slot_payload", "state_steps", "_num_states",
                 "class_of", "class_counts", "_class_matrix", "_row_dot",
                 "tree_dirty", "prog_cache")

    def __init__(
        self,
        families: Sequence[Family],
        num_states: int,
        counts: Sequence[int],
        class_of: Sequence[int],
        class_matrix: Sequence[Sequence[int]],
    ) -> None:
        if len(class_of) != num_states:
            raise SimulationError(
                f"state classes cover {len(class_of)} states, "
                f"expected {num_states}"
            )
        self._num_states = num_states
        self.class_of = list(class_of)
        u = [[int(w) for w in row] for row in class_matrix]
        self._class_matrix = u
        num_classes = len(u)

        kinds: List[int] = []
        payloads: List[object] = []
        weights: List[int] = []
        steps: List[List[tuple]] = [[] for _ in range(num_states)]

        for family in families:
            if type(family) is SameStatePairs:
                for state in family.rule_states():
                    cls = self.class_of[state]
                    slot = len(kinds)
                    factor = u[cls][cls]
                    kinds.append(SAME)
                    payloads.append((state, factor))
                    weights.append(
                        factor * counts[state] * (counts[state] - 1)
                    )
                    steps[state].append((SAME, slot, factor))
            elif type(family) is OrderedProduct:
                self._compile_product(
                    family, counts, u, kinds, payloads, weights, steps
                )
            elif type(family) is TriangularLine:
                self._compile_triangular(
                    family, counts, u, kinds, payloads, weights, steps
                )
            else:
                raise WeightedIndexUnsupported(
                    f"weighted fused index cannot scale custom family "
                    f"{type(family).__name__} exactly; use the rejection "
                    "engine for this protocol"
                )

        self.num_slots = len(kinds)
        self.slot_kind = kinds
        self.slot_payload = payloads
        fenwick = FenwickTree.from_values(weights)
        self.tree = fenwick._tree
        self.values = fenwick._values
        self.total = fenwick.total
        self.state_steps = [tuple(entries) for entries in steps]
        # Flat-update (thinned-segment) bookkeeping: per-slot values and
        # the scalar totals stay exact while the Fenwick tree goes
        # stale; the first find rebuilds it from the values.
        self.tree_dirty = False
        # Per-index cache of compiled transition programs (slot ids are
        # index-specific, so the cache cannot live on the engine when a
        # timeline compiles several indexes).
        self.prog_cache: Dict[int, tuple] = {}

        # Per-class count sums for the total step mass.
        class_counts = [0] * num_classes
        for state, count in enumerate(counts):
            class_counts[self.class_of[state]] += count
        self.class_counts = class_counts
        self._row_dot = [
            sum(u[p][q] * class_counts[q] for q in range(num_classes))
            for p in range(num_classes)
        ]

    def _compile_product(
        self, family, counts, u, kinds, payloads, weights, steps
    ) -> None:
        """Split an OrderedProduct's sides into per-class blocks."""
        def blocks(states):
            grouped: Dict[int, List[int]] = {}
            for state in states:
                grouped.setdefault(self.class_of[state], []).append(state)
            return grouped

        init_blocks = blocks(family.initiators)
        resp_blocks = blocks(family.responders)
        for p, initiators in init_blocks.items():
            for q, responders in resp_blocks.items():
                slot = len(kinds)
                payload = _ProductSlot(
                    counts, initiators, responders, factor=u[p][q]
                )
                kinds.append(PRODUCT)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(initiators):
                    steps[state].append(
                        (PRODUCT, payload, OrderedProduct.INITIATOR, pos,
                         slot)
                    )
                for pos, state in enumerate(responders):
                    steps[state].append(
                        (PRODUCT, payload, OrderedProduct.RESPONDER, pos,
                         slot)
                    )

    def _compile_triangular(
        self, family, counts, u, kinds, payloads, weights, steps
    ) -> None:
        """One moment slot if the line is class-uniform, else per-position."""
        line = family.line_states()
        classes = {self.class_of[state] for state in line}
        if len(classes) == 1:
            cls = classes.pop()
            slot = len(kinds)
            payload = _TriangularSlot(counts, line, factor=u[cls][cls])
            kinds.append(TRIANGULAR)
            payloads.append(payload)
            weights.append(payload.weight())
            for pos, state in enumerate(line):
                steps[state].append((TRIANGULAR, payload, pos, slot))
            return
        payload = _WeightedLine(
            counts, line, [self.class_of[s] for s in line], u
        )
        base_slot = len(kinds)
        for pos in range(len(line)):
            kinds.append(TRIANGULAR)
            payloads.append((payload, pos))
            weights.append(payload.position_weight(pos))
        for pos, state in enumerate(line):
            steps[state].append((_WEIGHTED_LINE, payload, pos, base_slot))

    # ------------------------------------------------------------------
    # Sampling (method-based: the weighted engine replaces a rejection
    # loop whose cost per step dwarfs a few Python calls)
    # ------------------------------------------------------------------
    def find(self, target: int) -> Tuple[int, int]:
        """Slot hit by a weighted draw, plus the residual target."""
        if not 0 <= target < self.total:
            raise SimulationError(
                f"fused find target {target} outside [0, {self.total})"
            )
        if self.tree_dirty:
            # Flat updates (thinned segments) left the tree behind the
            # per-slot values; one O(slots) refill revalidates it.
            fill_tree(self.tree, self.num_slots, self.values)
            self.tree_dirty = False
        tree = self.tree
        num_slots = self.num_slots
        pos = 0
        bit = 1 << (num_slots.bit_length() - 1) if num_slots else 0
        while bit:
            nxt = pos + bit
            if nxt <= num_slots:
                below = tree[nxt]
                if below <= target:
                    target -= below
                    pos = nxt
            bit >>= 1
        return pos, target

    def sample(self, rand_below) -> Tuple[int, int]:
        """Draw a productive pair ∝ ``count-pairs · scheduler weight``."""
        slot, residual = self.find(rand_below(self.total))
        kind = self.slot_kind[slot]
        payload = self.slot_payload[slot]
        if kind == SAME:
            return payload[0], payload[0]
        if kind == PRODUCT:
            return payload.pair_from_target(residual)
        if isinstance(payload, tuple):  # weighted per-position line slot
            line_payload, pos = payload
            return line_payload.pair_from_target(pos, residual)
        return payload.pair_from_target(residual)

    def _set(self, slot: int, weight: int) -> int:
        values = self.values
        delta = weight - values[slot]
        if delta == 0:
            return 0
        values[slot] = weight
        self.total += delta
        tree = self.tree
        node = slot + 1
        num_slots = self.num_slots
        while node <= num_slots:
            tree[node] += delta
            node += node & -node
        return delta

    def apply_count_change(self, state: int, old: int, new: int) -> int:
        """Route one count change through slots and class sums."""
        delta = new - old
        cls = self.class_of[state]
        self.class_counts[cls] += delta
        u = self._class_matrix
        row_dot = self._row_dot
        for q in range(len(row_dot)):
            row_dot[q] += u[q][cls] * delta
        delta_w = 0
        for step in self.state_steps[state]:
            kind = step[0]
            if kind == SAME:
                slot, factor = step[1], step[2]
                delta_w += self._set(slot, factor * new * (new - 1))
            elif kind == PRODUCT:
                payload, side, pos, slot = step[1], step[2], step[3], step[4]
                payload.add(side, pos, delta)
                delta_w += self._set(slot, payload.weight())
            elif kind == TRIANGULAR:
                payload, pos, slot = step[1], step[2], step[3]
                payload.counts[pos] = new
                payload.s += delta
                payload.q += new * new - old * old
                delta_w += self._set(slot, payload.weight())
            else:  # _WEIGHTED_LINE
                payload, pos, base_slot = step[1], step[2], step[3]
                for line_pos in payload.update(pos, new):
                    delta_w += self._set(
                        base_slot + line_pos,
                        payload.position_weight(line_pos),
                    )
        return delta_w

    def _set_flat(self, slot: int, weight: int) -> int:
        """Set one slot's weight without touching the (dirty) tree."""
        values = self.values
        delta = weight - values[slot]
        if delta:
            values[slot] = weight
            self.total += delta
        return delta

    def apply_count_change_flat(self, state: int, old: int, new: int) -> int:
        """Route one count change through values and class sums only.

        The thinned-segment path: per-slot values, the scalar totals,
        and the class sums stay exact while the Fenwick tree is left
        dirty (callers set :attr:`tree_dirty`; the next ``find``
        refills it).  This is what makes high-acceptance segments
        cheap — no per-slot big-integer tree walks, just O(1) scalar
        arithmetic per touched slot.
        """
        delta = new - old
        cls = self.class_of[state]
        self.class_counts[cls] += delta
        u = self._class_matrix
        row_dot = self._row_dot
        for q in range(len(row_dot)):
            row_dot[q] += u[q][cls] * delta
        delta_w = 0
        for step in self.state_steps[state]:
            kind = step[0]
            if kind == SAME:
                slot, factor = step[1], step[2]
                delta_w += self._set_flat(slot, factor * new * (new - 1))
            elif kind == PRODUCT:
                payload, side, pos, slot = step[1], step[2], step[3], step[4]
                payload.add(side, pos, delta)
                delta_w += self._set_flat(slot, payload.weight())
            elif kind == TRIANGULAR:
                payload, pos, slot = step[1], step[2], step[3]
                payload.counts[pos] = new
                payload.s += delta
                payload.q += new * new - old * old
                delta_w += self._set_flat(slot, payload.weight())
            else:  # _WEIGHTED_LINE
                payload, pos, base_slot = step[1], step[2], step[3]
                for line_pos in payload.update(pos, new):
                    delta_w += self._set_flat(
                        base_slot + line_pos,
                        payload.position_weight(line_pos),
                    )
        return delta_w

    def compile_transition(
        self, ops: Sequence[Tuple[int, int]]
    ) -> Optional[Tuple[tuple, tuple]]:
        """Compile one transition into a (prog, refresh) pair, or ``None``.

        Mirrors :meth:`FusedIndex.compile_transition` for the weighted
        index's inlined segment loop: ``prog`` lists ``(state, delta,
        steps, cls, col)`` — the class-sum column ``col[q] = u[q][cls]``
        is pre-resolved so the loop updates ``row_dot`` without matrix
        indexing — and ``refresh`` deduplicates the composite slots to
        recompute (``(slot, kind, payload, factor)``).  Transitions
        touching per-position weighted-line slots are not compiled
        (``None``): their fan-out refresh stays on the generic method
        path.
        """
        u = self._class_matrix
        num_classes = len(u)
        prog: List[tuple] = []
        refresh: Dict[int, tuple] = {}
        for state, delta in ops:
            steps = self.state_steps[state]
            for step in steps:
                kind = step[0]
                if kind == SAME:
                    continue
                if kind == PRODUCT:
                    payload, slot = step[1], step[4]
                    if slot not in refresh:
                        refresh[slot] = (slot, PRODUCT, payload,
                                         payload.factor)
                elif kind == TRIANGULAR:
                    payload, slot = step[1], step[3]
                    if slot not in refresh:
                        refresh[slot] = (slot, TRIANGULAR, payload,
                                         payload.factor)
                else:
                    return None  # weighted-line fan-out: generic path
            cls = self.class_of[state]
            col = tuple(u[q][cls] for q in range(num_classes))
            prog.append((state, delta, steps, cls, col))
        return tuple(prog), tuple(refresh.values())

    def resync(self, counts: Sequence[int]) -> None:
        """Reload every slot weight and class sum from a counts list, in place.

        The slot layout and payload objects stay valid — only the
        weights move.  One O(n + slots) pass serves two seams: adopting
        an externally mutated configuration (fault injection) and
        **epoch hot-swap** — an engine switching scheduler segments
        resyncs the incoming precompiled index from the live counts
        instead of recompiling it.
        """
        values = self.values
        kinds = self.slot_kind
        payloads = self.slot_payload
        lines_done: set = set()
        for slot in range(self.num_slots):
            kind = kinds[slot]
            payload = payloads[slot]
            if kind == SAME:
                state, factor = payload
                values[slot] = factor * counts[state] * (counts[state] - 1)
            elif kind == PRODUCT:
                payload.resync(counts)
                values[slot] = payload.weight()
            elif isinstance(payload, tuple):  # weighted per-position line
                line_payload, pos = payload
                if id(line_payload) not in lines_done:
                    line_payload.resync(counts)
                    lines_done.add(id(line_payload))
                values[slot] = line_payload.position_weight(pos)
            else:
                payload.resync(counts)
                values[slot] = payload.weight()
        self.total = fill_tree(self.tree, self.num_slots, values)
        self.tree_dirty = False
        class_counts = self.class_counts
        num_classes = len(class_counts)
        for cls in range(num_classes):
            class_counts[cls] = 0
        class_of = self.class_of
        for state, count in enumerate(counts):
            class_counts[class_of[state]] += count
        u = self._class_matrix
        row_dot = self._row_dot
        for p in range(num_classes):
            row_dot[p] = sum(
                u[p][q] * class_counts[q] for q in range(num_classes)
            )

    def total_mass(self) -> int:
        """Scheduler mass of *all* ordered agent pairs (incl. null ones).

        ``Σ u(sᵢ,sⱼ)·cᵢ·cⱼ − Σ u(s,s)·c_s`` over classes — the weighted
        analogue of ``n(n−1)``, and the denominator of the geometric
        jump's success probability.  O(#classes) per call.
        """
        u = self._class_matrix
        class_counts = self.class_counts
        row_dot = self._row_dot
        cross = 0
        diagonal = 0
        for p, count in enumerate(class_counts):
            cross += count * row_dot[p]
            diagonal += u[p][p] * count
        return cross - diagonal


class _WeightedLine:
    """Per-position triangular slots for a non-class-uniform line.

    Position ``i`` carries ``w_i = c_i·[(c_i−1)·u_ii + Σ_{j>i} c_j·u_ij]``
    so Σ w_i is the family's exact weighted mass.  A count change at
    position ``p`` touches positions ``i ≤ p`` (the line is O(log n)
    states, so the O(len) update only ever runs on a short list).
    """

    __slots__ = ("line", "counts", "matrix")

    def __init__(self, counts, line, line_classes, u) -> None:
        self.line = list(line)
        self.counts = [counts[s] for s in self.line]
        length = len(self.line)
        self.matrix = [
            [u[line_classes[i]][line_classes[j]] for j in range(length)]
            for i in range(length)
        ]

    def position_weight(self, i: int) -> int:
        counts = self.counts
        row = self.matrix[i]
        c = counts[i]
        if c == 0:
            return 0
        acc = (c - 1) * row[i]
        for j in range(i + 1, len(counts)):
            acc += counts[j] * row[j]
        return c * acc

    def update(self, pos: int, new: int) -> range:
        """Adopt a new count; returns the positions whose weight moved."""
        self.counts[pos] = new
        return range(pos + 1)

    def resync(self, counts) -> None:
        """Reload line counts from a full counts list, in place."""
        line_counts = self.counts
        for pos, state in enumerate(self.line):
            line_counts[pos] = counts[state]

    def pair_from_target(self, i: int, target: int) -> Tuple[int, int]:
        counts = self.counts
        line = self.line
        row = self.matrix[i]
        c = counts[i]
        same = c * (c - 1) * row[i]
        if target < same:
            return line[i], line[i]
        target -= same
        for j in range(i + 1, len(counts)):
            cross = c * counts[j] * row[j]
            if target < cross:
                return line[i], line[j]
            target -= cross
        raise SimulationError("weighted line sample out of range")
