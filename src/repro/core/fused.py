"""Fused cross-family sampler: one compiled weight index per protocol.

The jump engine's general loop used to dispatch every productive event
across the protocol's :mod:`~repro.core.families` — re-walking the
family list to locate the sampled pair, then notifying *every* family of
*every* count change.  For the multi-family protocols (the §4 line and
§5 tree constructions, the whole point of the paper) that dispatch, plus
``TriangularLine``'s per-change recompute, dominated the hot path.

:class:`FusedIndex` compiles the families once into a single flat
integer weight index:

* every same-state rule gets its **own slot** (weight ``c(c−1)``), so a
  single weighted ``find`` yields the pair directly;
* each :class:`~repro.core.families.OrderedProduct` family collapses to
  **one slot** of weight ``A·B`` (the side sums), with the two side
  draws decoded from the *residual* find target — no extra randomness;
* each :class:`~repro.core.families.TriangularLine` family collapses to
  **one slot** whose weight follows from the count moments ``S``/``Q``
  in O(1) per change;
* unknown :class:`~repro.core.families.Family` subclasses keep working
  through an opaque one-slot adapter.

Composite slots (product / triangular / opaque) are laid out *first*,
so the engine's hot loop resolves the overwhelmingly common draws (the
reset line during a §5 reset storm) with a couple of comparisons before
falling back to the Fenwick walk over the same-state block.  Side
Fenwick trees are padded to powers of two so their top node *is* the
side total — updates become bare add-delta walks with no bookkeeping.

Per-state **update plans** are precompiled from the families' membership
(:meth:`~repro.core.families.Family.states`), and whole transitions
compile to straight-line programs (:meth:`FusedIndex.compile_transition`)
that the engine's fast loop executes without any per-event family
dispatch.  All weights stay exact Python integers.

:class:`WeightedFusedIndex` extends the same machinery to *biased* pair
schedulers: every slot weight is scaled by the scheduler's pair weight,
kept exact as a dyadic rational numerator (denominator ``2⁵³`` — the
resolution of the rejection engine's float acceptance test, so both
engines realise the *identical* step distribution).  See
:mod:`repro.core.scheduler` for the engine built on top of it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from ..exceptions import SimulationError
from .families import Family, OrderedProduct, SameStatePairs, TriangularLine
from .fenwick import FenwickTree, fill_tree

__all__ = [
    "FusedIndex",
    "WeightedFusedIndex",
    "WeightedIndexUnsupported",
    "WEIGHT_DENOMINATOR",
    "dyadic_weight_numerator",
]


class WeightedIndexUnsupported(SimulationError):
    """The weighted fused index cannot realise this scheduler exactly.

    Raised during compilation (custom family types, underivable state
    classes, too many classes).  Callers fall back to the rejection
    engine, which handles any scheduler.
    """

# Slot kinds (also the dispatch codes burned into compiled programs).
SAME, PRODUCT, TRIANGULAR, OPAQUE = 0, 1, 2, 3
# Step code for per-position weighted line slots (weighted index only).
_WEIGHTED_LINE = 4

#: Acceptance thresholds in the rejection engine are 53-bit uniforms
#: (``k·2⁻⁵³``), so every float pair weight acts with effective
#: probability ``ceil(w·2⁵³)/2⁵³``.  Scaling slot weights by the same
#: dyadic numerators makes the weighted index *exactly* equivalent.
WEIGHT_DENOMINATOR = 1 << 53


def dyadic_weight_numerator(weight: float) -> int:
    """``ceil(weight · 2⁵³)`` computed exactly (no float rounding).

    This is the number of 53-bit uniform thresholds a rejection test
    with probability ``weight`` accepts — the exact effective weight of
    the pair under the rejection engine.
    """
    if not 0.0 < weight <= 1.0:
        raise SimulationError(
            f"scheduler pair weight {weight} outside (0, 1]"
        )
    scaled = Fraction(weight) * WEIGHT_DENOMINATOR
    return -(-scaled.numerator // scaled.denominator)


def _padded_tree(values: Sequence[int]) -> Tuple[List[int], int]:
    """Fenwick array padded to a power-of-two size.

    With ``size`` a power of two, ``tree[size]`` is the total weight, so
    callers need no separate total bookkeeping; updates are bare
    add-delta walks.
    """
    values = list(values)
    size = 1
    while size < len(values):
        size <<= 1
    tree = [0] * (size + 1)
    fill_tree(tree, size, values)
    return tree, size


def _tree_find(tree: List[int], size: int, target: int) -> int:
    """Weighted-draw slot of a padded Fenwick array (``size`` = pow2)."""
    pos = 0
    bit = size
    while bit:
        nxt = pos + bit
        if nxt <= size:
            below = tree[nxt]
            if below <= target:
                target -= below
                pos = nxt
        bit >>= 1
    return pos


class _ProductSlot:
    """One fused slot for an ``OrderedProduct`` family (or class block).

    Weight is ``factor · A · B`` where ``A``/``B`` are the side totals
    of two private padded Fenwick arrays.  ``factor`` is 1 for the
    uniform index and the scheduler's dyadic numerator otherwise.
    """

    __slots__ = ("initiators", "responders", "init_tree", "init_size",
                 "resp_tree", "resp_size", "factor")

    def __init__(
        self,
        counts: Sequence[int],
        initiators: Sequence[int],
        responders: Sequence[int],
        factor: int = 1,
    ) -> None:
        self.initiators = list(initiators)
        self.responders = list(responders)
        self.init_tree, self.init_size = _padded_tree(
            [counts[s] for s in self.initiators]
        )
        self.resp_tree, self.resp_size = _padded_tree(
            [counts[s] for s in self.responders]
        )
        self.factor = factor

    def weight(self) -> int:
        return (
            self.factor
            * self.init_tree[self.init_size]
            * self.resp_tree[self.resp_size]
        )

    def add(self, side: int, pos: int, delta: int) -> None:
        """Add a count delta on one side (generic update path)."""
        if side == OrderedProduct.INITIATOR:
            tree, size = self.init_tree, self.init_size
        else:
            tree, size = self.resp_tree, self.resp_size
        node = pos + 1
        while node <= size:
            tree[node] += delta
            node += node & -node

    def resync(self, counts: Sequence[int]) -> None:
        """Reload both side trees from a counts list, in place.

        Compiled transition programs hold direct references to the tree
        lists, so a resync must refill rather than replace them.
        """
        fill_tree(
            self.init_tree, self.init_size,
            [counts[s] for s in self.initiators],
        )
        fill_tree(
            self.resp_tree, self.resp_size,
            [counts[s] for s in self.responders],
        )

    def pair_from_target(self, target: int) -> Tuple[int, int]:
        """Decode both side draws from a residual target in ``[0, w)``.

        ``target`` uniform on ``[0, f·A·B)`` factors into independent
        uniforms for the two sides — an exact bijection, so no fresh
        randomness is needed.
        """
        resp_total = self.resp_tree[self.resp_size]
        span = self.factor * resp_total
        initiator = self.initiators[
            _tree_find(self.init_tree, self.init_size, target // span)
        ]
        responder = self.responders[
            _tree_find(
                self.resp_tree, self.resp_size, (target % span) // self.factor
            )
        ]
        return initiator, responder


class _TriangularSlot:
    """One fused slot for a ``TriangularLine`` family.

    Weight ``factor · [(Q − S) + (S² − Q)/2]`` from the running count
    moments ``S = Σc``, ``Q = Σc²`` — O(1) per count change, the fix for
    the old per-change O(len) recompute.  Only valid when the scheduler
    weight is constant across the line (always true for the uniform
    index); the weighted index falls back to per-position slots
    otherwise.
    """

    __slots__ = ("line", "counts", "s", "q", "factor")

    def __init__(
        self, counts: Sequence[int], line: Sequence[int], factor: int = 1
    ) -> None:
        self.line = list(line)
        self.counts = [counts[s] for s in self.line]
        self.s = sum(self.counts)
        self.q = sum(c * c for c in self.counts)
        self.factor = factor

    def weight(self) -> int:
        s, q = self.s, self.q
        return self.factor * ((q - s) + (s * s - q) // 2)

    def resync(self, counts: Sequence[int]) -> None:
        """Reload line counts and moments from a counts list, in place."""
        line_counts = self.counts
        for pos, state in enumerate(self.line):
            line_counts[pos] = counts[state]
        self.s = sum(line_counts)
        self.q = sum(c * c for c in line_counts)

    def pair_from_target(self, target: int) -> Tuple[int, int]:
        """Decode a line pair from a residual target in ``[0, w)``."""
        target //= self.factor
        counts = self.counts
        line = self.line
        suffix = self.s
        for i in range(len(counts)):
            c = counts[i]
            if c == 0:
                continue
            suffix -= c
            block = c * (c - 1 + suffix)
            if target < block:
                same = c * (c - 1)
                if target < same:
                    return line[i], line[i]
                j_target = (target - same) // c
                for j in range(i + 1, len(counts)):
                    if j_target < counts[j]:
                        return line[i], line[j]
                    j_target -= counts[j]
                raise SimulationError("fused triangular sample overflow")
            target -= block
        raise SimulationError("fused triangular sample out of range")


class FusedIndex:
    """Flat integer weight index over all productive pair slots.

    Built once per engine from ``protocol.build_families(counts)``; the
    families are only *read* during compilation — the index owns all
    mutable sampling state afterwards (the engine may let the family
    objects go stale).

    Layout: composite slots (product / triangular / opaque) occupy
    ``0..num_composite-1`` and live *outside* the Fenwick tree — their
    weights change on almost every event, the linear ``find`` pre-scan
    resolves them anyway, and keeping them out makes their per-event
    refresh an O(1) ``values[]`` write instead of a full tree walk.  The
    Fenwick tree covers only the same-state block (slot ``s`` maps to
    tree position ``s - num_composite``), whose per-slot weights change
    far less often than the composite aggregates.

    Attributes exposed for the engine's inlined hot loop: ``tree`` /
    ``values``, ``num_slots``, ``num_composite``, ``fenwick_size``
    (``num_slots - num_composite``), ``slot_kind``, ``slot_payload``,
    and ``total`` (the cached total weight ``W``).
    """

    __slots__ = ("num_slots", "num_composite", "fenwick_size", "tree",
                 "values", "total", "slot_kind", "slot_payload",
                 "state_steps", "_num_states")

    def __init__(
        self,
        families: Sequence[Family],
        num_states: int,
        counts: Sequence[int],
    ) -> None:
        self._num_states = num_states
        kinds: List[int] = []
        payloads: List[object] = []
        weights: List[int] = []
        steps: List[List[tuple]] = [[] for _ in range(num_states)]

        # Composite slots first: the hot loop short-circuits the find
        # for them, and a handful of comparisons resolves the draws that
        # dominate reset-heavy runs.
        same_state: List[SameStatePairs] = []
        for family in families:
            if type(family) is SameStatePairs:
                same_state.append(family)
            elif type(family) is OrderedProduct:
                slot = len(kinds)
                payload = _ProductSlot(
                    counts, family.initiators, family.responders
                )
                kinds.append(PRODUCT)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(payload.initiators):
                    steps[state].append(
                        (PRODUCT, payload.init_tree, pos + 1,
                         payload.init_size, slot, payload)
                    )
                for pos, state in enumerate(payload.responders):
                    steps[state].append(
                        (PRODUCT, payload.resp_tree, pos + 1,
                         payload.resp_size, slot, payload)
                    )
            elif type(family) is TriangularLine:
                slot = len(kinds)
                payload = _TriangularSlot(counts, family.line_states())
                kinds.append(TRIANGULAR)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(payload.line):
                    steps[state].append((TRIANGULAR, payload, pos, slot))
            else:
                # Opaque adapter: the family keeps maintaining its own
                # weight; the index mirrors it in one slot.
                slot = len(kinds)
                kinds.append(OPAQUE)
                payloads.append(family)
                weights.append(family.weight)
                for state in family.states():
                    steps[state].append((OPAQUE, family, slot))
        num_composite = len(kinds)
        self.num_composite = num_composite
        for family in same_state:
            for state in family.rule_states():
                slot = len(kinds)
                kinds.append(SAME)
                payloads.append(state)
                weights.append(counts[state] * (counts[state] - 1))
                # Third field: the slot's first Fenwick node (the tree
                # only spans the same-state block).
                steps[state].append((SAME, slot, slot - num_composite + 1))

        self.num_slots = len(kinds)
        self.fenwick_size = self.num_slots - num_composite
        self.slot_kind = kinds
        self.slot_payload = payloads
        self.values = weights
        fenwick = FenwickTree.from_values(weights[num_composite:])
        self.tree = fenwick._tree
        self.total = sum(weights[:num_composite]) + fenwick.total
        self.state_steps = [tuple(entries) for entries in steps]

    # ------------------------------------------------------------------
    # Slot-level primitives
    # ------------------------------------------------------------------
    def _set(self, slot: int, weight: int) -> int:
        """Set one slot's weight; returns the delta applied."""
        values = self.values
        delta = weight - values[slot]
        if delta == 0:
            return 0
        values[slot] = weight
        self.total += delta
        num_composite = self.num_composite
        if slot >= num_composite:
            tree = self.tree
            node = slot - num_composite + 1
            size = self.fenwick_size
            while node <= size:
                tree[node] += delta
                node += node & -node
        return delta

    def find(self, target: int) -> Tuple[int, int]:
        """Slot hit by a weighted draw, plus the residual target.

        The handful of composite slots resolve with a linear scan; only
        draws landing in the same-state block walk the Fenwick tree.
        """
        if not 0 <= target < self.total:
            raise SimulationError(
                f"fused find target {target} outside [0, {self.total})"
            )
        values = self.values
        residual = target
        for slot in range(self.num_composite):
            value = values[slot]
            if residual < value:
                return slot, residual
            residual -= value
        tree = self.tree
        size = self.fenwick_size
        pos = 0
        bit = 1 << (size.bit_length() - 1) if size else 0
        while bit:
            nxt = pos + bit
            if nxt <= size:
                below = tree[nxt]
                if below <= residual:
                    residual -= below
                    pos = nxt
            bit >>= 1
        return pos + self.num_composite, residual

    def pair_from_slot(
        self, slot: int, residual: int, rand_below
    ) -> Tuple[int, int]:
        """Decode the sampled ordered state pair of one slot."""
        kind = self.slot_kind[slot]
        payload = self.slot_payload[slot]
        if kind == SAME:
            return payload, payload
        if kind == PRODUCT or kind == TRIANGULAR:
            return payload.pair_from_target(residual)
        return payload.sample(rand_below)

    def sample(self, rand_below) -> Tuple[int, int]:
        """Draw a productive ordered state pair ∝ its slot weight."""
        slot, residual = self.find(rand_below(self.total))
        return self.pair_from_slot(slot, residual, rand_below)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def resync(self, counts: Sequence[int]) -> bool:
        """Reload every slot weight from a counts list, in place (O(n)).

        The slot layout, payload objects, and any compiled transition
        programs stay valid — only the weights move.  This is the
        fault-injection seam: adopting an externally mutated
        configuration costs one pass, with no program recompilation.
        Returns ``False`` when the index contains opaque family slots
        (their internal state cannot be resynced from counts — the
        caller must rebuild the index from fresh families instead).
        """
        kinds = self.slot_kind
        payloads = self.slot_payload
        if any(kinds[slot] == OPAQUE for slot in range(self.num_composite)):
            return False
        values = self.values
        total = 0
        for slot in range(self.num_composite):
            payload = payloads[slot]
            payload.resync(counts)
            weight = payload.weight()
            values[slot] = weight
            total += weight
        for slot in range(self.num_composite, self.num_slots):
            state = payloads[slot]
            weight = counts[state] * (counts[state] - 1)
            values[slot] = weight
        total += fill_tree(
            self.tree, self.fenwick_size, values[self.num_composite:]
        )
        self.total = total
        return True

    def apply_count_change(self, state: int, old: int, new: int) -> int:
        """Route one count change to every structure touching ``state``.

        Returns the total-weight delta (also applied to :attr:`total`).
        This is the generic path used by ``step()`` and by protocols
        that opt out of transition compilation; hot loops execute the
        precompiled programs from :meth:`compile_transition` instead.
        """
        delta = new - old
        delta_w = 0
        for step in self.state_steps[state]:
            kind = step[0]
            if kind == SAME:
                delta_w += self._set(step[1], new * (new - 1))
            elif kind == PRODUCT:
                tree, node, size, slot, payload = (
                    step[1], step[2], step[3], step[4], step[5]
                )
                while node <= size:
                    tree[node] += delta
                    node += node & -node
                delta_w += self._set(slot, payload.weight())
            elif kind == TRIANGULAR:
                payload, pos, slot = step[1], step[2], step[3]
                payload.counts[pos] = new
                payload.s += delta
                payload.q += new * new - old * old
                delta_w += self._set(slot, payload.weight())
            else:
                family, slot = step[1], step[2]
                family.on_count_change(state, old, new)
                delta_w += self._set(slot, family.weight)
        return delta_w

    def compile_transition(
        self, ops: Sequence[Tuple[int, int]]
    ) -> Tuple[tuple, tuple]:
        """Compile one transition's count deltas into a (prog, refresh) pair.

        ``prog`` lists ``(state, delta, steps)`` with each state's
        precompiled update steps; ``refresh`` is the *deduplicated* set
        of composite slots whose fused weight must be recomputed once
        after all payload updates — so a transition touching three line
        states costs one slot refresh, not three.  Refresh entries are
        pre-resolved per kind:

        * triangular — ``(slot, TRIANGULAR, payload)``
        * product — ``(slot, PRODUCT, init_tree, init_size, resp_tree,
          resp_size)`` (the weight is the product of the two top nodes)
        * opaque — ``(slot, OPAQUE, family)``
        """
        prog = tuple(
            (state, delta, self.state_steps[state]) for state, delta in ops
        )
        refresh: Dict[int, tuple] = {}
        for state, _ in ops:
            for step in self.state_steps[state]:
                kind = step[0]
                if kind == SAME:
                    continue
                if kind == PRODUCT:
                    slot, payload = step[4], step[5]
                    if slot not in refresh:
                        refresh[slot] = (
                            slot, PRODUCT, payload.init_tree,
                            payload.init_size, payload.resp_tree,
                            payload.resp_size,
                        )
                elif kind == TRIANGULAR:
                    slot = step[3]
                    if slot not in refresh:
                        refresh[slot] = (slot, TRIANGULAR, step[1])
                else:
                    slot = step[2]
                    if slot not in refresh:
                        refresh[slot] = (slot, OPAQUE, step[1])
        return prog, tuple(refresh.values())


class WeightedFusedIndex:
    """Fused index with every slot scaled by a scheduler's pair weight.

    Exactness contract: pair weights enter as dyadic numerators
    (:func:`dyadic_weight_numerator`), and the scheduler must be
    *class-uniform* — its ``pair_weight`` depends only on the (state
    class, state class) pair for a given partition of the state space
    (see ``PairScheduler.state_classes``).  Slot layout per family:

    * ``SameStatePairs`` — per-state slots, weight ``c(c−1)·u(s,s)``;
    * ``OrderedProduct`` — the sides are split into per-class blocks and
      every (initiator block, responder block) pair gets one slot of
      weight ``u(p,q)·A_p·B_q`` — single-sided O(#classes) updates
      instead of rejection;
    * ``TriangularLine`` — one O(1) moment slot when the whole line
      shares a class (the common case: reset-line states are all
      "extra" states), else exact per-position slots.

    The index also tracks the scheduler's **total step mass** over all
    ordered agent pairs (productive or not) through per-class count
    sums, which is what turns the rejection loop into a geometric jump:
    the probability of a step being productive is
    ``total / total_mass()``, both exact integers.
    """

    __slots__ = ("num_slots", "tree", "values", "total", "slot_kind",
                 "slot_payload", "state_steps", "_num_states",
                 "class_of", "class_counts", "_class_matrix", "_row_dot")

    def __init__(
        self,
        families: Sequence[Family],
        num_states: int,
        counts: Sequence[int],
        class_of: Sequence[int],
        class_matrix: Sequence[Sequence[int]],
    ) -> None:
        if len(class_of) != num_states:
            raise SimulationError(
                f"state classes cover {len(class_of)} states, "
                f"expected {num_states}"
            )
        self._num_states = num_states
        self.class_of = list(class_of)
        u = [[int(w) for w in row] for row in class_matrix]
        self._class_matrix = u
        num_classes = len(u)

        kinds: List[int] = []
        payloads: List[object] = []
        weights: List[int] = []
        steps: List[List[tuple]] = [[] for _ in range(num_states)]

        for family in families:
            if type(family) is SameStatePairs:
                for state in family.rule_states():
                    cls = self.class_of[state]
                    slot = len(kinds)
                    factor = u[cls][cls]
                    kinds.append(SAME)
                    payloads.append((state, factor))
                    weights.append(
                        factor * counts[state] * (counts[state] - 1)
                    )
                    steps[state].append((SAME, slot, factor))
            elif type(family) is OrderedProduct:
                self._compile_product(
                    family, counts, u, kinds, payloads, weights, steps
                )
            elif type(family) is TriangularLine:
                self._compile_triangular(
                    family, counts, u, kinds, payloads, weights, steps
                )
            else:
                raise WeightedIndexUnsupported(
                    f"weighted fused index cannot scale custom family "
                    f"{type(family).__name__} exactly; use the rejection "
                    "engine for this protocol"
                )

        self.num_slots = len(kinds)
        self.slot_kind = kinds
        self.slot_payload = payloads
        fenwick = FenwickTree.from_values(weights)
        self.tree = fenwick._tree
        self.values = fenwick._values
        self.total = fenwick.total
        self.state_steps = [tuple(entries) for entries in steps]

        # Per-class count sums for the total step mass.
        class_counts = [0] * num_classes
        for state, count in enumerate(counts):
            class_counts[self.class_of[state]] += count
        self.class_counts = class_counts
        self._row_dot = [
            sum(u[p][q] * class_counts[q] for q in range(num_classes))
            for p in range(num_classes)
        ]

    def _compile_product(
        self, family, counts, u, kinds, payloads, weights, steps
    ) -> None:
        """Split an OrderedProduct's sides into per-class blocks."""
        def blocks(states):
            grouped: Dict[int, List[int]] = {}
            for state in states:
                grouped.setdefault(self.class_of[state], []).append(state)
            return grouped

        init_blocks = blocks(family.initiators)
        resp_blocks = blocks(family.responders)
        for p, initiators in init_blocks.items():
            for q, responders in resp_blocks.items():
                slot = len(kinds)
                payload = _ProductSlot(
                    counts, initiators, responders, factor=u[p][q]
                )
                kinds.append(PRODUCT)
                payloads.append(payload)
                weights.append(payload.weight())
                for pos, state in enumerate(initiators):
                    steps[state].append(
                        (PRODUCT, payload, OrderedProduct.INITIATOR, pos,
                         slot)
                    )
                for pos, state in enumerate(responders):
                    steps[state].append(
                        (PRODUCT, payload, OrderedProduct.RESPONDER, pos,
                         slot)
                    )

    def _compile_triangular(
        self, family, counts, u, kinds, payloads, weights, steps
    ) -> None:
        """One moment slot if the line is class-uniform, else per-position."""
        line = family.line_states()
        classes = {self.class_of[state] for state in line}
        if len(classes) == 1:
            cls = classes.pop()
            slot = len(kinds)
            payload = _TriangularSlot(counts, line, factor=u[cls][cls])
            kinds.append(TRIANGULAR)
            payloads.append(payload)
            weights.append(payload.weight())
            for pos, state in enumerate(line):
                steps[state].append((TRIANGULAR, payload, pos, slot))
            return
        payload = _WeightedLine(
            counts, line, [self.class_of[s] for s in line], u
        )
        base_slot = len(kinds)
        for pos in range(len(line)):
            kinds.append(TRIANGULAR)
            payloads.append((payload, pos))
            weights.append(payload.position_weight(pos))
        for pos, state in enumerate(line):
            steps[state].append((_WEIGHTED_LINE, payload, pos, base_slot))

    # ------------------------------------------------------------------
    # Sampling (method-based: the weighted engine replaces a rejection
    # loop whose cost per step dwarfs a few Python calls)
    # ------------------------------------------------------------------
    def find(self, target: int) -> Tuple[int, int]:
        """Slot hit by a weighted draw, plus the residual target."""
        if not 0 <= target < self.total:
            raise SimulationError(
                f"fused find target {target} outside [0, {self.total})"
            )
        tree = self.tree
        num_slots = self.num_slots
        pos = 0
        bit = 1 << (num_slots.bit_length() - 1) if num_slots else 0
        while bit:
            nxt = pos + bit
            if nxt <= num_slots:
                below = tree[nxt]
                if below <= target:
                    target -= below
                    pos = nxt
            bit >>= 1
        return pos, target

    def sample(self, rand_below) -> Tuple[int, int]:
        """Draw a productive pair ∝ ``count-pairs · scheduler weight``."""
        slot, residual = self.find(rand_below(self.total))
        kind = self.slot_kind[slot]
        payload = self.slot_payload[slot]
        if kind == SAME:
            return payload[0], payload[0]
        if kind == PRODUCT:
            return payload.pair_from_target(residual)
        if isinstance(payload, tuple):  # weighted per-position line slot
            line_payload, pos = payload
            return line_payload.pair_from_target(pos, residual)
        return payload.pair_from_target(residual)

    def _set(self, slot: int, weight: int) -> int:
        values = self.values
        delta = weight - values[slot]
        if delta == 0:
            return 0
        values[slot] = weight
        self.total += delta
        tree = self.tree
        node = slot + 1
        num_slots = self.num_slots
        while node <= num_slots:
            tree[node] += delta
            node += node & -node
        return delta

    def apply_count_change(self, state: int, old: int, new: int) -> int:
        """Route one count change through slots and class sums."""
        delta = new - old
        cls = self.class_of[state]
        self.class_counts[cls] += delta
        u = self._class_matrix
        row_dot = self._row_dot
        for q in range(len(row_dot)):
            row_dot[q] += u[q][cls] * delta
        delta_w = 0
        for step in self.state_steps[state]:
            kind = step[0]
            if kind == SAME:
                slot, factor = step[1], step[2]
                delta_w += self._set(slot, factor * new * (new - 1))
            elif kind == PRODUCT:
                payload, side, pos, slot = step[1], step[2], step[3], step[4]
                payload.add(side, pos, delta)
                delta_w += self._set(slot, payload.weight())
            elif kind == TRIANGULAR:
                payload, pos, slot = step[1], step[2], step[3]
                payload.counts[pos] = new
                payload.s += delta
                payload.q += new * new - old * old
                delta_w += self._set(slot, payload.weight())
            else:  # _WEIGHTED_LINE
                payload, pos, base_slot = step[1], step[2], step[3]
                for line_pos in payload.update(pos, new):
                    delta_w += self._set(
                        base_slot + line_pos,
                        payload.position_weight(line_pos),
                    )
        return delta_w

    def resync(self, counts: Sequence[int]) -> None:
        """Reload every slot weight and class sum from a counts list, in place.

        The slot layout and payload objects stay valid — only the
        weights move.  One O(n + slots) pass serves two seams: adopting
        an externally mutated configuration (fault injection) and
        **epoch hot-swap** — an engine switching scheduler segments
        resyncs the incoming precompiled index from the live counts
        instead of recompiling it.
        """
        values = self.values
        kinds = self.slot_kind
        payloads = self.slot_payload
        lines_done: set = set()
        for slot in range(self.num_slots):
            kind = kinds[slot]
            payload = payloads[slot]
            if kind == SAME:
                state, factor = payload
                values[slot] = factor * counts[state] * (counts[state] - 1)
            elif kind == PRODUCT:
                payload.resync(counts)
                values[slot] = payload.weight()
            elif isinstance(payload, tuple):  # weighted per-position line
                line_payload, pos = payload
                if id(line_payload) not in lines_done:
                    line_payload.resync(counts)
                    lines_done.add(id(line_payload))
                values[slot] = line_payload.position_weight(pos)
            else:
                payload.resync(counts)
                values[slot] = payload.weight()
        self.total = fill_tree(self.tree, self.num_slots, values)
        class_counts = self.class_counts
        num_classes = len(class_counts)
        for cls in range(num_classes):
            class_counts[cls] = 0
        class_of = self.class_of
        for state, count in enumerate(counts):
            class_counts[class_of[state]] += count
        u = self._class_matrix
        row_dot = self._row_dot
        for p in range(num_classes):
            row_dot[p] = sum(
                u[p][q] * class_counts[q] for q in range(num_classes)
            )

    def total_mass(self) -> int:
        """Scheduler mass of *all* ordered agent pairs (incl. null ones).

        ``Σ u(sᵢ,sⱼ)·cᵢ·cⱼ − Σ u(s,s)·c_s`` over classes — the weighted
        analogue of ``n(n−1)``, and the denominator of the geometric
        jump's success probability.  O(#classes) per call.
        """
        u = self._class_matrix
        class_counts = self.class_counts
        row_dot = self._row_dot
        cross = 0
        diagonal = 0
        for p, count in enumerate(class_counts):
            cross += count * row_dot[p]
            diagonal += u[p][p] * count
        return cross - diagonal


class _WeightedLine:
    """Per-position triangular slots for a non-class-uniform line.

    Position ``i`` carries ``w_i = c_i·[(c_i−1)·u_ii + Σ_{j>i} c_j·u_ij]``
    so Σ w_i is the family's exact weighted mass.  A count change at
    position ``p`` touches positions ``i ≤ p`` (the line is O(log n)
    states, so the O(len) update only ever runs on a short list).
    """

    __slots__ = ("line", "counts", "matrix")

    def __init__(self, counts, line, line_classes, u) -> None:
        self.line = list(line)
        self.counts = [counts[s] for s in self.line]
        length = len(self.line)
        self.matrix = [
            [u[line_classes[i]][line_classes[j]] for j in range(length)]
            for i in range(length)
        ]

    def position_weight(self, i: int) -> int:
        counts = self.counts
        row = self.matrix[i]
        c = counts[i]
        if c == 0:
            return 0
        acc = (c - 1) * row[i]
        for j in range(i + 1, len(counts)):
            acc += counts[j] * row[j]
        return c * acc

    def update(self, pos: int, new: int) -> range:
        """Adopt a new count; returns the positions whose weight moved."""
        self.counts[pos] = new
        return range(pos + 1)

    def resync(self, counts) -> None:
        """Reload line counts from a full counts list, in place."""
        line_counts = self.counts
        for pos, state in enumerate(self.line):
            line_counts[pos] = counts[state]

    def pair_from_target(self, i: int, target: int) -> Tuple[int, int]:
        counts = self.counts
        line = self.line
        row = self.matrix[i]
        c = counts[i]
        same = c * (c - 1) * row[i]
        if target < same:
            return line[i], line[i]
        target -= same
        for j in range(i + 1, len(counts)):
            cross = c * counts[j] * row[j]
            if target < cross:
                return line[i], line[j]
            target -= cross
        raise SimulationError("weighted line sample out of range")
